"""The engine service: a concurrent request scheduler over the warm pool.

:class:`EngineService` is what ``repro serve`` (and any embedding
application) talks to.  Since PR 5 it is a *scheduler*, not a lock-step
queue: every :meth:`EngineService.submit` returns a
:class:`ServiceTicket` — a request id that is also a completion handle
— and requests resolve **out of submission order**, the moment their
verdict exists.  The pieces, wired in the right order:

1. a :class:`~repro.parallel.batch.ResultCache` consulted **at submit
   time** — a repeat instance's ticket resolves instantly, without ever
   reaching a worker, and the cache optionally persists to disk so hits
   survive across service sessions;
2. an in-flight index — identical instances submitted concurrently
   share one computation (the first ticket is the primary, the rest
   replay its verdict, exactly the dedup rule ``solve_many`` applies
   within a batch);
3. a persistent :class:`~repro.service.pool.EnginePool` — each cache
   miss becomes one :class:`~repro.service.pool.PoolFuture`, so a slow
   instance never blocks an unrelated fast one (no head-of-line
   blocking), and a worker death retries only the lost items.

:meth:`EngineService.drain` survives as the lock-step compatibility
view: it awaits every collectable ticket and returns responses in
submission order, bit-for-bit what serial ``decide_duality`` calls
would produce.

Verdicts stream as JSON-ready dicts (:func:`response_to_json`): vertex
labels travel through the lossless codec of
:mod:`repro.parallel.codec`, so a service answering over tuples or
strings round-trips its certificates exactly.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from pathlib import Path

from repro.duality.result import DualityResult
from repro.hypergraph import Hypergraph, instance_key, mask_payload, pair_digest
from repro.obs.timings import TimingLog, structural_features
from repro.obs.trace import record_span
from repro.parallel.batch import (
    ResultCache,
    load_instance,
    solve_batch_entry,
    solve_batch_entry_obs,
)
from repro.parallel.codec import CodecError, encode_vertex_set
from repro.parallel.executor import PARALLEL_METHODS, decide_duality_parallel
from repro.service.pool import Completion, EnginePool, PoolClosedError
from repro.store import VerdictStore


@dataclass(frozen=True)
class ServiceResponse:
    """One answered request.

    ``request_id`` is the ticket ``submit`` returned; ``source`` the
    instance file path (``None`` for in-memory pairs); ``cached`` True
    when the verdict came from the cache (or an identical in-flight
    request) instead of its own worker run.  ``origin`` says which:
    ``"computed"`` (this request's own worker run), ``"cache"`` (a
    submit-time cache hit), or ``"dedup"`` (joined an identical
    in-flight computation).  ``elapsed_s`` is the solve time of the
    computation that produced the verdict — dedup joiners report the
    primary's real elapsed, not 0.0 (they waited exactly as long).
    """

    request_id: int
    source: str | None
    key: str
    result: DualityResult
    elapsed_s: float
    cached: bool
    origin: str = "computed"

    @property
    def is_dual(self) -> bool:
        return self.result.is_dual


class ServiceTicket(int):
    """A request id that is also the request's completion handle.

    Tickets compare, hash, and serialize as their integer request id —
    existing callers that treated ``submit``'s return value as an id
    keep working unchanged — and additionally expose the future API:
    :meth:`done`, :meth:`result` (the :class:`ServiceResponse`, or the
    request's error re-raised), :meth:`exception`, and
    :meth:`add_done_callback` (fires with the ticket, in whatever
    thread resolved it, the instant the verdict exists).
    """

    def __new__(cls, request_id: int, source: str | None, key: str):
        self = super().__new__(cls, request_id)
        self.source = source
        self.key = key
        #: Optional :class:`repro.obs.trace.SpanContext` for this
        #: request; phase spans of the solve are recorded under it.
        self.trace = None
        self._joined_at: float | None = None
        self._completion = Completion()
        self._completion.owner = self
        return self

    @property
    def request_id(self) -> int:
        return int(self)

    def done(self) -> bool:
        """True once the verdict (or the request's error) exists."""
        return self._completion.done()

    def result(self, timeout: float | None = None) -> ServiceResponse:
        """Block until answered; the response, or the error re-raised."""
        return self._completion.result(timeout)

    def exception(self, timeout: float | None = None) -> BaseException | None:
        """Block until answered; the recorded error (``None`` on success)."""
        return self._completion.exception(timeout)

    def add_done_callback(self, fn) -> None:
        """Run ``fn(ticket)`` on completion (now, if already answered).

        The callback runs in whatever thread resolved the ticket — the
        submitting thread for a cache hit, a pool completion thread
        otherwise — so it must be thread-safe and must not block.  Code
        living on an asyncio loop should use :meth:`add_loop_callback`
        instead of touching loop state from here.
        """
        self._completion.add_done_callback(fn)

    def add_loop_callback(self, loop, fn) -> None:
        """Run ``fn(ticket)`` *on the event loop* once the ticket resolves.

        The bridge between the completion-driven scheduler and asyncio
        code: completions resolve in pool/submitter threads, where
        touching loop state is undefined behaviour, so this wraps the
        callback in ``loop.call_soon_threadsafe``.  A loop that has
        already closed (server past its drain deadline) swallows the
        callback — by then nobody is listening for the verdict, which
        is already cached.
        """

        def _bounce(ticket) -> None:
            try:
                loop.call_soon_threadsafe(fn, ticket)
            except RuntimeError:  # loop already closed
                pass

        self._completion.add_done_callback(_bounce)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done() else "pending"
        return f"ServiceTicket({int(self)}, {state})"


class _Inflight:
    """One in-flight computation and every ticket awaiting it."""

    __slots__ = ("key", "tickets", "features", "digest")

    def __init__(self, key: str, ticket: ServiceTicket) -> None:
        self.key = key
        self.tickets = [ticket]
        #: Structural features of the instance (set when a timing log is
        #: attached), recorded with the solve's elapsed time.
        self.features: dict | None = None
        #: Structural :func:`~repro.hypergraph.pair_digest` (set when a
        #: durable store backs the cache), persisted alongside the
        #: verdict as its secondary index.
        self.digest: str | None = None


class EngineService:
    """A concurrent duality scheduler: cache → in-flight dedup → warm pool."""

    def __init__(
        self,
        method: str = "fk-b",
        n_jobs: int | None = 1,
        cache: ResultCache | str | Path | None = None,
        pool: EnginePool | None = None,
        autosave: bool = True,
        cache_max_entries: int | None = None,
        timings: TimingLog | str | Path | None = None,
        store: VerdictStore | str | Path | None = None,
        shard_backend=None,
    ) -> None:
        """Start a service session.

        ``cache`` may be a live :class:`ResultCache`, a path (loaded
        now, persisted after every computed verdict while ``autosave``
        holds and again on :meth:`close` — the cross-session
        persistence mode), or ``None`` for no caching.  ``autosave=
        False`` restores the save-only-on-close behaviour for callers
        that batch their own persistence.  ``cache_max_entries`` caps a
        path-loaded cache with LRU eviction (``None`` — the default —
        keeps it unbounded; ignored for a live ``cache`` object, which
        carries its own cap).  ``pool`` lets several services share one
        warm :class:`EnginePool`; a pool the service created itself is
        shut down on :meth:`close`, a borrowed one is left running.
        ``timings`` (a :class:`~repro.obs.timings.TimingLog` or a path)
        records every computed solve — engine, elapsed, structural
        features — as one JSONL line; verdicts are never affected.

        ``store`` (a :class:`~repro.store.VerdictStore` or a path)
        replaces the whole-file cache persistence with the durable
        journal/SQLite store: every computed verdict is one fsync'd
        journal append, the in-memory :class:`ResultCache` becomes a
        read-through/write-through LRU over it, and — unless an
        explicit ``timings`` sink is given — per-engine timings land in
        the store's ``timings`` table.  Mutually exclusive with
        ``cache``; a store the service opened from a path is closed on
        :meth:`close`, a live one is left open for its other users.

        ``shard_backend`` (a :class:`~repro.parallel.backends.ShardBackend`)
        redirects cache-miss solves of the parallel methods (``fk-a``,
        ``fk-b``, ``bm``, ``logspace``) through
        :func:`~repro.parallel.executor.decide_duality_parallel` on
        that backend — the coordinator mode, where shards fan out to a
        peer fleet instead of the local pool.  Other methods, cache
        hits, and dedup joins are untouched; the backend is borrowed
        (its owner closes it).
        """
        self.method = method
        if store is not None and cache is not None:
            raise ValueError(
                "pass either cache= (legacy whole-file persistence) or "
                "store= (durable journal/SQLite store), not both"
            )
        if method in ("portfolio", "auto") and store is not None:
            raise ValueError(
                f"method={method!r} cannot be cached: the winning engine "
                "(and hence the certificate) depends on timing; pick a "
                "concrete engine or drop the store (timings can still land "
                "durably via timings=store.timing_log())"
            )
        if method in ("portfolio", "auto") and cache is not None:
            # Fail at session start, not mid-drain: a portfolio (or auto
            # low-confidence race) winner is timing-dependent, which is
            # exactly what a replay cache must not store (same rule as
            # solve_many's).
            raise ValueError(
                f"method={method!r} cannot be cached: the winning engine "
                "(and hence the certificate) depends on timing; pick a "
                "concrete engine or drop the cache"
            )
        self._cache_path: Path | None = None
        self._autosave = autosave
        self._owns_store = isinstance(store, (str, Path))
        self.store: VerdictStore | None = (
            VerdictStore(store) if self._owns_store else store
        )
        if self.store is not None:
            # Write-through LRU over the durable store: every put is
            # journal-appended before it is visible, so the whole-file
            # persist()/autosave machinery naturally no-ops
            # (new_since_save stays 0).
            self.cache: ResultCache | None = ResultCache(
                max_entries=cache_max_entries, backend=self.store
            )
        elif isinstance(cache, (str, Path)):
            self._cache_path = Path(cache)
            self.cache = ResultCache.load(
                self._cache_path, max_entries=cache_max_entries
            )
        else:
            self.cache = cache
        self.shard_backend = shard_backend
        self._owns_pool = pool is None
        self.pool = pool if pool is not None else EnginePool(n_jobs)
        self.pool.start()
        self._lock = threading.RLock()
        self._undrained: list[ServiceTicket] = []
        self._inflight: dict[str, _Inflight] = {}
        self._next_id = 0
        self.requests = 0
        #: How each answered request got its verdict (satellite of the
        #: dedup-elapsed fix): computed / cache / dedup.
        self.by_origin = {"computed": 0, "cache": 0, "dedup": 0}
        if isinstance(timings, (str, Path)):
            self.timings: TimingLog | None = TimingLog(timings)
            self._owns_timings = True
        else:
            self.timings = timings
            self._owns_timings = False
        if self.timings is None and self.store is not None:
            # The store is the system of record: per-engine timings
            # default into its timings table (an explicit JSONL sink
            # still wins when the caller asked for one).
            self.timings = self.store.timing_log()
        self._closed = False

    # ------------------------------------------------------------------
    # The scheduler
    # ------------------------------------------------------------------

    def submit(
        self, instance, *, collect: bool = True, trace=None
    ) -> ServiceTicket:
        """Schedule one instance: a ``(G, H)`` pair or a ``.hg`` path.

        Returns the request's :class:`ServiceTicket` (usable directly
        as its integer request id).  The cache is consulted *here*: a
        hit's ticket is already resolved when ``submit`` returns, and
        never touches a worker.  An identical instance already in
        flight is joined, not recomputed.  Raises
        :class:`PoolClosedError` after :meth:`close`.  Path instances
        are loaded here too, so a missing or malformed file fails its
        own submit with the caller still knowing which request it was —
        it can never take down a later ``drain`` (and the rest of the
        queue) with it.

        With ``collect=True`` (the default) the ticket also joins the
        drain batch: the next :meth:`drain` blocks on it and returns
        its response in submission order.  Callers that await tickets
        themselves — the TCP server, the ``serve`` stdin loop — pass
        ``collect=False`` so their requests never leak into another
        caller's drain.

        ``trace`` (a :class:`repro.obs.trace.SpanContext`) makes this
        one request traced: cache-lookup / dedup-join / queue-wait /
        worker-solve spans are recorded under it as the request moves
        through the scheduler.  ``None`` (the default) costs nothing.
        """
        if self._closed:
            raise PoolClosedError("service is closed; open a new EngineService")
        if isinstance(instance, (str, Path)):
            source: str | None = str(instance)
            g, h = load_instance(instance)
        else:
            source = None
            g, h = instance
        key = instance_key(g, h, self.method)
        cache_hit: DualityResult | None = None
        entry: _Inflight | None = None
        lookup_start = time.time() if trace is not None else 0.0
        with self._lock:
            if self._closed:
                raise PoolClosedError(
                    "service is closed; open a new EngineService"
                )
            request_id = self._next_id
            self._next_id += 1
            ticket = ServiceTicket(request_id, source, key)
            ticket.trace = trace
            if collect:
                self._undrained.append(ticket)
            self.requests += 1
            joined = self._inflight.get(key)
            if joined is not None:
                # Same instance already computing: replay its verdict
                # when it lands, without consulting the cache again —
                # one solve, one recorded miss (solve_many's
                # within-batch dedup rule).  An in-flight key cannot be
                # in the cache: _on_solved fills the cache and retires
                # the entry under this same lock.
                joined.tickets.append(ticket)
                ticket._joined_at = time.time()
                return ticket
            if self.cache is not None:
                cache_hit = self.cache.get(key)
            if cache_hit is None:
                entry = _Inflight(key, ticket)
                self._inflight[key] = entry
        if trace is not None:
            record_span(
                trace,
                "cache-lookup",
                lookup_start,
                time.time(),
                hit=cache_hit is not None,
                cached_service=self.cache is not None,
            )
        if cache_hit is not None:
            with self._lock:
                self.by_origin["cache"] += 1
            ticket._completion.resolve(
                value=self._response(
                    ticket, cache_hit, 0.0, cached=True, origin="cache"
                )
            )
            return ticket
        g_payload, h_payload = mask_payload(g), mask_payload(h)
        if self.cache is not None and self.cache.backed:
            # The durable store indexes verdicts structurally too; the
            # digest travels with the in-flight entry to _on_solved.
            entry.digest = pair_digest(g, h)
        if self.timings is not None:
            # Set before the pool sees the item: at n_jobs=1 the solve
            # (and _on_solved) runs inline inside pool.submit.
            entry.features = structural_features(g_payload, h_payload)
        if self.shard_backend is not None and self.method in PARALLEL_METHODS:
            self._solve_distributed(entry, ticket, g, h, trace)
            return ticket
        if trace is not None:
            # The worker builds its spans under the request's trace id;
            # only the picklable id pair crosses the process boundary.
            payload = (g_payload, h_payload, self.method, trace.wire())
            future = self.pool.submit(
                solve_batch_entry_obs, payload, collect=False
            )
        else:
            payload = (g_payload, h_payload, self.method)
            future = self.pool.submit(solve_batch_entry, payload, collect=False)
        future.trace = trace
        future.add_done_callback(
            lambda f, entry=entry: self._on_solved(entry, f)
        )
        return ticket

    def _solve_distributed(self, entry: _Inflight, ticket, g, h, trace) -> None:
        """One cache-miss solve through the shard backend (coordinator
        mode): plan locally, fan the shards out, merge — then feed the
        verdict through the exact completion path a pool solve uses.

        Runs synchronously in the submitting thread (the server's
        dispatcher executor), like an inline ``n_jobs=1`` pool solve:
        the backend's own width is the parallelism, so a second local
        worker layer would only add queueing.  A synthetic completion
        keeps every :meth:`_on_solved` invariant — persist before
        resolve, dedup replay, timing rows — identical to the local
        path.
        """
        future = Completion()
        future.trace = trace
        future.submitted_at = time.time()
        future.add_done_callback(lambda f, entry=entry: self._on_solved(entry, f))
        solve_start = time.time()
        started = time.perf_counter()
        try:
            result = decide_duality_parallel(
                g, h, method=self.method, backend=self.shard_backend, trace=trace
            )
        except Exception as exc:  # noqa: BLE001 - per-request error object
            future.resolve(error=exc)
            return
        elapsed = time.perf_counter() - started
        if trace is not None:
            record_span(
                trace,
                "distributed-solve",
                solve_start,
                time.time(),
                backend=self.shard_backend.name,
                method=self.method,
            )
        future.resolve(value=(result, elapsed))

    def _on_solved(self, entry: _Inflight, future) -> None:
        """One computation landed: cache it, resolve every waiter.

        Runs in whatever thread completed the future — the submitting
        thread at ``n_jobs=1``, a pool collector thread otherwise.
        """
        error = future.exception()
        worker_spans = None
        with self._lock:
            self._inflight.pop(entry.key, None)
            tickets = list(entry.tickets)
            if error is None:
                outcome = future.result()
                if len(outcome) == 3:
                    # The traced worker entry piggybacks its spans on
                    # the result (a sink cannot cross processes).
                    result, elapsed, extras = outcome
                    worker_spans = extras.get("spans")
                else:
                    result, elapsed = outcome
                if self.cache is not None:
                    # With a store backend this is the durable journal
                    # append (persist-before-resolve happens right here,
                    # before any waiter is resolved below).
                    self.cache.put(entry.key, result, digest=entry.digest)
        if error is not None:
            for ticket in tickets:
                ticket._completion.resolve(error=error)
            return
        trace = getattr(future, "trace", None)
        if trace is not None and worker_spans:
            # Queue wait is the gap between pool submission and the
            # moment a worker actually picked the item up.
            worker_start = min(s["start"] for s in worker_spans)
            record_span(
                trace,
                "queue-wait",
                future.submitted_at,
                max(future.submitted_at, worker_start),
            )
            trace.sink.extend(worker_spans)
        if self.timings is not None:
            self._record_timings(entry, result, elapsed, trace)
        if self._autosave:
            # Persist before resolving: once a waiter has its answer,
            # the verdict is already on disk — a crash loses nothing
            # the service ever reported.
            self.persist()
        with self._lock:
            self.by_origin["computed"] += 1
            self.by_origin["dedup"] += len(tickets) - 1
        primary = True
        for ticket in tickets:
            if not primary and ticket.trace is not None:
                # The joiner's own wait on the primary's computation.
                record_span(
                    ticket.trace,
                    "dedup-join",
                    ticket._joined_at if ticket._joined_at else time.time(),
                    time.time(),
                    key=entry.key[:16],
                )
            ticket._completion.resolve(
                value=self._response(
                    ticket,
                    result,
                    elapsed,
                    cached=not primary,
                    origin="computed" if primary else "dedup",
                )
            )
            primary = False

    def _record_timings(self, entry, result, elapsed, trace) -> None:
        """One JSONL row per computed solve (plus the portfolio's losers).

        Never lets a logging failure poison a verdict that is already
        computed — recording errors are swallowed.
        """
        trace_id = trace.trace_id if trace is not None else None
        try:
            self.timings.record(
                self.method,
                elapsed,
                features=entry.features,
                dual=result.is_dual,
                trace_id=trace_id,
            )
            extra = getattr(result.stats, "extra", None)
            auto = extra.get("auto") if isinstance(extra, dict) else None
            portfolio = extra.get("portfolio") if isinstance(extra, dict) else None
            if auto:
                # The selector's outcome rows (role="auto") feed the
                # online-learning loop: each engine it actually ran,
                # tagged with the chosen winner and the decision mode.
                # A race fallback also sets extra["portfolio"]; the auto
                # rows subsume it, so don't record the race twice.
                for engine, engine_s in (auto.get("timings_s") or {}).items():
                    if engine_s is None:
                        continue
                    self.timings.record(
                        engine,
                        engine_s,
                        features=entry.features,
                        dual=result.is_dual,
                        trace_id=trace_id,
                        role="auto",
                        winner=auto.get("engine"),
                        mode=auto.get("mode"),
                    )
            elif portfolio:
                # The racer already timed every engine it ran — per-engine
                # rows are exactly the learned-selection training signal.
                for engine, engine_s in (portfolio.get("timings_s") or {}).items():
                    self.timings.record(
                        engine,
                        engine_s,
                        features=entry.features,
                        dual=result.is_dual,
                        trace_id=trace_id,
                        role="portfolio",
                        winner=portfolio.get("winner"),
                    )
        except Exception:  # noqa: BLE001 - observation must not break solves
            pass

    @staticmethod
    def _response(
        ticket: ServiceTicket,
        result: DualityResult,
        elapsed_s: float,
        cached: bool,
        origin: str = "computed",
    ) -> ServiceResponse:
        return ServiceResponse(
            request_id=ticket.request_id,
            source=ticket.source,
            key=ticket.key,
            result=result,
            elapsed_s=elapsed_s,
            cached=cached,
            origin=origin,
        )

    def drain(self) -> list[ServiceResponse]:
        """Await everything submitted for collection, in submission order.

        The lock-step compatibility view over the scheduler: responses
        come back in the order the tickets were submitted, with
        verdicts and certificates identical to one-at-a-time
        ``decide_duality`` calls.  A request error is re-raised here
        (the first one, in submission order) after the whole batch has
        settled — the rest of the batch is still computed and cached.
        The service stays open — submit/drain cycles repeat on the same
        workers.  In path-cache mode every computed verdict has already
        been persisted (atomically) by the time its ticket resolves, so
        a session that crashes later has lost nothing it answered.
        """
        if self._closed:
            raise PoolClosedError("service is closed; open a new EngineService")
        with self._lock:
            tickets, self._undrained = self._undrained, []
        responses: list[ServiceResponse] = []
        first_error: BaseException | None = None
        for ticket in tickets:
            error = ticket.exception()
            if error is not None:
                if first_error is None:
                    first_error = error
            else:
                responses.append(ticket.result())
        if first_error is not None:
            raise first_error
        if self._autosave:
            self.persist()
        return responses

    def solve(self, g: Hypergraph, h: Hypergraph) -> ServiceResponse:
        """Answer one in-memory pair now (queued requests are untouched)."""
        return self.submit((g, h), collect=False).result()

    def solve_file(self, path: str | Path) -> ServiceResponse:
        """Answer one ``.hg`` instance file now (the queue is untouched)."""
        return self.submit(path, collect=False).result()

    # ------------------------------------------------------------------
    # Lifecycle and introspection
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """A snapshot of service health for logs and tests."""
        with self._lock:
            out = {
                "requests": self.requests,
                "queued": len(self._undrained),
                "inflight": len(self._inflight),
                "method": self.method,
                "n_jobs": self.pool.n_jobs,
                "pool_generations": self.pool.generations,
                "pool_restarts": self.pool.restarts,
                "tasks_completed": self.pool.tasks_completed,
                "by_origin": dict(self.by_origin),
            }
        if self.cache is not None:
            out["cache_hits"] = self.cache.hits
            out["cache_misses"] = self.cache.misses
            out["cache_entries"] = len(self.cache)
        if self.timings is not None:
            out["timings_recorded"] = self.timings.records_written
        if self.store is not None:
            out["store"] = self.store.stats()
        return out

    def register_metrics(self, registry) -> None:
        """Register service, pool, and cache counters on an obs
        :class:`~repro.obs.metrics.MetricsRegistry` (callback gauges —
        scrapes read the live values)."""
        registry.gauge_fn(
            "service_requests_total", "Requests submitted", lambda: self.requests
        )
        registry.gauge_fn(
            "service_inflight",
            "Distinct computations currently in flight",
            lambda: len(self._inflight),
        )
        for origin in ("computed", "cache", "dedup"):
            registry.gauge_fn(
                f"service_responses_{origin}_total",
                f"Responses answered via {origin}",
                lambda origin=origin: self.by_origin[origin],
            )
        self.pool.register_metrics(registry)
        if self.cache is not None:
            self.cache.register_metrics(registry)
        if self.store is not None:
            self.store.register_metrics(registry)

    def persist(self) -> int:
        """Flush new cache entries to the session's cache path (if any).

        A no-op without a path-backed cache or when nothing changed
        since the last save; returns the number of entries on disk
        after the flush (0 when skipped).  The underlying
        :meth:`ResultCache.save` is atomic, so a crash mid-persist
        leaves the previous cache generation loadable.  Thread-safe —
        completion callbacks call this after every computed verdict.
        """
        if self._cache_path is None or self.cache is None:
            return 0
        if self.cache.new_since_save == 0:
            return 0
        return self.cache.save(self._cache_path)

    def close(self) -> None:
        """End the session: persist the cache, release owned workers.

        Idempotent.  A borrowed pool (one passed into the constructor)
        is left running for its other users; with an owned pool, any
        ticket still in flight resolves with :class:`PoolClosedError`.
        """
        if self._closed:
            return
        self._closed = True
        self.persist()
        if self._owns_timings and self.timings is not None:
            self.timings.close()
        if self._owns_store and self.store is not None:
            # Folds the journal into SQLite and releases the handles; a
            # borrowed store stays open for its other users.
            self.store.close()
        if self._owns_pool:
            self.pool.shutdown()

    def __enter__(self) -> "EngineService":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def response_to_json(response: ServiceResponse) -> dict:
    """A JSON-safe dict for one verdict line of the ``serve`` stream.

    Witness vertices go through the lossless tagged codec; a witness
    outside the codec's type table (user-defined objects) degrades to
    its ``repr`` strings rather than failing the whole stream.
    """
    result = response.result
    cert = result.certificate
    try:
        witness = encode_vertex_set(cert.witness)
    except CodecError:
        witness = (
            sorted(map(repr, cert.witness)) if cert.witness is not None else None
        )
    return {
        "id": response.request_id,
        "source": response.source,
        "key": response.key,
        "method": result.method,
        "verdict": result.verdict.value,
        "dual": result.is_dual,
        "cached": response.cached,
        "origin": response.origin,
        "elapsed_ms": round(response.elapsed_s * 1000, 3),
        "kind": cert.kind.name if cert.kind is not None else None,
        "witness": witness,
        "path": list(cert.path) if cert.path is not None else None,
        "detail": cert.detail,
    }
