"""The engine service: a long-lived front end over the warm pool.

:class:`EngineService` is what ``repro serve`` (and any embedding
application) talks to.  It owns three pieces and wires them in the
right order:

1. a :class:`~repro.parallel.batch.ResultCache` **in front** of the
   queue — repeat instances are answered from the cache without ever
   reaching a worker, and the cache optionally persists to disk so
   hits survive across service sessions;
2. a request queue — ``submit`` accepts instances (``(G, H)`` pairs or
   ``.hg`` instance paths) and returns request ids; ``drain`` flushes
   the queue through the pool and returns responses in submission
   order;
3. a persistent :class:`~repro.service.pool.EnginePool` — workers spawn
   once per service lifetime, not once per request batch.

Verdicts stream as JSON-ready dicts (:func:`response_to_json`): vertex
labels travel through the lossless codec of
:mod:`repro.parallel.codec`, so a service answering over tuples or
strings round-trips its certificates exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.duality.result import DualityResult
from repro.hypergraph import Hypergraph
from repro.parallel.batch import BatchItem, ResultCache, load_instance, solve_many
from repro.parallel.codec import CodecError, encode_vertex_set
from repro.service.pool import EnginePool, PoolClosedError


@dataclass(frozen=True)
class ServiceResponse:
    """One answered request.

    ``request_id`` is the ticket ``submit`` returned; ``source`` the
    instance file path (``None`` for in-memory pairs); ``cached`` True
    when the verdict came from the cache instead of a worker.
    """

    request_id: int
    source: str | None
    key: str
    result: DualityResult
    elapsed_s: float
    cached: bool

    @property
    def is_dual(self) -> bool:
        return self.result.is_dual


class EngineService:
    """A persistent duality-deciding service: cache → queue → warm pool."""

    def __init__(
        self,
        method: str = "fk-b",
        n_jobs: int | None = 1,
        cache: ResultCache | str | Path | None = None,
        pool: EnginePool | None = None,
        autosave: bool = True,
    ) -> None:
        """Start a service session.

        ``cache`` may be a live :class:`ResultCache`, a path (loaded
        now, persisted after every :meth:`drain` that computed new
        verdicts and again on :meth:`close` — the cross-session
        persistence mode), or ``None`` for no caching.  ``autosave=
        False`` restores the save-only-on-close behaviour for callers
        that batch their own persistence.  ``pool`` lets several
        services share one warm :class:`EnginePool`; a pool the service
        created itself is shut down on :meth:`close`, a borrowed one is
        left running.
        """
        self.method = method
        if method == "portfolio" and cache is not None:
            # Fail at session start, not mid-drain: a portfolio winner is
            # timing-dependent, which is exactly what a replay cache must
            # not store (same rule as solve_many's).
            raise ValueError(
                "method='portfolio' cannot be cached: the winning engine "
                "(and hence the certificate) depends on timing; pick a "
                "concrete engine or drop the cache"
            )
        self._cache_path: Path | None = None
        self._autosave = autosave
        if isinstance(cache, (str, Path)):
            self._cache_path = Path(cache)
            self.cache: ResultCache | None = ResultCache.load(self._cache_path)
        else:
            self.cache = cache
        self._owns_pool = pool is None
        self.pool = pool if pool is not None else EnginePool(n_jobs)
        self.pool.start()
        self._queue: list[tuple[int, str | None, tuple]] = []
        self._next_id = 0
        self.requests = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Queue
    # ------------------------------------------------------------------

    def submit(self, instance) -> int:
        """Queue one instance: a ``(G, H)`` pair or a ``.hg`` path.

        Returns the request id used in the matching
        :class:`ServiceResponse`.  Raises :class:`PoolClosedError`
        after :meth:`close`.  Path instances are loaded *here*, so a
        missing or malformed file fails its own submit with the caller
        still knowing which request it was — it can never take down a
        later ``drain`` (and the rest of the queue) with it.
        """
        if self._closed:
            raise PoolClosedError("service is closed; open a new EngineService")
        if isinstance(instance, (str, Path)):
            source: str | None = str(instance)
            pair = load_instance(instance)
        else:
            source = None
            g, h = instance
            pair = (g, h)
        request_id = self._next_id
        self._next_id += 1
        self._queue.append((request_id, source, pair))
        self.requests += 1
        return request_id

    def drain(self) -> list[ServiceResponse]:
        """Answer everything queued, in submission order.

        Cache hits never reach the pool; misses are solved by the warm
        workers with the ordinary serial engines (verdicts and
        certificates identical to one-at-a-time ``decide_duality``
        calls).  The service stays open — submit/drain cycles repeat on
        the same workers.  In path-cache mode every drain that computed
        new verdicts persists them (atomically) before returning, so a
        session that crashes later has lost nothing it already
        answered.
        """
        if self._closed:
            raise PoolClosedError("service is closed; open a new EngineService")
        if not self._queue:
            return []
        batch, self._queue = self._queue, []
        items = solve_many(
            [pair for _id, _source, pair in batch],
            method=self.method,
            cache=self.cache,
            pool=self.pool,
        )
        if self._autosave:
            self.persist()
        return [
            self._response(request_id, source, item)
            for (request_id, source, _pair), item in zip(batch, items)
        ]

    @staticmethod
    def _response(
        request_id: int, source: str | None, item: BatchItem
    ) -> ServiceResponse:
        return ServiceResponse(
            request_id=request_id,
            source=source,
            key=item.key,
            result=item.result,
            elapsed_s=item.elapsed_s,
            cached=item.cached,
        )

    def _solve_one(self, instance) -> ServiceResponse:
        if self._queue:
            # Draining here would answer the queued requests too and
            # have nowhere to deliver them — refuse rather than silently
            # discard someone's answers.
            raise ValueError(
                f"{len(self._queue)} request(s) already queued; call "
                "drain() first, or submit this instance to the queue too"
            )
        self.submit(instance)
        (response,) = self.drain()
        return response

    def solve(self, g: Hypergraph, h: Hypergraph) -> ServiceResponse:
        """Answer one in-memory pair now (the queue must be empty)."""
        return self._solve_one((g, h))

    def solve_file(self, path: str | Path) -> ServiceResponse:
        """Answer one ``.hg`` instance file now (the queue must be empty)."""
        return self._solve_one(path)

    # ------------------------------------------------------------------
    # Lifecycle and introspection
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """A snapshot of service health for logs and tests."""
        out = {
            "requests": self.requests,
            "queued": len(self._queue),
            "method": self.method,
            "n_jobs": self.pool.n_jobs,
            "pool_generations": self.pool.generations,
            "pool_restarts": self.pool.restarts,
            "tasks_completed": self.pool.tasks_completed,
        }
        if self.cache is not None:
            out["cache_hits"] = self.cache.hits
            out["cache_misses"] = self.cache.misses
            out["cache_entries"] = len(self.cache)
        return out

    def persist(self) -> int:
        """Flush new cache entries to the session's cache path (if any).

        A no-op without a path-backed cache or when nothing changed
        since the last save; returns the number of entries on disk
        after the flush (0 when skipped).  The underlying
        :meth:`ResultCache.save` is atomic, so a crash mid-persist
        leaves the previous cache generation loadable.
        """
        if self._cache_path is None or self.cache is None:
            return 0
        if self.cache.new_since_save == 0:
            return 0
        return self.cache.save(self._cache_path)

    def close(self) -> None:
        """End the session: persist the cache, release owned workers.

        Idempotent.  A borrowed pool (one passed into the constructor)
        is left running for its other users.
        """
        if self._closed:
            return
        self._closed = True
        self.persist()
        if self._owns_pool:
            self.pool.shutdown()

    def __enter__(self) -> "EngineService":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def response_to_json(response: ServiceResponse) -> dict:
    """A JSON-safe dict for one verdict line of the ``serve`` stream.

    Witness vertices go through the lossless tagged codec; a witness
    outside the codec's type table (user-defined objects) degrades to
    its ``repr`` strings rather than failing the whole stream.
    """
    result = response.result
    cert = result.certificate
    try:
        witness = encode_vertex_set(cert.witness)
    except CodecError:
        witness = (
            sorted(map(repr, cert.witness)) if cert.witness is not None else None
        )
    return {
        "id": response.request_id,
        "source": response.source,
        "key": response.key,
        "method": result.method,
        "verdict": result.verdict.value,
        "dual": result.is_dual,
        "cached": response.cached,
        "elapsed_ms": round(response.elapsed_s * 1000, 3),
        "kind": cert.kind.name if cert.kind is not None else None,
        "witness": witness,
        "path": list(cert.path) if cert.path is not None else None,
        "detail": cert.detail,
    }
