"""A persistent worker pool whose unit of scheduling is one *future*.

:class:`repro.parallel.executor.WorkerPool` is deliberately transient:
every ``map`` spawns a fresh ``multiprocessing.Pool`` and tears it down.
That is the right shape for one-shot library calls, but a service that
answers many small requests pays the fork-and-import cost on every one
of them.  :class:`EnginePool` keeps the workers *warm* — and, since
PR 5, hands every submission back as a :class:`PoolFuture`, so callers
can overlap arbitrarily many work items and collect each one the moment
it finishes instead of marching in lock-step batches:

* **start / submit / drain / shutdown** — an explicit lifecycle.
  ``start`` spawns the workers once; ``submit`` enqueues one work item
  and returns its :class:`PoolFuture` (``result()`` blocks for that
  item alone, ``add_done_callback`` fires the instant it completes,
  out of submission order when the workers finish out of order);
  ``drain`` waits for everything submitted-for-collection and hands the
  results back by ticket in submission order — the lock-step view,
  kept for batch callers; ``shutdown`` releases the workers.  ``drain``
  leaves the pool warm — submit→drain cycles can repeat indefinitely on
  the same worker processes.
* **deterministic fallback** — ``n_jobs=1`` never touches
  ``multiprocessing``: work runs in-process *in the submitting thread*
  at submit time, so a single-threaded caller sees strict submission
  order (the convention the rest of :mod:`repro.parallel` uses) while
  multiple threads sharing one pool each still make progress.
* **per-item worker-death recovery** — the process backend is
  :class:`concurrent.futures.ProcessPoolExecutor`, which (unlike
  ``multiprocessing.Pool``) *detects* an abruptly dead worker instead
  of hanging.  A dead worker surfaces as a broken-pool outcome on the
  futures that were in flight; the first such future respawns the
  workers (a new *generation*) and every lost item resubmits itself —
  **only** the lost items: futures that already completed keep their
  results and are never re-run.  Work functions must therefore be
  idempotent — every function this library ships to workers is a pure
  decision procedure, so re-running one is always safe.
* **observability** — ``generations`` counts worker spawns (a warm pool
  stays at 1 across arbitrarily many batches — the property the tests
  assert), ``tasks_completed``/``restarts`` count throughput and
  recoveries, and :meth:`worker_pids` probes which processes are
  actually serving.

The pool is duck-compatible with ``WorkerPool`` (it has ``map``), so
:func:`repro.parallel.batch.solve_many` and
:func:`repro.parallel.executor.solve_shards` accept one via their
``pool=`` parameter and reuse it across calls; ``solve_many``
additionally recognises the richer ``submit`` API and schedules its
cache misses as individual futures.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from collections.abc import Callable, Iterable

from repro.parallel.executor import resolve_n_jobs


class PoolClosedError(RuntimeError):
    """Work was submitted to a pool after :meth:`EnginePool.shutdown`."""


def _probe_pid(_item) -> int:
    """Worker-side probe (module-level for pickling): the worker's PID."""
    return os.getpid()


class Completion:
    """The resolve-once core shared by pool futures and service tickets.

    One value-or-error slot behind an event, plus completion callbacks
    that run exactly once — immediately, in the registering thread, when
    the completion has already settled.  A callback exception is
    reported to ``stderr`` and swallowed: callbacks run in whatever
    thread resolved the completion (a worker-collection thread for
    process pools), and one faulty observer must not take the collector
    down with it.
    """

    def __init__(self) -> None:
        self._settled = threading.Event()
        self._mutex = threading.Lock()
        self._value = None
        self._error: BaseException | None = None
        self._callbacks: list[Callable] = []

    def done(self) -> bool:
        """True once a value or an error has been recorded."""
        return self._settled.is_set()

    def wait(self, timeout: float | None = None) -> None:
        if not self._settled.wait(timeout):
            raise TimeoutError(f"work item did not complete within {timeout}s")

    def result(self, timeout: float | None = None):
        """Block until settled; the value, or the error re-raised."""
        self.wait(timeout)
        if self._error is not None:
            raise self._error
        return self._value

    def exception(self, timeout: float | None = None) -> BaseException | None:
        """Block until settled; the recorded error (``None`` on success)."""
        self.wait(timeout)
        return self._error

    def add_done_callback(self, fn: Callable) -> None:
        """Run ``fn(owner)`` on completion (now, if already settled)."""
        with self._mutex:
            if not self._settled.is_set():
                self._callbacks.append(fn)
                return
        self._run_callback(fn)

    # -- resolution (the owning pool/service side) ---------------------

    #: What completion callbacks receive; owners override with `self`.
    owner = None

    def resolve(self, value=None, error: BaseException | None = None) -> bool:
        """Record the outcome once; False when already settled."""
        with self._mutex:
            if self._settled.is_set():
                return False
            self._value = value
            self._error = error
            callbacks, self._callbacks = self._callbacks, []
            self._settled.set()
        for fn in callbacks:
            self._run_callback(fn)
        return True

    def _run_callback(self, fn: Callable) -> None:
        try:
            fn(self.owner if self.owner is not None else self)
        except Exception:  # noqa: BLE001 - observer bug, not ours
            import traceback

            print("completion callback failed:", file=sys.stderr)
            traceback.print_exc()


class PoolFuture(Completion):
    """One submitted work item: ticket, payload, and completion handle.

    ``ticket`` is the submission-order serial number (the key
    :meth:`EnginePool.drain` reports results under); ``fn``/``item``
    ride along so a worker-death recovery can resubmit exactly this
    item; ``attempts`` counts how many times it has been shipped to a
    worker set.
    """

    def __init__(self, ticket: int, fn: Callable, item) -> None:
        super().__init__()
        self.ticket = ticket
        self.fn = fn
        self.item = item
        self.attempts = 0
        #: Wall-clock submission time — with the worker span's start it
        #: bounds how long the item sat in the pool queue (the
        #: "queue-wait" span of a traced request).
        self.submitted_at = time.time()
        #: Optional :class:`repro.obs.trace.SpanContext` riding with the
        #: item; the pool itself never reads it.
        self.trace = None

    @property
    def owner(self):  # callbacks receive the future itself
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done() else "pending"
        return f"PoolFuture(ticket={self.ticket}, {state}, attempts={self.attempts})"


class HedgedFuture(Completion):
    """First-resolution-wins across duplicate launches of one work item.

    Wraps a ``launch(attempt_index)`` callable that submits the item to
    some execution slot (a pool worker, a remote peer) and returns a
    :class:`Completion`-style future.  Three things launch attempts:

    * attempt 0 fires at construction;
    * after ``hedge_after`` seconds without a resolution a *hedge* — a
      duplicate of the still-running attempt — launches, and the timer
      re-arms so a second straggler hedges again.  First resolution
      wins; the loser is cancelled in the only sense that exists across
      a process or wire boundary — its eventual result is discarded by
      the resolve-once core;
    * an attempt failing with one of ``retryable`` relaunches
      immediately: the worker died or the peer dropped mid-shard, and
      the item itself is innocent (work functions are pure decision
      procedures, so duplicate execution is always safe).

    ``max_attempts`` bounds total launches.  A non-retryable error
    resolves the future with that error as soon as no other attempt is
    still outstanding; a retryable one only surfaces once the attempt
    budget is spent and every launched attempt has failed.
    """

    def __init__(
        self,
        launch: Callable[[int], Completion],
        *,
        hedge_after: float | None = None,
        max_attempts: int = 3,
        retryable: tuple = (),
        on_hedge: Callable | None = None,
        on_hedge_won: Callable | None = None,
    ) -> None:
        super().__init__()
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self._launch = launch
        self._hedge_after = hedge_after
        self._max_attempts = max_attempts
        self._retryable = tuple(retryable)
        self._on_hedge = on_hedge
        self._on_hedge_won = on_hedge_won
        self._state = threading.Lock()
        self._launched = 0
        self._outstanding = 0
        self._timer: threading.Timer | None = None
        #: How many duplicate launches the deadline timer fired.
        self.hedges_fired = 0
        #: True when the winning resolution came from a hedge.
        self.hedge_won = False
        self._try_launch(hedge=False)
        self._arm()

    def _try_launch(self, hedge: bool) -> bool:
        with self._state:
            if self.done() or self._launched >= self._max_attempts:
                return False
            index = self._launched
            self._launched += 1
            self._outstanding += 1
            if hedge:
                self.hedges_fired += 1
        if hedge and self._on_hedge is not None:
            self._on_hedge()
        try:
            attempt = self._launch(index)
        except BaseException as exc:  # noqa: BLE001 - the launch is an attempt
            self._attempt_failed(hedge, exc)
            return True
        attempt.add_done_callback(
            lambda settled, hedge=hedge: self._attempt_done(hedge, settled)
        )
        return True

    def _attempt_done(self, hedge: bool, attempt) -> None:
        error = attempt.exception()
        if error is not None:
            self._attempt_failed(hedge, error)
            return
        self._cancel_timer()
        with self._state:
            self._outstanding -= 1
        if self.resolve(value=attempt.result()) and hedge:
            self.hedge_won = True
            if self._on_hedge_won is not None:
                self._on_hedge_won()

    def _attempt_failed(self, hedge: bool, error: BaseException) -> None:
        with self._state:
            self._outstanding -= 1
            last_standing = self._outstanding == 0
        if self.done():
            return
        if isinstance(error, self._retryable):
            if self._try_launch(hedge=False):
                return
            # Budget spent (or a racing win): only the last failing
            # attempt may surface the error.
            with self._state:
                last_standing = self._outstanding == 0
        if last_standing:
            self._cancel_timer()
            self.resolve(error=error)

    def _arm(self) -> None:
        if self._hedge_after is None or self.done():
            return
        with self._state:
            if self._timer is not None or self._launched >= self._max_attempts:
                return
            self._timer = threading.Timer(self._hedge_after, self._hedge_now)
            self._timer.daemon = True
            self._timer.start()

    def _hedge_now(self) -> None:
        with self._state:
            self._timer = None
        if self.done():
            return
        self._try_launch(hedge=True)
        self._arm()

    def _cancel_timer(self) -> None:
        with self._state:
            timer, self._timer = self._timer, None
        if timer is not None:
            timer.cancel()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done() else "pending"
        return (
            f"HedgedFuture({state}, launched={self._launched}, "
            f"hedges={self.hedges_fired})"
        )


class EnginePool:
    """Warm worker processes scheduling per-item :class:`PoolFuture`\\ s."""

    #: How many times one item is (re)shipped across worker-set deaths
    #: before its future gives up with an error.
    MAX_RESTARTS = 3

    def __init__(self, n_jobs: int | None = 1) -> None:
        self.n_jobs = resolve_n_jobs(n_jobs)
        self._executor = None
        self._started = False
        self._closed = False
        self._lock = threading.RLock()
        #: Futures submitted with ``collect=True`` and not yet drained.
        self._collectable: dict[int, PoolFuture] = {}
        self._next_ticket = 0
        #: Worker-set spawns so far (1 after ``start`` until a recovery).
        self.generations = 0
        #: Successfully completed work items.
        self.tasks_completed = 0
        #: Worker-death recoveries performed.
        self.restarts = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def started(self) -> bool:
        return self._started and not self._closed

    @property
    def closed(self) -> bool:
        return self._closed

    def start(self) -> "EnginePool":
        """Spawn the workers (idempotent; a no-op at ``n_jobs=1``)."""
        with self._lock:
            if self._closed:
                raise PoolClosedError("cannot start a pool after shutdown")
            if not self._started:
                self._started = True
                self._spawn()
        return self

    def _spawn(self) -> None:
        # Caller holds self._lock.
        self.generations += 1
        if self.n_jobs == 1:
            return
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        self._executor = ProcessPoolExecutor(
            max_workers=self.n_jobs,
            mp_context=multiprocessing.get_context(),
        )

    def shutdown(self) -> None:
        """Release the workers.  Idempotent: repeated calls are no-ops.

        Futures still in flight are resolved with
        :class:`PoolClosedError` (after the executor has been given the
        chance to cancel them), so no waiter ever hangs on a pool that
        no longer exists.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            undrained = list(self._collectable.values())
            self._collectable.clear()
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)
        for future in undrained:
            # Already-settled futures ignore this (resolve-once).
            future.resolve(
                error=PoolClosedError("pool was shut down with work in flight")
            )

    def __enter__(self) -> "EnginePool":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # Work
    # ------------------------------------------------------------------

    def submit(self, fn: Callable, item, *, collect: bool = True) -> PoolFuture:
        """Schedule ``fn(item)``; returns its :class:`PoolFuture`.

        ``fn`` must be a module-level (picklable) function when
        ``n_jobs > 1``.  Submitting is legal any time before
        ``shutdown`` — including after a ``drain`` (the workers stay
        warm between batches) and from any thread.

        With ``collect=True`` (the default) the future also joins the
        pool's drain batch: the next :meth:`drain` blocks on it and
        reports its result under ``future.ticket``.  Callers that await
        futures themselves — the service scheduler, ``solve_many`` —
        pass ``collect=False`` so their items never leak into another
        caller's drain.
        """
        with self._lock:
            if self._closed:
                raise PoolClosedError(
                    "pool is shut down; create a new EnginePool to submit again"
                )
            if not self._started:
                self._started = True
                self._spawn()
            ticket = self._next_ticket
            self._next_ticket += 1
            future = PoolFuture(ticket, fn, item)
            if collect:
                self._collectable[ticket] = future
            executor = self._executor
        if executor is None:
            self._run_inline(future)
        else:
            self._ship(future, executor)
        return future

    def _run_inline(self, future: PoolFuture) -> None:
        """In-process mode: run now, in the submitting thread."""
        future.attempts += 1
        try:
            value = future.fn(future.item)
        except BaseException as exc:  # noqa: BLE001 - re-raised at result()
            future.resolve(error=exc)
        else:
            with self._lock:
                self.tasks_completed += 1
            future.resolve(value=value)

    def _ship(self, future: PoolFuture, executor) -> None:
        """Hand one item to a live executor and watch its outcome."""
        future.attempts += 1
        try:
            handle = executor.submit(future.fn, future.item)
        except RuntimeError as exc:
            # The executor was shut down between our lock release and
            # the submit — the pool is closing.
            future.resolve(error=PoolClosedError(str(exc)))
            return
        handle.add_done_callback(
            lambda handle, future=future, executor=executor: self._settle(
                future, handle, executor
            )
        )

    def _settle(self, future: PoolFuture, handle, executor) -> None:
        """Record one executor outcome (runs in the collector thread)."""
        from concurrent.futures import BrokenExecutor, CancelledError

        try:
            value = handle.result()
        except (BrokenExecutor, CancelledError):
            # The worker set died under this item (or shutdown cancelled
            # it) — the item itself is innocent.  Retry it on a fresh
            # generation; completed siblings are untouched.
            self._retry(future, executor)
            return
        except BaseException as exc:  # noqa: BLE001 - re-raised at result()
            future.resolve(error=exc)
            return
        with self._lock:
            self.tasks_completed += 1
        future.resolve(value=value)

    def _retry(self, future: PoolFuture, dead_executor) -> None:
        with self._lock:
            if self._closed:
                future.resolve(
                    error=PoolClosedError("pool was shut down with work in flight")
                )
                return
            if future.attempts > self.MAX_RESTARTS:
                future.resolve(
                    error=RuntimeError(
                        f"worker pool broke {future.attempts} times under one "
                        f"item; giving up (restarts so far: {self.restarts})"
                    )
                )
                return
            if self._executor is dead_executor:
                # First future to observe this dead worker set respawns
                # it; the others find the fresh generation already up.
                self.restarts += 1
                dead_executor.shutdown(wait=False, cancel_futures=True)
                self._executor = None
                self._spawn()
            executor = self._executor
        self._ship(future, executor)

    def drain(self) -> dict[int, object]:
        """Await every collectable submission; results by ticket.

        The pool stays warm afterwards — ``submit`` keeps working on
        the same worker processes.  Futures are awaited in submission
        order; a work-function exception is re-raised here (the first
        one, in ticket order) after the whole batch has settled, and
        the batch is cleared either way — a failed drain never poisons
        the next one.
        """
        with self._lock:
            batch = sorted(self._collectable.items())
            self._collectable.clear()
        results: dict[int, object] = {}
        first_error: BaseException | None = None
        for ticket, future in batch:
            error = future.exception()
            if error is not None:
                if first_error is None:
                    first_error = error
            else:
                results[ticket] = future.result()
        if first_error is not None:
            raise first_error
        return results

    def map(self, fn: Callable, items: Iterable) -> list:
        """``[fn(item) for item in items]`` on the warm workers.

        Duck-compatible with ``WorkerPool.map``; unlike it, repeated
        calls reuse the live workers instead of spawning per call.  The
        items run as individual futures (outside the drain batch), so a
        concurrent ``drain`` by another thread never steals them.
        """
        futures = [self.submit(fn, item, collect=False) for item in items]
        first_error: BaseException | None = None
        for future in futures:
            error = future.exception()
            if error is not None and first_error is None:
                first_error = error
        if first_error is not None:
            raise first_error
        return [future.result() for future in futures]

    def register_metrics(self, registry) -> None:
        """Expose the pool's live counters on a
        :class:`repro.obs.metrics.MetricsRegistry` as callback gauges —
        the counters stay where they are maintained; the registry reads
        them at scrape time."""
        registry.gauge_fn(
            "pool_workers", "Configured worker count", lambda: self.n_jobs
        )
        registry.gauge_fn(
            "pool_generations",
            "Worker-set spawns (1 until a worker-death recovery)",
            lambda: self.generations,
        )
        registry.gauge_fn(
            "pool_tasks_completed_total",
            "Work items completed by the pool",
            lambda: self.tasks_completed,
        )
        registry.gauge_fn(
            "pool_restarts_total",
            "Worker-death recoveries performed",
            lambda: self.restarts,
        )

    def worker_pids(self) -> frozenset[int]:
        """The PIDs actually answering work right now (self at ``n_jobs=1``).

        Probes with one task per worker slot; a warm pool reports the
        same set across batches, a respawned one a disjoint set.
        """
        return frozenset(self.map(_probe_pid, range(max(1, self.n_jobs))))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else ("warm" if self._started else "new")
        return (
            f"EnginePool(n_jobs={self.n_jobs}, {state}, "
            f"generation={self.generations}, completed={self.tasks_completed})"
        )
