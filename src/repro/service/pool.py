"""A persistent, reusable worker pool with an explicit lifecycle.

:class:`repro.parallel.executor.WorkerPool` is deliberately transient:
every ``map`` spawns a fresh ``multiprocessing.Pool`` and tears it down.
That is the right shape for one-shot library calls, but a service that
answers many small requests pays the fork-and-import cost on every one
of them.  :class:`EnginePool` keeps the workers *warm* instead:

* **start / submit / drain / shutdown** — an explicit lifecycle.
  ``start`` spawns the workers once; ``submit`` enqueues work and
  returns a ticket; ``drain`` waits for everything outstanding and
  hands the results back by ticket; ``shutdown`` releases the workers.
  ``drain`` leaves the pool warm — submit→drain cycles can repeat
  indefinitely on the same worker processes.
* **deterministic fallback** — ``n_jobs=1`` never touches
  ``multiprocessing``: work runs in-process in submission order, the
  same convention the rest of :mod:`repro.parallel` uses, so tests and
  single-core environments exercise identical code paths.
* **worker-death recovery** — the process backend is
  :class:`concurrent.futures.ProcessPoolExecutor`, which (unlike
  ``multiprocessing.Pool``) *detects* an abruptly dead worker instead
  of hanging.  The pool catches the broken-pool error, respawns the
  workers (a new *generation*), and resubmits the work that never
  completed.  Work functions must therefore be idempotent — every
  function this library ships to workers is a pure decision procedure,
  so re-running one is always safe.
* **observability** — ``generations`` counts worker spawns (a warm pool
  stays at 1 across arbitrarily many batches — the property the tests
  assert), ``tasks_completed``/``restarts`` count throughput and
  recoveries, and :meth:`worker_pids` probes which processes are
  actually serving.

The pool is duck-compatible with ``WorkerPool`` (it has ``map``), so
:func:`repro.parallel.batch.solve_many` and
:func:`repro.parallel.executor.solve_shards` accept one via their
``pool=`` parameter and reuse it across calls.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Iterable

from repro.parallel.executor import resolve_n_jobs


class PoolClosedError(RuntimeError):
    """Work was submitted to a pool after :meth:`EnginePool.shutdown`."""


def _probe_pid(_item) -> int:
    """Worker-side probe (module-level for pickling): the worker's PID."""
    return os.getpid()


class _Pending:
    """One submitted work item: its payload and (eventually) outcome."""

    __slots__ = ("fn", "item", "future", "done", "value", "error")

    def __init__(self, fn: Callable, item) -> None:
        self.fn = fn
        self.item = item
        self.future = None
        self.done = False
        self.value = None
        self.error: BaseException | None = None

    def settle(self) -> None:
        """Record the outcome of a finished future."""
        if self.done or self.future is None:
            return
        try:
            self.value = self.future.result()
        except BaseException as exc:  # noqa: BLE001 - re-raised at collect
            self.error = exc
        self.done = True


class EnginePool:
    """Warm worker processes with start/submit/drain/shutdown lifecycle."""

    #: How many times a broken worker set is respawned before giving up.
    MAX_RESTARTS = 3

    def __init__(self, n_jobs: int | None = 1) -> None:
        self.n_jobs = resolve_n_jobs(n_jobs)
        self._executor = None
        self._started = False
        self._closed = False
        self._pending: dict[int, _Pending] = {}
        self._next_ticket = 0
        #: Worker-set spawns so far (1 after ``start`` until a recovery).
        self.generations = 0
        #: Successfully completed work items.
        self.tasks_completed = 0
        #: Worker-death recoveries performed.
        self.restarts = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def started(self) -> bool:
        return self._started and not self._closed

    @property
    def closed(self) -> bool:
        return self._closed

    def start(self) -> "EnginePool":
        """Spawn the workers (idempotent; a no-op at ``n_jobs=1``)."""
        if self._closed:
            raise PoolClosedError("cannot start a pool after shutdown")
        if not self._started:
            self._started = True
            self._spawn()
        return self

    def _spawn(self) -> None:
        self.generations += 1
        if self.n_jobs == 1:
            return
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        self._executor = ProcessPoolExecutor(
            max_workers=self.n_jobs,
            mp_context=multiprocessing.get_context(),
        )

    def shutdown(self) -> None:
        """Release the workers.  Idempotent: repeated calls are no-ops.

        Outstanding submissions are discarded (drain first if their
        results matter).
        """
        if self._closed:
            return
        self._closed = True
        self._pending.clear()
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    def __enter__(self) -> "EnginePool":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # Work
    # ------------------------------------------------------------------

    def submit(self, fn: Callable, item) -> int:
        """Enqueue ``fn(item)``; returns a ticket for :meth:`drain`.

        ``fn`` must be a module-level (picklable) function when
        ``n_jobs > 1``.  Submitting is legal any time before
        ``shutdown`` — including after a ``drain`` (the workers stay
        warm between batches).
        """
        if self._closed:
            raise PoolClosedError(
                "pool is shut down; create a new EnginePool to submit again"
            )
        self.start()
        ticket = self._next_ticket
        self._next_ticket += 1
        pending = _Pending(fn, item)
        self._pending[ticket] = pending
        if self._executor is None:
            # In-process mode: run right away, in submission order.
            try:
                pending.value = fn(item)
            except BaseException as exc:  # noqa: BLE001 - re-raised at collect
                pending.error = exc
            pending.done = True
        else:
            pending.future = self._executor.submit(fn, item)
        return ticket

    def drain(self) -> dict[int, object]:
        """Wait for every outstanding submission; results by ticket.

        The pool stays warm afterwards — ``submit`` keeps working on the
        same worker processes.  If a worker died mid-batch, the workers
        are respawned and the lost items re-run transparently (counted
        in ``restarts``).  A work-function exception is re-raised here,
        and the batch is cleared either way — a failed drain never
        poisons the next one.
        """
        tickets = sorted(self._pending)
        try:
            results = self._collect(tickets)
        finally:
            for ticket in tickets:
                self._pending.pop(ticket, None)
        return results

    def map(self, fn: Callable, items: Iterable) -> list:
        """``[fn(item) for item in items]`` on the warm workers.

        Duck-compatible with ``WorkerPool.map``; unlike it, repeated
        calls reuse the live workers instead of spawning per call.
        """
        tickets = [self.submit(fn, item) for item in items]
        try:
            results = self._collect(tickets)
        finally:
            for ticket in tickets:
                self._pending.pop(ticket, None)
        return [results[ticket] for ticket in tickets]

    def worker_pids(self) -> frozenset[int]:
        """The PIDs actually answering work right now (self at ``n_jobs=1``).

        Probes with one task per worker slot; a warm pool reports the
        same set across batches, a respawned one a disjoint set.
        """
        return frozenset(self.map(_probe_pid, range(max(1, self.n_jobs))))

    # ------------------------------------------------------------------
    # Collection and recovery
    # ------------------------------------------------------------------

    def _collect(self, tickets: list[int]) -> dict[int, object]:
        from concurrent.futures import BrokenExecutor

        attempts = 0
        while True:
            broken = False
            for ticket in tickets:
                pending = self._pending[ticket]
                if pending.done:
                    continue
                # settle() never raises (outcomes are recorded in
                # .error); a dead worker surfaces as a BrokenExecutor
                # *outcome*, which flags the whole batch for recovery.
                pending.settle()
                if isinstance(pending.error, BrokenExecutor):
                    pending.done = False
                    pending.error = None
                    broken = True
                    break
            if not broken:
                break
            attempts += 1
            if attempts > self.MAX_RESTARTS:
                raise RuntimeError(
                    f"worker pool broke {attempts} times; giving up "
                    f"(restarts so far: {self.restarts})"
                )
            self._recover()

        out: dict[int, object] = {}
        for ticket in tickets:
            pending = self._pending[ticket]
            if pending.error is not None:
                raise pending.error
            self.tasks_completed += 1
            out[ticket] = pending.value
        return out

    def _recover(self) -> None:
        """Respawn the workers and resubmit everything unfinished."""
        from concurrent.futures import BrokenExecutor

        self.restarts += 1
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        self._spawn()
        for pending in self._pending.values():
            if pending.done and isinstance(pending.error, BrokenExecutor):
                # A sibling casualty of the same dead worker set.
                pending.done = False
                pending.error = None
            if not pending.done and self._executor is not None:
                pending.future = self._executor.submit(pending.fn, pending.item)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else ("warm" if self._started else "new")
        return (
            f"EnginePool(n_jobs={self.n_jobs}, {state}, "
            f"generation={self.generations}, completed={self.tasks_completed})"
        )
