"""``method="auto"``: predict the winning engine, race only when unsure.

The selector closes the loop the ROADMAP's learned-engine-selection
direction describes:

1. **Predict** — score the instance's
   :func:`~repro.obs.timings.structural_features` through a trained
   :class:`~repro.select.model.EngineModel`.
2. **High confidence** — solve directly with the predicted engine: one
   engine's CPU instead of the whole portfolio's.
3. **Low confidence** — fall back to a *reduced* race of the top-2
   predicted engines (still first-finisher-wins, still every-racer-
   correct, but half-or-less of the full portfolio's aggregate CPU).
4. **Cold start** — no model at all degrades to the full portfolio
   race with a :class:`ColdStartWarning`; verdicts are unaffected.
5. **Record** — when given a ``timings`` sink, every engine actually
   run lands back as a ``role="auto"`` timing row, so the next
   ``repro model fit`` learns from today's traffic (the online loop).

Every path returns some engine's own serial result object — verdicts
are engine-independent, so ``auto`` is bit-for-bit conformant with the
serial engines on the verdict, like the portfolio.  And like the
portfolio, the *certificate* may be timing-dependent on the race
paths, so ``auto`` results are never verdict-cached (``solve_many``,
``EngineService``, and the net server all refuse the combination).

The default model resolves once per process from the
``REPRO_AUTO_MODEL`` environment variable — the variable is inherited
by spawned pool workers, so ``solve_many(method="auto")`` and the
servers' worker processes pick the model up without any extra wiring.
"""

from __future__ import annotations

import os
import time
import warnings
from pathlib import Path

from repro.hypergraph import Hypergraph, mask_payload
from repro.obs.timings import TimingLog, structural_features
from repro.select.model import EngineModel

#: Top-probability threshold above which the predicted engine runs
#: alone.  Below it the top-``race_width`` engines race.
DEFAULT_CONFIDENCE = 0.65

#: How many predicted engines the low-confidence fallback races.
DEFAULT_RACE_WIDTH = 2

#: Environment variable naming the default model artifact; inherited by
#: spawned worker processes, which is how a batch/server model reaches
#: ``decide_duality(method="auto")`` calls inside the pool.
MODEL_ENV = "REPRO_AUTO_MODEL"


class ColdStartWarning(RuntimeWarning):
    """``method="auto"`` ran without a trained model (full-portfolio
    fallback; verdicts unaffected, CPU savings forfeited)."""


_UNRESOLVED = object()
_default_model: EngineModel | None | object = _UNRESOLVED


def set_default_model(model: EngineModel | str | os.PathLike | None) -> None:
    """Set this process's default ``auto`` model (object, path, or
    ``None`` to clear back to cold start).  A path is loaded eagerly so
    a bad artifact fails here, not inside a solve."""
    global _default_model
    if isinstance(model, (str, os.PathLike)):
        model = EngineModel.load(model)
    _default_model = model


def reset_default_model() -> None:
    """Forget the resolved default so :data:`MODEL_ENV` is re-read (for
    tests and long-lived processes that change the environment)."""
    global _default_model
    _default_model = _UNRESOLVED


def default_model() -> EngineModel | None:
    """The process default: whatever :func:`set_default_model` set, else
    the :data:`MODEL_ENV` artifact, resolved once and memoised.  An
    unreadable artifact warns and degrades to cold start — a stale env
    var must not break solving."""
    global _default_model
    if _default_model is _UNRESOLVED:
        path = os.environ.get(MODEL_ENV)
        if path:
            try:
                _default_model = EngineModel.load(path)
            except (OSError, ValueError, KeyError) as exc:
                warnings.warn(
                    f"ignoring unreadable auto-select model {path!r} "
                    f"({exc}); method='auto' degrades to the portfolio",
                    ColdStartWarning,
                    stacklevel=2,
                )
                _default_model = None
        else:
            _default_model = None
    return _default_model


def _resolve_model(model) -> EngineModel | None:
    if model is None:
        return default_model()
    if isinstance(model, (str, Path)):
        return EngineModel.load(model)
    return model


def decide_auto(
    g: Hypergraph,
    h: Hypergraph,
    model: EngineModel | str | Path | None = None,
    confidence: float | None = None,
    race_width: int = DEFAULT_RACE_WIDTH,
    n_jobs: int = 1,
    pool=None,
    timings: TimingLog | None = None,
    deep: bool = False,
):
    """Decide ``H = tr(G)`` with the learned selector.

    Parameters
    ----------
    model:
        An :class:`EngineModel`, a path to a saved artifact, or ``None``
        for the process default (:func:`default_model`).  No trained
        model → full portfolio race with a :class:`ColdStartWarning`.
    confidence:
        Threshold for solving with the prediction alone (default
        :data:`DEFAULT_CONFIDENCE`).  ``confidence > 1`` forces the
        reduced race on every instance; ``confidence <= 0`` forbids it.
    race_width:
        Engines in the low-confidence race (top-N predicted, min 2).
    n_jobs:
        Parallelism of the race paths (``1`` — the default — runs the
        deterministic sequential race; ``-1`` one worker per racer).
        The predicted-engine path always solves serially: the CPU
        saving *is* the point.
    pool:
        A warm :class:`repro.service.EnginePool` handed through to
        :func:`~repro.parallel.portfolio.race_portfolio`, so race
        fallbacks reuse warm workers instead of forking.
    timings:
        A ``TimingLog``-shaped sink; every engine actually run is
        recorded with ``role="auto"`` — the online-learning feed.
    deep:
        Compute the duality-tree-shape features
        (``structural_features(deep=True)``) before predicting; only
        useful under a model fit on deep rows.
    """
    from repro.duality.engine import decide_duality
    from repro.parallel.portfolio import race_portfolio

    resolved = _resolve_model(model)
    g_payload, h_payload = mask_payload(g), mask_payload(h)
    features = structural_features(g_payload, h_payload, deep=deep)
    threshold = DEFAULT_CONFIDENCE if confidence is None else confidence
    race_jobs = None if n_jobs == -1 else n_jobs

    if resolved is None or not resolved.trained:
        warnings.warn(
            "method='auto' has no trained model (cold start): racing the "
            "full portfolio instead; fit one with `repro model fit` and "
            "export it via --model or REPRO_AUTO_MODEL",
            ColdStartWarning,
            stacklevel=2,
        )
        result = race_portfolio(g, h, n_jobs=race_jobs, pool=pool)
        race = result.stats.extra["portfolio"]
        auto = {
            "mode": "cold-start",
            "engine": race["winner"],
            "confidence": None,
            "engines": race["engines"],
            "timings_s": race["timings_s"],
        }
    else:
        ranking = resolved.rank(features)
        top_engine, top_prob = ranking[0]
        if top_prob >= threshold:
            start = time.perf_counter()
            result = decide_duality(g, h, method=top_engine)
            elapsed = time.perf_counter() - start
            auto = {
                "mode": "predicted",
                "engine": top_engine,
                "confidence": round(top_prob, 4),
                "engines": [top_engine],
                "timings_s": {top_engine: round(elapsed, 6)},
            }
        else:
            width = max(2, race_width)
            racers = [engine for engine, _prob in ranking[:width]]
            result = race_portfolio(
                g, h, engines=racers, n_jobs=race_jobs, pool=pool
            )
            race = result.stats.extra["portfolio"]
            auto = {
                "mode": "reduced-race",
                "engine": race["winner"],
                "confidence": round(top_prob, 4),
                "engines": racers,
                "timings_s": race["timings_s"],
            }
    result.stats.extra["auto"] = auto
    if timings is not None:
        _record_auto_timings(timings, auto, features, result)
    return result


def _record_auto_timings(timings, auto: dict, features: dict, result) -> None:
    """One ``role="auto"`` row per engine actually run — the online
    feed back into the training corpus.  Recording failures are
    swallowed: observation must never break a computed verdict."""
    try:
        for engine, elapsed in (auto.get("timings_s") or {}).items():
            if elapsed is None:
                continue  # a terminated race loser: no usable timing
            timings.record(
                engine,
                elapsed,
                features=features,
                dual=result.is_dual,
                role="auto",
                winner=auto.get("engine"),
                mode=auto.get("mode"),
            )
    except Exception:  # noqa: BLE001 - observation must not break solves
        pass
