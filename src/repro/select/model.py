"""Transparent learned models over the timing rows: selector + cost.

Two tiny, dependency-free learners fit from the per-engine timing rows
that :class:`~repro.obs.timings.TimingLog` and the PR-8
:class:`~repro.store.VerdictStore` already accumulate:

* :class:`EngineModel` — a multinomial logistic classifier predicting
  which engine wins an instance from its
  :func:`~repro.obs.timings.structural_features`, with a softmax
  confidence score.  ``method="auto"`` solves directly with the
  prediction when confident and races a reduced top-2 portfolio when
  not (:mod:`repro.select.selector`).
* :class:`CostModel` — a ridge regression on ``log`` elapsed seconds,
  pluggable into the shard planner (``cost_fn=``) to replace the raw
  ``|G^S|·|H_S|`` volume estimate when balancing skewed decomposition
  trees.

Everything is deterministic (zero initialisation, fixed-iteration
full-batch gradient descent, closed-form normal equations) and pure
Python — the feature vectors are a dozen-odd floats, so there is
nothing here numpy would speed up enough to justify the dependency.
Models serialize to a single human-readable JSON artifact
(``format: repro-select-model``) holding the classifier, the optional
cost regressor, and the standardisation statistics; :meth:`EngineModel.save`
/ :meth:`EngineModel.load` round-trip it.

Training data construction: rows recorded for the *same* instance share
identical feature dicts, so rows are grouped by a feature fingerprint;
within a group the winner is the engine with the smallest elapsed time.
Only concrete-engine rows train (``portfolio``/``auto`` facade rows are
aggregates, not engines), and only groups that timed at least two
engines can label a winner — the rest still feed the cost regressor.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from pathlib import Path

#: The flat feature keys :func:`repro.obs.timings.structural_features`
#: emits (base scan + the ``deep=True`` tree-shape probe).  Vectors are
#: tolerant of missing keys — absent features read as 0, so models fit
#: on cheap rows still accept deep rows and vice versa.
BASE_FEATURE_NAMES = (
    "n_vertices",
    "g_edges",
    "h_edges",
    "g_total_size",
    "h_total_size",
    "g_max_edge",
    "h_max_edge",
    "g_min_edge",
    "h_min_edge",
    "g_max_degree",
    "h_max_degree",
    "volume",
)
DEEP_FEATURE_NAMES = (
    "bm_branches",
    "bm_max_child_volume",
    "bm_mean_child_volume",
    "bm_depth_est",
)
FEATURE_NAMES = BASE_FEATURE_NAMES + DEEP_FEATURE_NAMES

#: Derived vector components appended after the per-feature ``log1p``
#: terms: side asymmetry, densities, and threshold-likeness (uniform
#: edge size — the Section 6 tractable class the ``tractable`` engine
#: recognises outright).
DERIVED_NAMES = (
    "edge_ratio",
    "g_density",
    "h_density",
    "g_uniform",
    "h_uniform",
)
VECTOR_NAMES = tuple(f"log1p_{name}" for name in FEATURE_NAMES) + DERIVED_NAMES

#: Facade method names that are not engines — their timing rows are
#: race/selection aggregates and never train a model.
NON_ENGINE_ROWS = ("portfolio", "auto")

FORMAT = "repro-select-model"
FORMAT_VERSION = 1

#: Fewest winner-labelled groups worth fitting a classifier on.
MIN_TRAIN_GROUPS = 4


class ModelDataError(ValueError):
    """The timing rows cannot support a fit (too few labelled groups)."""


def _log1p(value) -> float:
    return math.log1p(max(float(value), 0.0))


def vectorize(features: dict) -> list[float]:
    """One feature dict → the fixed-length model input vector.

    Missing keys read as 0 (a model fit on cheap rows accepts deep rows
    and vice versa); the derived terms are ratios that stay bounded on
    degenerate instances.
    """
    vec = [_log1p(features.get(name, 0)) for name in FEATURE_NAMES]
    g_edges = float(features.get("g_edges", 0))
    h_edges = float(features.get("h_edges", 0))
    n = float(features.get("n_vertices", 0))
    vec.append(math.log((g_edges + 1.0) / (h_edges + 1.0)))
    for side in ("g", "h"):
        edges = float(features.get(f"{side}_edges", 0))
        total = float(features.get(f"{side}_total_size", 0))
        vec.append(total / (edges * n) if edges > 0 and n > 0 else 0.0)
    for side in ("g", "h"):
        lo = features.get(f"{side}_min_edge", 0)
        hi = features.get(f"{side}_max_edge", 0)
        vec.append(1.0 if features.get(f"{side}_edges", 0) and lo == hi else 0.0)
    return vec


def extract_features(row: dict) -> dict:
    """The known feature keys of one timing row (rows carry features
    flattened into the line, per the ``TimingLog`` schema)."""
    return {name: row[name] for name in FEATURE_NAMES if name in row}


def feature_fingerprint(features: dict) -> str:
    """A stable per-instance key: rows recorded for the same instance
    carry identical feature dicts, so this groups them."""
    base = {name: features[name] for name in BASE_FEATURE_NAMES if name in features}
    return json.dumps(base, sort_keys=True, separators=(",", ":"))


@dataclass
class TrainingGroup:
    """All timings of one instance: its features and the best elapsed
    seconds seen per concrete engine."""

    features: dict
    timings: dict[str, float] = field(default_factory=dict)

    @property
    def winner(self) -> str:
        """Fastest engine; ties break by name for determinism."""
        return min(self.timings, key=lambda e: (self.timings[e], e))


def training_groups(rows) -> list[TrainingGroup]:
    """Group timing rows by instance fingerprint, keeping per-engine
    minima.  Rows without features, without a positive elapsed time, or
    for a non-engine facade method are skipped."""
    groups: dict[str, TrainingGroup] = {}
    for row in rows:
        engine = row.get("engine")
        elapsed = row.get("elapsed_s")
        if not isinstance(engine, str) or engine in NON_ENGINE_ROWS:
            continue
        if not isinstance(elapsed, (int, float)) or elapsed < 0:
            continue
        features = extract_features(row)
        if not features:
            continue
        key = feature_fingerprint(features)
        group = groups.get(key)
        if group is None:
            group = groups[key] = TrainingGroup(features=features)
        previous = group.timings.get(engine)
        if previous is None or elapsed < previous:
            group.timings[engine] = float(elapsed)
        # Deep rows enrich a group first seen through cheap rows.
        for name, value in features.items():
            group.features.setdefault(name, value)
    return list(groups.values())


# ---------------------------------------------------------------------------
# Shared linear plumbing: standardisation, softmax, ridge solve
# ---------------------------------------------------------------------------

def _standardize_fit(rows: list[list[float]]) -> tuple[list[float], list[float]]:
    dim = len(rows[0])
    count = len(rows)
    means = [sum(row[j] for row in rows) / count for j in range(dim)]
    scales = []
    for j in range(dim):
        var = sum((row[j] - means[j]) ** 2 for row in rows) / count
        std = math.sqrt(var)
        scales.append(std if std > 1e-12 else 1.0)
    return means, scales


def _standardize_apply(
    vec: list[float], means: list[float], scales: list[float]
) -> list[float]:
    return [(v - m) / s for v, m, s in zip(vec, means, scales)]


def _softmax(scores: list[float]) -> list[float]:
    peak = max(scores)
    exps = [math.exp(s - peak) for s in scores]
    total = sum(exps)
    return [e / total for e in exps]


def _solve_linear(matrix: list[list[float]], rhs: list[float]) -> list[float]:
    """Gaussian elimination with partial pivoting — the ridge term keeps
    the system well-conditioned at these dimensions (~20)."""
    n = len(rhs)
    aug = [list(matrix[i]) + [rhs[i]] for i in range(n)]
    for col in range(n):
        pivot = max(range(col, n), key=lambda r: abs(aug[r][col]))
        if abs(aug[pivot][col]) < 1e-12:
            continue
        aug[col], aug[pivot] = aug[pivot], aug[col]
        inv = 1.0 / aug[col][col]
        for row in range(n):
            if row == col:
                continue
            factor = aug[row][col] * inv
            if factor == 0.0:
                continue
            for k in range(col, n + 1):
                aug[row][k] -= factor * aug[col][k]
    out = []
    for i in range(n):
        out.append(aug[i][n] / aug[i][i] if abs(aug[i][i]) > 1e-12 else 0.0)
    return out


# ---------------------------------------------------------------------------
# The cost regressor
# ---------------------------------------------------------------------------

_COST_EPS = 1e-6


@dataclass
class CostModel:
    """Ridge regression on ``log(elapsed + eps)`` over the feature vector.

    ``predict_seconds`` is the planner-facing surface: a per-shard cost
    estimate in seconds, monotone in the learned drivers of work rather
    than in raw ``|G^S|·|H_S|``.
    """

    means: list[float]
    scales: list[float]
    weights: list[float]  # len == dim + 1, bias last
    meta: dict = field(default_factory=dict)

    def predict_seconds(self, features: dict) -> float:
        x = _standardize_apply(vectorize(features), self.means, self.scales)
        score = sum(w * v for w, v in zip(self.weights, x)) + self.weights[-1]
        return max(math.exp(score) - _COST_EPS, 0.0)

    def to_json(self) -> dict:
        return {
            "means": self.means,
            "scales": self.scales,
            "weights": self.weights,
            "meta": self.meta,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "CostModel":
        return cls(
            means=[float(v) for v in payload["means"]],
            scales=[float(v) for v in payload["scales"]],
            weights=[float(v) for v in payload["weights"]],
            meta=dict(payload.get("meta") or {}),
        )


def fit_cost_model(rows, engine: str | None = None, l2: float = 1e-2) -> CostModel:
    """Fit the per-instance cost regressor from timing rows.

    ``engine`` restricts the fit to one engine's rows (the planner's
    shard cost is engine-specific in principle); ``None`` pools every
    concrete engine — coarser but available from far fewer rows.
    """
    samples: list[tuple[list[float], float]] = []
    for row in rows:
        name = row.get("engine")
        elapsed = row.get("elapsed_s")
        if not isinstance(name, str) or name in NON_ENGINE_ROWS:
            continue
        if engine is not None and name != engine:
            continue
        if not isinstance(elapsed, (int, float)) or elapsed < 0:
            continue
        features = extract_features(row)
        if not features:
            continue
        samples.append((vectorize(features), math.log(elapsed + _COST_EPS)))
    if len(samples) < 2:
        raise ModelDataError(
            f"cost model needs at least 2 featured timing rows, "
            f"got {len(samples)}"
        )
    vectors = [vec for vec, _y in samples]
    means, scales = _standardize_fit(vectors)
    xs = [_standardize_apply(vec, means, scales) + [1.0] for vec in vectors]
    ys = [y for _vec, y in samples]
    dim = len(xs[0])
    normal = [[0.0] * dim for _ in range(dim)]
    rhs = [0.0] * dim
    for x, y in zip(xs, ys):
        for i in range(dim):
            xi = x[i]
            rhs[i] += xi * y
            row_i = normal[i]
            for j in range(dim):
                row_i[j] += xi * x[j]
    for i in range(dim - 1):  # leave the bias unregularised
        normal[i][i] += l2
    weights = _solve_linear(normal, rhs)
    return CostModel(
        means=means,
        scales=scales,
        weights=weights,
        meta={"rows": len(samples), "engine": engine, "l2": l2},
    )


def shard_cost_fn(cost_model: CostModel, min_cost: float = 0.0):
    """Wrap a :class:`CostModel` as a planner ``cost_fn``.

    The returned callable has the planner's cost signature —
    ``cost_fn(attrs, g, h) -> float`` — and estimates each frontier
    node's restricted sub-instance in seconds.  ``min_cost`` becomes the
    re-shard gate (the learned analogue of
    :data:`~repro.parallel.planner.RESHARD_MIN_VOLUME`): frontier nodes
    predicted cheaper are never split further.

    Any cost function only changes how the planner *balances* shards;
    the executor's merges reconstruct the serial result from every
    partition, so verdicts, certificates, and stats stay bit-for-bit.
    """
    from repro.hypergraph import mask_payload
    from repro.obs.timings import structural_features

    def cost_fn(attrs, g, h) -> float:
        g_s, h_s = attrs.instance(g, h)
        features = structural_features(mask_payload(g_s), mask_payload(h_s))
        return cost_model.predict_seconds(features)

    cost_fn.min_cost = min_cost
    return cost_fn


# ---------------------------------------------------------------------------
# The engine classifier
# ---------------------------------------------------------------------------

@dataclass
class EngineModel:
    """The learned selector: softmax over engines from one feature dict.

    ``weights[k]`` is engine ``engines[k]``'s row (dim + 1 floats, bias
    last) over the standardised vector; ``rank`` orders engines by
    probability and ``predict`` returns the top engine with its softmax
    probability — the confidence the selector thresholds on.  ``cost``
    optionally carries a :class:`CostModel` fit from the same rows, so
    one JSON artifact serves both the selector and the shard planner.
    """

    engines: tuple[str, ...]
    means: list[float]
    scales: list[float]
    weights: list[list[float]]
    meta: dict = field(default_factory=dict)
    cost: CostModel | None = None

    @property
    def trained(self) -> bool:
        return len(self.engines) >= 2 and bool(self.weights)

    def _probabilities(self, features: dict) -> list[float]:
        x = _standardize_apply(vectorize(features), self.means, self.scales)
        scores = [
            sum(w * v for w, v in zip(row, x)) + row[-1] for row in self.weights
        ]
        return _softmax(scores)

    def rank(self, features: dict) -> list[tuple[str, float]]:
        """Engines by descending predicted win probability (name-order
        tiebreak, so the ranking is deterministic)."""
        probs = self._probabilities(features)
        order = sorted(
            zip(self.engines, probs), key=lambda item: (-item[1], item[0])
        )
        return [(engine, prob) for engine, prob in order]

    def predict(self, features: dict) -> tuple[str, float]:
        """The top engine and its confidence (top softmax probability)."""
        engine, prob = self.rank(features)[0]
        return engine, prob

    # -- serialization ---------------------------------------------------

    def to_json(self) -> dict:
        return {
            "format": FORMAT,
            "version": FORMAT_VERSION,
            "engines": list(self.engines),
            "vector_names": list(VECTOR_NAMES),
            "means": self.means,
            "scales": self.scales,
            "weights": self.weights,
            "meta": self.meta,
            "cost": self.cost.to_json() if self.cost is not None else None,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "EngineModel":
        if payload.get("format") != FORMAT:
            raise ValueError(
                f"not a {FORMAT} artifact (format={payload.get('format')!r})"
            )
        if payload.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported {FORMAT} version {payload.get('version')!r}; "
                f"this build reads version {FORMAT_VERSION}"
            )
        names = payload.get("vector_names")
        if names is not None and list(names) != list(VECTOR_NAMES):
            raise ValueError(
                "model artifact was fit on a different feature vector; "
                "refit with `repro model fit`"
            )
        cost_payload = payload.get("cost")
        return cls(
            engines=tuple(payload["engines"]),
            means=[float(v) for v in payload["means"]],
            scales=[float(v) for v in payload["scales"]],
            weights=[[float(v) for v in row] for row in payload["weights"]],
            meta=dict(payload.get("meta") or {}),
            cost=CostModel.from_json(cost_payload) if cost_payload else None,
        )

    def save(self, path: str | os.PathLike) -> None:
        Path(path).write_text(
            json.dumps(self.to_json(), indent=1) + "\n", encoding="utf-8"
        )

    @classmethod
    def load(cls, path: str | os.PathLike) -> "EngineModel":
        return cls.from_json(
            json.loads(Path(path).read_text(encoding="utf-8"))
        )


def _fit_softmax(
    xs: list[list[float]],
    labels: list[int],
    n_classes: int,
    iterations: int,
    lr: float,
    l2: float,
) -> list[list[float]]:
    """Full-batch gradient descent on the multinomial cross-entropy.

    Zero initialisation and a fixed iteration count keep the fit
    deterministic; at these sizes (tens-to-thousands of rows, ~20
    dims, a handful of classes) each pass is microseconds.
    """
    dim = len(xs[0])
    weights = [[0.0] * dim for _ in range(n_classes)]
    count = len(xs)
    for _ in range(iterations):
        grads = [[0.0] * dim for _ in range(n_classes)]
        for x, label in zip(xs, labels):
            scores = [
                sum(w * v for w, v in zip(row, x)) for row in weights
            ]
            probs = _softmax(scores)
            for k in range(n_classes):
                delta = probs[k] - (1.0 if k == label else 0.0)
                if delta == 0.0:
                    continue
                grad_k = grads[k]
                for j in range(dim):
                    grad_k[j] += delta * x[j]
        for k in range(n_classes):
            row = weights[k]
            grad_k = grads[k]
            for j in range(dim):
                reg = l2 * row[j] if j < dim - 1 else 0.0  # bias free
                row[j] -= lr * (grad_k[j] / count + reg)
    return weights


def fit_engine_model(
    rows,
    engines: tuple[str, ...] | list[str] | None = None,
    iterations: int = 300,
    lr: float = 0.5,
    l2: float = 1e-3,
    with_cost: bool = True,
) -> EngineModel:
    """Fit the selector (and, by default, the cost regressor) from rows.

    ``rows`` is any iterable of ``TimingLog``-shaped dicts —
    :func:`repro.obs.timings.load_timings` output or
    :meth:`repro.store.VerdictStore.load_timings`.  Only groups that
    timed ≥ 2 engines label a winner; raises :class:`ModelDataError`
    when fewer than :data:`MIN_TRAIN_GROUPS` exist (run some sequential
    portfolio sweeps first — each races every engine and records all of
    their timings).
    """
    rows = list(rows)
    groups = [g for g in training_groups(rows) if len(g.timings) >= 2]
    if engines is None:
        engines = sorted({e for g in groups for e in g.timings})
    else:
        engines = sorted(engines)
        groups = [
            g
            for g in groups
            if len([e for e in g.timings if e in engines]) >= 2
        ]
    if len(groups) < MIN_TRAIN_GROUPS or len(engines) < 2:
        raise ModelDataError(
            f"not enough training data: {len(groups)} winner-labelled "
            f"instance groups over {len(engines)} engines (need >= "
            f"{MIN_TRAIN_GROUPS} groups and >= 2 engines; sequential "
            f"portfolio runs record every racer's timing)"
        )
    index = {engine: k for k, engine in enumerate(engines)}
    labels = [
        index[
            min(
                (e for e in g.timings if e in index),
                key=lambda e: (g.timings[e], e),
            )
        ]
        for g in groups
    ]
    vectors = [vectorize(g.features) for g in groups]
    means, scales = _standardize_fit(vectors)
    xs = [_standardize_apply(vec, means, scales) + [1.0] for vec in vectors]
    weights = _fit_softmax(xs, labels, len(engines), iterations, lr, l2)

    correct = 0
    for x, label in zip(xs, labels):
        scores = [sum(w * v for w, v in zip(row, x)) for row in weights]
        if max(range(len(scores)), key=lambda k: (scores[k], -k)) == label:
            correct += 1
    majority = max(labels.count(k) for k in range(len(engines)))
    model = EngineModel(
        engines=tuple(engines),
        means=means,
        scales=scales,
        weights=weights,
        meta={
            "groups": len(groups),
            "rows": len(rows),
            "train_accuracy": round(correct / len(groups), 4),
            "majority_accuracy": round(majority / len(groups), 4),
            "iterations": iterations,
            "lr": lr,
            "l2": l2,
            "wins": {
                engine: labels.count(index[engine]) for engine in engines
            },
        },
    )
    if with_cost:
        try:
            model.cost = fit_cost_model(rows)
        except ModelDataError:
            model.cost = None
    return model


def cross_validate(
    rows,
    folds: int = 3,
    engines: tuple[str, ...] | list[str] | None = None,
    iterations: int = 300,
    lr: float = 0.5,
    l2: float = 1e-3,
) -> dict:
    """Deterministic k-fold evaluation of the selector on timing rows.

    Groups are assigned to folds round-robin in fingerprint order.
    Reports held-out accuracy, the majority-class baseline, and the
    *regret* — how much slower the predicted engine is than the true
    winner, in seconds per instance (the number that actually matters:
    a wrong pick between two near-tied engines costs nothing).
    """
    groups = [g for g in training_groups(rows) if len(g.timings) >= 2]
    groups.sort(key=lambda g: feature_fingerprint(g.features))
    folds = max(2, min(folds, len(groups)))
    if len(groups) < MIN_TRAIN_GROUPS + 1:
        raise ModelDataError(
            f"cross-validation needs more data: {len(groups)} "
            f"winner-labelled groups"
        )
    correct = evaluated = 0
    regret_total = 0.0
    for fold in range(folds):
        train_rows: list[dict] = []
        held: list[TrainingGroup] = []
        for pos, group in enumerate(groups):
            if pos % folds == fold:
                held.append(group)
            else:
                for engine, elapsed in group.timings.items():
                    train_rows.append(
                        {"engine": engine, "elapsed_s": elapsed, **group.features}
                    )
        try:
            model = fit_engine_model(
                train_rows,
                engines=engines,
                iterations=iterations,
                lr=lr,
                l2=l2,
                with_cost=False,
            )
        except ModelDataError:
            continue
        for group in held:
            candidates = {
                e: t for e, t in group.timings.items() if e in model.engines
            }
            if len(candidates) < 2:
                continue
            predicted, _conf = model.predict(group.features)
            best = min(candidates.values())
            chosen = candidates.get(predicted)
            if chosen is None:
                # Predicted engine untimed on this instance: charge the
                # worst observed time — pessimistic, never flattering.
                chosen = max(candidates.values())
            evaluated += 1
            regret_total += chosen - best
            if group.timings.get(predicted) == best:
                correct += 1
    if evaluated == 0:
        raise ModelDataError("no fold produced a fittable train split")
    winners = [g.winner for g in groups]
    majority = max(winners.count(w) for w in set(winners))
    return {
        "groups": len(groups),
        "folds": folds,
        "evaluated": evaluated,
        "accuracy": round(correct / evaluated, 4),
        "majority_accuracy": round(majority / len(groups), 4),
        "mean_regret_s": round(regret_total / evaluated, 6),
    }
