"""Learned engine selection and shard cost modelling.

The portfolio racer wins by brute force — ``n_jobs`` workers racing
engines whose winner is usually predictable from cheap structural
features.  This package replaces the brute force with a transparent,
dependency-free learned loop over the timing rows the observability
and store layers already accumulate:

* :mod:`repro.select.model` — feature vectorization, a deterministic
  multinomial-logistic :class:`EngineModel` (train / predict /
  confidence / JSON serialize), and a ridge :class:`CostModel` whose
  :func:`shard_cost_fn` plugs into the shard planner's ``cost_fn=``.
* :mod:`repro.select.selector` — ``decide_duality(method="auto")``:
  solve with the predicted engine on high confidence, race the top-2
  prediction on low confidence, degrade to the full portfolio (with a
  :class:`ColdStartWarning`) when no model exists, and record every
  engine run back into the timing corpus for online improvement.

Train, inspect, and cross-validate from the CLI: ``repro model
fit|show|eval``; serve with ``repro serve --auto --model PATH``.
"""

from repro.select.model import (
    BASE_FEATURE_NAMES,
    DEEP_FEATURE_NAMES,
    FEATURE_NAMES,
    VECTOR_NAMES,
    CostModel,
    EngineModel,
    ModelDataError,
    TrainingGroup,
    cross_validate,
    extract_features,
    feature_fingerprint,
    fit_cost_model,
    fit_engine_model,
    shard_cost_fn,
    training_groups,
    vectorize,
)
from repro.select.selector import (
    DEFAULT_CONFIDENCE,
    DEFAULT_RACE_WIDTH,
    MODEL_ENV,
    ColdStartWarning,
    decide_auto,
    default_model,
    reset_default_model,
    set_default_model,
)

__all__ = [
    "BASE_FEATURE_NAMES",
    "ColdStartWarning",
    "CostModel",
    "DEEP_FEATURE_NAMES",
    "DEFAULT_CONFIDENCE",
    "DEFAULT_RACE_WIDTH",
    "EngineModel",
    "FEATURE_NAMES",
    "MODEL_ENV",
    "ModelDataError",
    "TrainingGroup",
    "VECTOR_NAMES",
    "cross_validate",
    "decide_auto",
    "default_model",
    "extract_features",
    "feature_fingerprint",
    "fit_cost_model",
    "fit_engine_model",
    "reset_default_model",
    "set_default_model",
    "shard_cost_fn",
    "training_groups",
    "vectorize",
]
