"""Result objects shared by all duality deciders.

Every decider in :mod:`repro.duality` answers the same question — given
simple hypergraphs ``G`` and ``H`` over a shared universe, is
``H = tr(G)``? — and reports its answer as a :class:`DualityResult`, so
engines are interchangeable and cross-checkable.

A *negative* answer always carries a **witness**: a new transversal of
``G`` w.r.t. ``H`` (a transversal of ``G`` containing no edge of ``H``),
or a more primitive violation (an edge of ``H`` that is not a minimal
transversal of ``G``, reported through the certificate).  Witnesses are
validated by :func:`repro.duality.witness.check_witness`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class Verdict(Enum):
    """The decision outcome of a duality check."""

    DUAL = "dual"
    NOT_DUAL = "not-dual"

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self is Verdict.DUAL


class FailureKind(Enum):
    """Why an instance is not dual (which entry condition or leaf failed)."""

    NOT_SIMPLE = "a hypergraph is not simple"
    EXTRA_EDGE = "an edge of H is not a minimal transversal of G"
    MISSING_TRANSVERSAL = "a new transversal of G w.r.t. H exists"
    CONSTANT_MISMATCH = "degenerate/constant hypergraphs do not match"


@dataclass(frozen=True)
class Certificate:
    """Machine-checkable evidence attached to a verdict.

    Attributes
    ----------
    kind:
        The failure class (``None`` for DUAL verdicts).
    witness:
        For :attr:`FailureKind.MISSING_TRANSVERSAL`: a new transversal of
        ``G`` w.r.t. ``H``.  For :attr:`FailureKind.EXTRA_EDGE`: the
        offending edge of ``H``.
    detail:
        Free-text explanation for humans.
    path:
        For deciders based on the decomposition tree: the label (path
        descriptor) of the ``fail`` leaf that produced the witness.
    """

    kind: FailureKind | None = None
    witness: frozenset | None = None
    detail: str = ""
    path: tuple[int, ...] | None = None


@dataclass
class DecisionStats:
    """Work counters a decider may fill in (all optional).

    These are the quantities the paper's statements bound, so the
    experiment harness reads them directly:

    * ``nodes`` — decomposition-tree nodes visited / subproblems solved.
    * ``max_depth`` — deepest recursion / tree level reached.
    * ``max_children`` — largest branching factor ``κ(α)`` encountered.
    * ``guessed_bits`` — nondeterministic bits consumed (guess-and-check).
    * ``peak_space_bits`` — peak metered workspace (space-bounded engines).
    * ``base_cases`` — leaves handled by ``marksmall`` / FK base cases.
    """

    nodes: int = 0
    max_depth: int = 0
    max_children: int = 0
    guessed_bits: int = 0
    peak_space_bits: int = 0
    base_cases: int = 0
    extra: dict = field(default_factory=dict)


@dataclass(frozen=True)
class DualityResult:
    """The complete answer of a duality decider."""

    verdict: Verdict
    certificate: Certificate
    stats: DecisionStats
    method: str

    @property
    def is_dual(self) -> bool:
        """True iff the instance was found dual."""
        return self.verdict is Verdict.DUAL

    @property
    def witness(self) -> frozenset | None:
        """The new transversal (or offending edge) for NOT_DUAL verdicts."""
        return self.certificate.witness

    def __bool__(self) -> bool:
        return self.is_dual


def dual_result(method: str, stats: DecisionStats | None = None) -> DualityResult:
    """Convenience constructor for a positive verdict."""
    return DualityResult(
        verdict=Verdict.DUAL,
        certificate=Certificate(),
        stats=stats or DecisionStats(),
        method=method,
    )


def not_dual_result(
    method: str,
    kind: FailureKind,
    witness: frozenset | None = None,
    detail: str = "",
    path: tuple[int, ...] | None = None,
    stats: DecisionStats | None = None,
) -> DualityResult:
    """Convenience constructor for a negative verdict with certificate."""
    return DualityResult(
        verdict=Verdict.NOT_DUAL,
        certificate=Certificate(kind=kind, witness=witness, detail=detail, path=path),
        stats=stats or DecisionStats(),
        method=method,
    )
