"""Section 4: duality in quadratic logspace.

This module implements the paper's main construction:

* :func:`next_attrs` — Lemma 4.1's logspace procedure
  ``next(V, attr(α), i)``: from a node's attributes, compute the
  attributes of its ``i``-th child or report ``impossible``;
* path descriptors — sequences of ≤ ``⌊log₂|H|⌋`` integers bounded by
  ``|V|·|G|`` (the set ``PD(I)``);
* :func:`pathnode` — Lemma 4.2: resolve a path descriptor to the node's
  attributes (or ``wrongpath``) by iterated self-composition of ``next``;
* :func:`pathnode_metered` — the same computation with the Lemma 3.1
  register discipline metered (descriptor digits + one live register
  file per composition stage), so experiments can verify the
  ``O(log² n)`` peak;
* :func:`pathnode_pipeline` — the same computation literally routed
  through :class:`repro.machine.pipeline.Pipeline`, i.e. the Lemma 4.2
  function ``F`` run as a ``[[FDSPACE[log n]_pol]]^log`` composition;
* :func:`decompose` — Theorem 4.1's algorithm: list the vertices and
  edges of ``T(G, H)`` using ``pathnode`` only;
* :func:`decide_logspace` / :func:`find_new_transversal_logspace` —
  Corollary 4.1(1) and (2).

A note on node finalisation.  The paper's ``process`` can mark a node
``fail`` *at its own expansion* (step 2), while ``next`` produces child
attributes.  For ``pathnode``'s output to carry final markings, ``next``
finalises every child it emits: it applies ``marksmall`` when
``|H_{S_child}| ≤ 1`` and the step-2 new-transversal check when
``|H_{S_child}| ≥ 2`` (both logspace).  The root is finalised the same
way.  This matches the tree builder exactly — the test suite checks
``pathnode(I, label(α)) = attr(α)`` for every node α of the built tree.
"""

from __future__ import annotations

import math
from collections.abc import Iterator
from functools import lru_cache

from repro._util import bits_needed, vertex_key
from repro.hypergraph import Hypergraph
from repro.hypergraph.transversal import is_new_transversal
from repro.machine.meter import RegisterFile, SpaceMeter
from repro.machine.pipeline import self_composition
from repro.machine.transducer import FunctionTransducer
from repro.duality.boros_makino import (
    majority_vertices,
    marksmall,
    process_children,
)
from repro.duality.conditions import prepare_instance
from repro.duality.result import (
    DecisionStats,
    DualityResult,
    FailureKind,
    dual_result,
    not_dual_result,
)
from repro.duality.tree import Mark, NodeAttributes

#: Sentinel for Lemma 4.1's "impossible" / Lemma 4.2's "wrongpath".
IMPOSSIBLE = None

PathDescriptor = tuple[int, ...]


# ---------------------------------------------------------------------------
# Instance geometry: the PD(I) parameters
# ---------------------------------------------------------------------------

def max_depth_bound(h: Hypergraph) -> int:
    """``⌊log₂ |H|⌋`` — the maximal path-descriptor length (Prop. 2.1(2))."""
    if len(h) <= 1:
        return 0
    return int(math.floor(math.log2(len(h))))


def max_child_index(g: Hypergraph) -> int:
    """``|V|·|G|`` — the bound on each descriptor entry (Prop. 2.1(3))."""
    return max(1, len(g.vertices) * len(g))


def instance_size(g: Hypergraph, h: Hypergraph) -> int:
    """The input size ``n = |I|`` used for register bounds (encoding length)."""
    per_edge = lambda hg: sum(len(e) + 1 for e in hg.edges) + 1  # noqa: E731
    return len(g.vertices) + per_edge(g) + per_edge(h) + 2


def is_valid_descriptor(g: Hypergraph, h: Hypergraph, pi: PathDescriptor) -> bool:
    """Membership in ``PD(I)``: length and per-entry bounds."""
    if len(pi) > max_depth_bound(h):
        return False
    bound = max_child_index(g)
    return all(1 <= entry <= bound for entry in pi)


def descriptor_bits(g: Hypergraph, h: Hypergraph) -> int:
    """Bits to store one path descriptor — the ``O(log² n)`` object."""
    return max_depth_bound(h) * bits_needed(max_child_index(g))


# ---------------------------------------------------------------------------
# Node finalisation and the next step (Lemma 4.1)
# ---------------------------------------------------------------------------

@lru_cache(maxsize=65536)
def _finalize_scope(
    g: Hypergraph, h: Hypergraph, scope: frozenset
) -> tuple[Mark, frozenset]:
    """Scope-level finalisation: the ``(mark, t)`` a node at ``scope`` gets.

    Everything ``marksmall`` and the step-2 check compute depends only
    on the scope (the instance is derived from it), so results are
    cached per scope.  The cache is a host-side *time* optimisation; the
    model-space accounting (``pathnode_metered``) is unaffected — a
    Turing machine recomputes, we memoise.
    """
    probe = NodeAttributes((), scope, Mark.NIL, frozenset())
    g_s, h_s = probe.instance(g, h)
    if len(h_s) <= 1:
        marked = marksmall(probe, g, h)
        return marked.mark, marked.witness
    i_alpha = majority_vertices(h_s)
    if is_new_transversal(i_alpha, g_s, h_s):
        return Mark.FAIL, i_alpha
    return Mark.NIL, frozenset()


@lru_cache(maxsize=65536)
def _children_scopes(
    g: Hypergraph, h: Hypergraph, scope: frozenset
) -> tuple[frozenset, ...]:
    """The ordered child scopes of an *interior* node at ``scope``.

    ``process`` steps 3–5 depend only on the scope; cached so that
    enumerating children one index at a time (the ``next`` protocol)
    costs one expansion per node instead of one per child.
    """
    probe = NodeAttributes((), scope, Mark.NIL, frozenset())
    outcome = process_children(probe, g, h)
    if isinstance(outcome, NodeAttributes):
        # Step-2 fail: such a node is a leaf (callers check finalisation
        # first, so this only guards misuse).
        return ()
    return tuple(outcome)


def finalize(attrs: NodeAttributes, g: Hypergraph, h: Hypergraph) -> NodeAttributes:
    """Apply the marking rules that fire at a node's own expansion.

    ``marksmall`` for ``|H_S| ≤ 1``; the ``process`` step-2
    new-transversal check for ``|H_S| ≥ 2``; otherwise the node is
    interior and keeps ``nil``.
    """
    if attrs.mark is not Mark.NIL:
        return attrs
    mark, witness = _finalize_scope(g, h, attrs.scope)
    if mark is Mark.NIL:
        return attrs
    return NodeAttributes(attrs.label, attrs.scope, mark, witness)


def initial_attrs(g: Hypergraph, h: Hypergraph) -> NodeAttributes:
    """The finalised root attributes ``attr(α₀)`` (logspace-computable)."""
    universe = frozenset(g.vertices | h.vertices)
    return finalize(NodeAttributes((), universe, Mark.NIL, frozenset()), g, h)


def next_attrs(
    g: Hypergraph, h: Hypergraph, attrs: NodeAttributes, index: int
) -> NodeAttributes | None:
    """Lemma 4.1's ``next(V, attr(α), i)``.

    Returns the finalised attributes of the ``i``-th child of ``α``, or
    :data:`IMPOSSIBLE` (``None``) when ``α`` is a leaf or has fewer than
    ``i`` children.  Everything here is counting, set intersection and
    comparison over the read-only input — the operations Lemma 4.1
    observes to be logspace.
    """
    if index < 1:
        raise ValueError("child indices start at 1")
    if attrs.mark is not Mark.NIL:
        return IMPOSSIBLE
    scopes = _children_scopes(g, h, attrs.scope)
    if index > len(scopes):
        return IMPOSSIBLE
    raw = NodeAttributes(
        attrs.child_label(index), scopes[index - 1], Mark.NIL, frozenset()
    )
    return finalize(raw, g, h)


# ---------------------------------------------------------------------------
# pathnode (Lemma 4.2)
# ---------------------------------------------------------------------------

def pathnode(
    g: Hypergraph, h: Hypergraph, pi: PathDescriptor
) -> NodeAttributes | None:
    """Lemma 4.2's ``pathnode(I, π)``: attributes of the node at ``π``.

    Returns ``wrongpath`` (``None``) when ``π`` does not correspond to a
    node of ``T(G, H)`` — including descriptors outside ``PD(I)``.
    """
    if not is_valid_descriptor(g, h, tuple(pi)):
        return IMPOSSIBLE
    attrs = initial_attrs(g, h)
    for entry in pi:
        attrs = next_attrs(g, h, attrs, entry)
        if attrs is IMPOSSIBLE:
            return IMPOSSIBLE
    return attrs


def pathnode_metered(
    g: Hypergraph,
    h: Hypergraph,
    pi: PathDescriptor,
    meter: SpaceMeter | None = None,
) -> tuple[NodeAttributes | None, SpaceMeter]:
    """``pathnode`` under the Lemma 3.1 register discipline, metered.

    Allocates exactly the model-relevant state of the ``T*`` machine:

    * one register per descriptor digit (width ``⌈log(|V||G|+1)⌉``), and
    * one register file per composition stage — the stage's index
      register ``d_i``, output register ``o_i``, and a constant number
      of ``O(log n)`` scratch counters — kept **live across stages**, as
      in the paper's construction.

    The attribute values themselves flow through Python (they are the
    intermediate outputs Lemma 3.1 proves never need storing; the
    genuine bit-recomputation mechanism is exercised separately by
    :func:`pathnode_pipeline` and experiment E5).  The returned meter's
    ``peak_bits`` is the quantity Theorem 4.1 bounds by ``O(log² n)``.
    """
    meter = meter if meter is not None else SpaceMeter()
    pi = tuple(pi)
    n = instance_size(g, h)
    digit_bound = max_child_index(g)

    digit_registers = []
    stage_files: list[RegisterFile] = []
    try:
        for position, entry in enumerate(pi):
            reg = meter.register(f"pi[{position}]", digit_bound)
            if 1 <= entry <= digit_bound:
                reg.value = entry
            digit_registers.append(reg)

        if not is_valid_descriptor(g, h, pi):
            return IMPOSSIBLE, meter

        attrs = initial_attrs(g, h)
        for position, entry in enumerate(pi):
            stage = RegisterFile(meter, f"P{position}")
            stage.register("d", n ** 3)
            stage.register("o", 255)
            stage.register("head", n)
            stage.register("scan", n)
            stage.register("count", n)
            stage.register("aux", n)
            stage_files.append(stage)
            attrs = next_attrs(g, h, attrs, entry)
            if attrs is IMPOSSIBLE:
                return IMPOSSIBLE, meter
        return attrs, meter
    finally:
        for stage in stage_files:
            stage.free()
        for reg in digit_registers:
            reg.free()


# ---------------------------------------------------------------------------
# pathnode through the machine substrate (Lemma 4.2 ∘ Lemma 3.1, literally)
# ---------------------------------------------------------------------------

def encode_state(attrs: NodeAttributes | None, remaining: PathDescriptor) -> str:
    """Serialise the Lemma 4.2 state ``(attr, γ)`` (or ``wrongpath``)."""
    if attrs is IMPOSSIBLE:
        return "wrongpath"
    label = ",".join(str(i) for i in attrs.label)
    scope = ",".join(str(v) for v in sorted(attrs.scope, key=vertex_key))
    witness = ",".join(str(v) for v in sorted(attrs.witness, key=vertex_key))
    gamma = ",".join(str(i) for i in remaining)
    return f"{label}|{scope}|{attrs.mark.value}|{witness}#{gamma}"


def decode_state(
    text: str, g: Hypergraph, h: Hypergraph
) -> tuple[NodeAttributes | None, PathDescriptor]:
    """Inverse of :func:`encode_state` (vertex names resolved via the universe)."""
    if text == "wrongpath":
        return IMPOSSIBLE, ()
    head, _, gamma_text = text.rpartition("#")
    label_text, scope_text, mark_text, witness_text = head.split("|")
    by_name = {str(v): v for v in g.vertices | h.vertices}

    def parse_set(chunk: str) -> frozenset:
        if not chunk:
            return frozenset()
        return frozenset(by_name[token] for token in chunk.split(","))

    label = tuple(int(t) for t in label_text.split(",")) if label_text else ()
    gamma = tuple(int(t) for t in gamma_text.split(",")) if gamma_text else ()
    attrs = NodeAttributes(
        label, parse_set(scope_text), Mark(mark_text), parse_set(witness_text)
    )
    return attrs, gamma


def lemma42_step(g: Hypergraph, h: Hypergraph):
    """The Lemma 4.2 stage function ``F`` as a ``str → str`` map.

    On ``wrongpath`` or an exhausted descriptor the input passes through
    unchanged (so ``F`` is safely self-composable ``ρ`` times); otherwise
    one ``next`` step is consumed from the descriptor head.
    """

    def step(text: str) -> str:
        if text == "wrongpath":
            return "wrongpath"
        attrs, gamma = decode_state(text, g, h)
        if not gamma:
            return text
        child = next_attrs(g, h, attrs, gamma[0])
        if child is IMPOSSIBLE:
            return "wrongpath"
        return encode_state(child, gamma[1:])

    return step


def pathnode_pipeline(
    g: Hypergraph,
    h: Hypergraph,
    pi: PathDescriptor,
    meter: SpaceMeter | None = None,
):
    """``pathnode`` executed through :class:`repro.machine.pipeline.Pipeline`.

    Builds the self-composition ``F^{ℓ(π)}`` with the ``T*`` discipline —
    intermediate states are recomputed char-by-char, never stored — and
    decodes the final state.  Exponentially slower than :func:`pathnode`
    (that is the point); returns ``(attrs_or_None, pipeline)`` so callers
    can read the space/time report.
    """
    pi = tuple(pi)
    if not is_valid_descriptor(g, h, pi):
        raise ValueError("descriptor outside PD(I)")
    stage = FunctionTransducer(lemma42_step(g, h), name="F", charged_registers=6)
    pipeline = self_composition(stage, max(1, len(pi)), meter=meter)
    final_text = pipeline.compute_recomputed(encode_state(initial_attrs(g, h), pi))
    attrs, remaining = decode_state(final_text, g, h)
    if attrs is IMPOSSIBLE or remaining:
        return IMPOSSIBLE, pipeline
    return attrs, pipeline


# ---------------------------------------------------------------------------
# Tree enumeration via pathnode / next only
# ---------------------------------------------------------------------------

def iter_tree_nodes(
    g: Hypergraph, h: Hypergraph
) -> Iterator[NodeAttributes]:
    """All nodes of ``T(G, H)`` in DFS (label) order, via ``next`` only.

    Space-faithful in spirit: holds the current path's attributes (depth
    ≤ ``⌊log |H|⌋``) instead of the whole tree.  Used by ``decompose``
    and the Corollary 4.1 deciders.
    """
    root = initial_attrs(g, h)
    stack: list[tuple[NodeAttributes, int]] = [(root, 1)]
    yield root
    while stack:
        attrs, index = stack.pop()
        child = next_attrs(g, h, attrs, index)
        if child is IMPOSSIBLE:
            continue
        stack.append((attrs, index + 1))
        yield child
        if child.mark is Mark.NIL:
            stack.append((child, 1))


def iter_path_descriptors(g: Hypergraph, h: Hypergraph) -> Iterator[PathDescriptor]:
    """The full set ``PD(I)`` in length-then-lex order.

    Astronomically large for all but toy instances (``(|V||G|)^{⌊log|H|⌋}``
    sequences) — exactly the price Theorem 4.1 pays in *time* for its
    space bound.  Guarded by callers; exposed for the paper-faithful
    variant of ``decompose``.
    """
    depth = max_depth_bound(h)
    bound = max_child_index(g)

    def sequences(length: int, prefix: tuple[int, ...]) -> Iterator[PathDescriptor]:
        if length == 0:
            yield prefix
            return
        for entry in range(1, bound + 1):
            yield from sequences(length - 1, prefix + (entry,))

    for length in range(depth + 1):
        yield from sequences(length, ())


def decompose(
    g: Hypergraph,
    h: Hypergraph,
    exhaustive: bool = False,
    exhaustive_limit: int = 200_000,
) -> dict:
    """Theorem 4.1's ``decompose``: list ``T(G, H)``'s vertices and edges.

    With ``exhaustive=True`` the algorithm runs exactly as printed in the
    paper — iterate *all* path descriptors, then all consecutive pairs,
    calling ``pathnode`` on each (quadratic-logspace, exponential time);
    a guard refuses instances whose ``|PD(I)|`` exceeds
    ``exhaustive_limit``.  The default mode enumerates via ``next`` with
    DFS pruning — same output, sane time.

    Returns ``{"vertices": [NodeAttributes…], "edges": [(label, label)…]}``
    with vertices in DFS label order and edges parent→child.
    """
    if exhaustive:
        depth = max_depth_bound(h)
        bound = max_child_index(g)
        total = sum(bound ** k for k in range(depth + 1))
        if total > exhaustive_limit:
            raise MemoryError(
                f"|PD(I)| = {total} exceeds the exhaustive-mode limit "
                f"({exhaustive_limit}); use the default pruned mode"
            )
        vertices = []
        for pi in iter_path_descriptors(g, h):
            attrs = pathnode(g, h, pi)
            if attrs is not IMPOSSIBLE:
                vertices.append(attrs)
        edges = []
        for pi in iter_path_descriptors(g, h):
            parent = pathnode(g, h, pi)
            if parent is IMPOSSIBLE:
                continue
            for entry in range(1, bound + 1):
                child = pathnode(g, h, pi + (entry,))
                if child is not IMPOSSIBLE:
                    edges.append((parent.label, child.label))
        vertices.sort(key=lambda a: a.label)
        edges.sort()
        return {"vertices": vertices, "edges": edges}

    vertices = sorted(iter_tree_nodes(g, h), key=lambda a: a.label)
    edges = sorted(
        (attrs.label[:-1], attrs.label) for attrs in vertices if attrs.label
    )
    return {"vertices": vertices, "edges": edges}


# ---------------------------------------------------------------------------
# Corollary 4.1: decision and witness in quadratic logspace
# ---------------------------------------------------------------------------

def model_space_bits(g: Hypergraph, h: Hypergraph) -> int:
    """The register allocation of :func:`pathnode_metered` at full depth.

    descriptor digits + per-stage files; the quantity experiments fit
    against ``a + b·log₂²(n)``.
    """
    n = instance_size(g, h)
    depth = max_depth_bound(h)
    per_digit = bits_needed(max_child_index(g))
    per_stage = (
        bits_needed(n ** 3)
        + bits_needed(255)
        + 4 * bits_needed(n)
    )
    return depth * (per_digit + per_stage)


def decide_logspace(g: Hypergraph, h: Hypergraph) -> DualityResult:
    """Corollary 4.1(1): decide ``Dual`` in ``DSPACE[log² n]``.

    Entry check, then scan the tree through ``next``/``pathnode`` only,
    looking for a ``fail`` leaf.  ``stats.peak_space_bits`` reports the
    metered model space at full depth (validated against the actual
    metered run of the deepest path).
    """
    method = "logspace"
    entry = prepare_instance(g, h)
    if not entry.ok:
        return not_dual_result(
            method, entry.failure, witness=entry.witness, detail=entry.detail
        )
    g_v, h_v = entry.g, entry.h
    if len(h_v) > len(g_v):
        swapped = True
        g_v, h_v = h_v, g_v
    else:
        swapped = False

    stats = DecisionStats()
    stats.extra["swapped"] = swapped
    deepest: PathDescriptor = ()
    first_fail: NodeAttributes | None = None
    for attrs in iter_tree_nodes(g_v, h_v):
        stats.nodes += 1
        stats.max_depth = max(stats.max_depth, attrs.depth)
        if attrs.depth > len(deepest):
            deepest = attrs.label
        if attrs.mark is Mark.FAIL and (
            first_fail is None or attrs.label < first_fail.label
        ):
            first_fail = attrs

    # Meter the deepest path under the Lemma 3.1 discipline.
    _attrs, meter = pathnode_metered(g_v, h_v, deepest)
    stats.peak_space_bits = meter.peak_bits

    if first_fail is None:
        return dual_result(method, stats)
    direction = "H wrt G" if swapped else "G wrt H"
    return not_dual_result(
        method,
        FailureKind.MISSING_TRANSVERSAL,
        witness=first_fail.witness,
        detail=f"fail leaf {first_fail.label}: new transversal of {direction}",
        path=first_fail.label,
        stats=stats,
    )


def find_new_transversal_logspace(
    g: Hypergraph, h: Hypergraph
) -> frozenset | None:
    """Corollary 4.1(2): a new transversal of ``G`` w.r.t. ``H``, or ``None``.

    Unlike :func:`decide_logspace` this never swaps sides, so the
    witness direction is fixed: the returned set (if any) is a
    transversal of ``G`` containing no edge of ``H``.  Entry violations
    where an ``H``-edge is not a transversal cannot yield such a witness
    and raise ``ValueError`` (the caller should use the full decider).
    """
    entry = prepare_instance(g, h)
    if not entry.ok:
        raise ValueError(
            f"instance outside the decomposition preconditions: {entry.detail}"
        )
    for attrs in iter_tree_nodes(entry.g, entry.h):
        if attrs.mark is Mark.FAIL:
            return attrs.witness
    return None
