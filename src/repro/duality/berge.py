"""Incremental Berge-multiplication duality decider.

Multiplies the edges of ``G`` one at a time, maintaining the minimal
transversals of the processed prefix, and compares the final family with
``H``.  A configurable cap on the intermediate family size turns the
well-known blow-up of this method into a detectable event instead of an
out-of-memory condition.

This decider exists as a *practical baseline* — it is what most ad-hoc
implementations in the wild do — and as a foil for the experiments: its
intermediate families can explode even when both ``G`` and ``H`` are
small, which is precisely the behaviour the paper's space-efficient
method sidesteps.
"""

from __future__ import annotations

from repro.core import VertexIndex, berge_step
from repro.hypergraph import Hypergraph
from repro.hypergraph.transversal import is_new_transversal
from repro.duality.result import (
    DecisionStats,
    DualityResult,
    FailureKind,
    dual_result,
    not_dual_result,
)


def decide_by_berge(
    g: Hypergraph,
    h: Hypergraph,
    intermediate_cap: int | None = None,
) -> DualityResult:
    """Decide ``H = tr(G)`` by incremental Berge multiplication.

    Parameters
    ----------
    g, h:
        Simple hypergraphs over a shared universe.
    intermediate_cap:
        Optional safety cap on the size of intermediate transversal
        families; exceeding it raises ``MemoryError`` rather than
        consuming unbounded memory (the experiments use this to
        demonstrate the blow-up the paper's space-efficient method
        sidesteps).

    The stats record the largest intermediate family in
    ``stats.extra["peak_intermediate"]``.
    """
    method = "berge"
    g.require_simple("G")
    h.require_simple("H")
    universe = g.vertices | h.vertices
    stats = DecisionStats()

    # The multiplication runs on integer masks (one Berge step per edge
    # of G); only the final family is decoded back to frozensets for the
    # comparison with H and the certificates.
    index = VertexIndex(universe)
    if g.is_trivial_true():
        current_set: frozenset[frozenset] = frozenset()
    else:
        current_masks: tuple[int, ...] = (0,)
        for edge in g.edges:
            current_masks = berge_step(current_masks, index.encode(edge))
            stats.nodes += 1
            stats.extra["peak_intermediate"] = max(
                stats.extra.get("peak_intermediate", 0), len(current_masks)
            )
            if (
                intermediate_cap is not None
                and len(current_masks) > intermediate_cap
            ):
                raise MemoryError(
                    f"Berge intermediate family exceeded cap "
                    f"({len(current_masks)} > {intermediate_cap})"
                )
        current_set = frozenset(index.decode(m) for m in current_masks)

    h_edges = set(h.edges)
    extra = sorted(
        h_edges - current_set, key=lambda e: (len(e), sorted(map(repr, e)))
    )
    if extra:
        return not_dual_result(
            method,
            FailureKind.EXTRA_EDGE,
            witness=extra[0],
            detail="edge of H is not a minimal transversal of G",
            stats=stats,
        )
    missing = sorted(
        current_set - h_edges, key=lambda e: (len(e), sorted(map(repr, e)))
    )
    if missing:
        g_aligned = g.with_vertices(universe)
        h_aligned = h.with_vertices(universe)
        witness = missing[0]
        assert is_new_transversal(witness, g_aligned, h_aligned)
        return not_dual_result(
            method,
            FailureKind.MISSING_TRANSVERSAL,
            witness=witness,
            detail="minimal transversal of G absent from H",
            stats=stats,
        )
    return dual_result(method, stats)
