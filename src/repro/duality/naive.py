"""Reference duality deciders: ground truth for every other engine.

Two independent definitional implementations:

* :func:`decide_by_truth_table` — checks ``f(x) ≡ ¬g(¬x)`` on all ``2^n``
  assignments (the *definition* of duality, Section 1).
* :func:`decide_by_transversals` — computes ``tr(G)`` exactly (Berge
  multiplication) and compares with ``H``.

Both are exponential; both produce certificates.  They agree with each
other by construction of the theory, and the test suite verifies that
they do, which is what lets them serve as oracles for the clever
algorithms.
"""

from __future__ import annotations

from repro._util import powerset
from repro.core import VertexIndex
from repro.hypergraph import Hypergraph
from repro.hypergraph.transversal import (
    is_new_transversal,
    transversal_hypergraph,
)
from repro.duality.conditions import prepare_instance
from repro.duality.result import (
    DecisionStats,
    DualityResult,
    FailureKind,
    dual_result,
    not_dual_result,
)


def decide_by_truth_table(g: Hypergraph, h: Hypergraph) -> DualityResult:
    """Decide duality by evaluating both DNFs on every assignment.

    Reading ``G``'s edges as the terms of ``f`` and ``H``'s as the terms
    of ``g``: a failing assignment with ``f(x) = g(¬x) = 0`` makes the
    complement of the true set a *new transversal* of ``G`` w.r.t. ``H``
    (it meets every ``G``-edge and covers no ``H``-edge); a failing
    assignment with ``f(x) = g(¬x) = 1`` exhibits a ``G``-edge and an
    ``H``-edge that are disjoint — a cross-intersection violation.
    """
    method = "truth-table"
    g.require_simple("G")
    h.require_simple("H")
    universe = g.vertices | h.vertices
    stats = DecisionStats()

    # Assignments are enumerated in the library's powerset order (by
    # size, then lexicographically in canonical vertex order) so the
    # first failing assignment — and hence the certificate — matches the
    # frozenset implementation; each term evaluation is one mask test.
    index = VertexIndex(universe)
    full = index.full_mask
    g_masks = tuple(index.encode(e) for e in g.edges)
    h_pairs = tuple((e, index.encode(e)) for e in h.edges)
    for true_vars in powerset(universe):
        stats.nodes += 1
        true_mask = index.encode(true_vars)
        flipped_mask = full & ~true_mask
        f_val = any(m & true_mask == m for m in g_masks)
        g_val = any(m & flipped_mask == m for _e, m in h_pairs)
        if f_val == g_val:
            if f_val:
                # f(x) = 1 and g(¬x) = 1: a G-edge inside the true set is
                # disjoint from an H-edge inside the false set.
                offending = next(
                    e for e, m in h_pairs if m & flipped_mask == m
                )
                return not_dual_result(
                    method,
                    FailureKind.EXTRA_EDGE,
                    witness=offending,
                    detail=(
                        "assignment satisfies both f and the mirrored g: "
                        "cross-intersection violated"
                    ),
                    stats=stats,
                )
            # f(x) = 0: no G-edge inside the true set, so the false set
            # meets every G-edge — it is a transversal of G.  g(¬x) = 0:
            # no H-edge inside the false set.  Hence a new transversal.
            return not_dual_result(
                method,
                FailureKind.MISSING_TRANSVERSAL,
                witness=index.decode(flipped_mask),
                detail="complementary assignment falsifies both formulas",
                stats=stats,
            )
    return dual_result(method, stats)


def decide_by_transversals(g: Hypergraph, h: Hypergraph) -> DualityResult:
    """Decide duality by computing ``tr(G)`` outright and comparing with ``H``.

    Certificates: a missing minimal transversal is itself a new
    transversal of ``G`` w.r.t. ``H``; an extra ``H``-edge is reported as
    such.
    """
    method = "transversal-oracle"
    g.require_simple("G")
    h.require_simple("H")
    universe = g.vertices | h.vertices
    g_aligned = g.with_vertices(universe)
    h_aligned = h.with_vertices(universe)
    stats = DecisionStats()

    exact = transversal_hypergraph(g_aligned)
    stats.nodes = len(exact)
    exact_edges = set(exact.edges)
    h_edges = set(h_aligned.edges)

    extra = sorted(h_edges - exact_edges, key=lambda e: (len(e), sorted(map(repr, e))))
    if extra:
        return not_dual_result(
            method,
            FailureKind.EXTRA_EDGE,
            witness=extra[0],
            detail="edge of H is not a minimal transversal of G",
            stats=stats,
        )
    missing = sorted(
        exact_edges - h_edges, key=lambda e: (len(e), sorted(map(repr, e)))
    )
    if missing:
        witness = missing[0]
        assert is_new_transversal(witness, g_aligned, h_aligned)
        return not_dual_result(
            method,
            FailureKind.MISSING_TRANSVERSAL,
            witness=witness,
            detail="minimal transversal of G absent from H",
            stats=stats,
        )
    return dual_result(method, stats)


def decide_with_entry_check(g: Hypergraph, h: Hypergraph) -> DualityResult:
    """Entry conditions + transversal oracle (the normalised reference pipeline).

    Exercises :func:`repro.duality.conditions.prepare_instance` exactly
    the way the decomposition engines do, then falls back on the
    transversal oracle for the (already validated) core question.
    """
    method = "entry+transversal-oracle"
    entry = prepare_instance(g, h)
    if not entry.ok:
        return not_dual_result(
            method,
            entry.failure,
            witness=entry.witness,
            detail=entry.detail,
        )
    inner = decide_by_transversals(entry.g, entry.h)
    return DualityResult(
        verdict=inner.verdict,
        certificate=inner.certificate,
        stats=inner.stats,
        method=method,
    )
