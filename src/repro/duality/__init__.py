"""Duality deciders: from the definitional check to quadratic logspace.

The decision problem throughout: given simple hypergraphs ``G`` and
``H``, is ``H = tr(G)``?  (Equivalently: are the associated irredundant
monotone DNFs dual?)  See :mod:`repro.duality.engine` for the unified
entry point and the list of algorithms.
"""

from repro.duality.engine import (
    available_methods,
    are_dual,
    decide_dnf_duality,
    decide_duality,
    is_self_dual,
)
from repro.duality.policies import (
    ALL_POLICIES,
    PAPER_POLICY,
    TieBreakPolicy,
    policy_by_name,
)
from repro.duality.result import (
    Certificate,
    DecisionStats,
    DualityResult,
    FailureKind,
    Verdict,
)
from repro.duality.witness import (
    WitnessRole,
    check_result_witness,
    classify_witness,
    explain,
    extract_missing_minimal_transversal,
)
from repro.duality.self_duality import (
    coterie_from_dual_pair,
    decide_duality_via_self_duality,
    is_self_dual_hypergraph,
    self_dualization,
)

__all__ = [
    "coterie_from_dual_pair",
    "decide_duality_via_self_duality",
    "is_self_dual_hypergraph",
    "self_dualization",
    "ALL_POLICIES",
    "PAPER_POLICY",
    "TieBreakPolicy",
    "policy_by_name",
    "Certificate",
    "DecisionStats",
    "DualityResult",
    "FailureKind",
    "Verdict",
    "WitnessRole",
    "are_dual",
    "available_methods",
    "check_result_witness",
    "classify_witness",
    "decide_dnf_duality",
    "decide_duality",
    "explain",
    "extract_missing_minimal_transversal",
    "is_self_dual",
]
