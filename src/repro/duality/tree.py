"""Decomposition-tree data structures (paper, Section 2).

A node ``α`` of the Boros–Makino tree ``T(G, H)`` carries five data
structures (paper, items (i)–(v)):

(i)   a unique ``label(α)`` — a sequence in ``ℵ_H`` (child indices from
      the root; the root's label is the empty sequence),
(ii)  a set ``S_α ⊆ V(G)`` (the node's *scope*),
(iii) the instance ``inst(α) = (G^{S_α}, H_{S_α})``,
(iv)  a marking ``mark(α) ∈ {done, fail, nil}``,
(v)   a vertex set ``t(α)`` — empty unless the node is a ``fail`` leaf,
      in which case it is a new transversal of ``G`` w.r.t. ``H``.

Because ``inst(α)`` is fully determined by the original input and
``S_α`` (projection/restriction commute with nesting of scopes), nodes
store the scope and derive the instance on demand — the property that
Section 4's logspace re-derivation rests on.

Labels here are 0-free: the paper indexes children from 1, and so do we
(``label = (i₁, …, i_k)`` with ``i_j ≥ 1``), matching the path
descriptors of Section 4.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field
from enum import Enum

from repro.hypergraph import Hypergraph
from repro.hypergraph.operations import restriction_instance


class Mark(Enum):
    """The marking of a tree node (paper, item (iv))."""

    NIL = "nil"
    DONE = "done"
    FAIL = "fail"


@dataclass(frozen=True)
class NodeAttributes:
    """The attribute tuple ``attr(α) = (label, S_α, mark, t)``.

    The instance component of the paper's ``attr`` is derivable from
    ``scope`` and the input; :meth:`instance` materialises it.
    """

    label: tuple[int, ...]
    scope: frozenset
    mark: Mark
    witness: frozenset

    def instance(
        self, g: Hypergraph, h: Hypergraph
    ) -> tuple[Hypergraph, Hypergraph]:
        """``inst(α) = (G^{S_α}, H_{S_α})`` for the original input ``(G, H)``."""
        return restriction_instance(g, h, self.scope)

    @property
    def depth(self) -> int:
        """Distance from the root (the label's length)."""
        return len(self.label)

    def is_marked(self) -> bool:
        """True for ``done``/``fail`` (i.e. leaf) nodes."""
        return self.mark is not Mark.NIL

    def child_label(self, index: int) -> tuple[int, ...]:
        """The label of the ``index``-th child (children indexed from 1)."""
        if index < 1:
            raise ValueError("children are indexed from 1")
        return self.label + (index,)


@dataclass
class TreeNode:
    """A materialised node of ``T(G, H)`` with its children."""

    attrs: NodeAttributes
    children: list["TreeNode"] = field(default_factory=list)

    def walk(self) -> Iterator["TreeNode"]:
        """Pre-order traversal of the subtree."""
        yield self
        for child in self.children:
            yield from child.walk()


@dataclass
class DecompositionTree:
    """The complete tree ``T(G, H)`` with its input instance.

    ``g``/``h`` are the (validated, shared-universe) input hypergraphs;
    ``root`` the materialised tree.  The accessors expose exactly the
    quantities Proposition 2.1 bounds — leaf markings, depth, branching.
    """

    g: Hypergraph
    h: Hypergraph
    root: TreeNode

    def nodes(self) -> Iterator[TreeNode]:
        """All nodes, pre-order."""
        yield from self.root.walk()

    def leaves(self) -> Iterator[TreeNode]:
        """All leaves (nodes without children)."""
        for node in self.nodes():
            if not node.children:
                yield node

    def fail_leaves(self) -> list[TreeNode]:
        """The leaves marked ``fail`` — each witnesses ``H ≠ tr(G)``."""
        return [n for n in self.leaves() if n.attrs.mark is Mark.FAIL]

    def all_done(self) -> bool:
        """Proposition 2.1(1): ``H = tr(G)`` iff every leaf is ``done``."""
        return all(n.attrs.mark is Mark.DONE for n in self.leaves())

    def depth(self) -> int:
        """The depth of the tree (root = 0)."""
        return max((n.attrs.depth for n in self.nodes()), default=0)

    def max_branching(self) -> int:
        """The largest ``κ(α)`` over all nodes."""
        return max((len(n.children) for n in self.nodes()), default=0)

    def node_count(self) -> int:
        """Total number of nodes."""
        return sum(1 for _ in self.nodes())

    def find(self, label: tuple[int, ...]) -> TreeNode | None:
        """The node with the given label, or ``None``.

        Follows child indices, so lookup cost is the label length — this
        is the tree-side mirror of Section 4's ``pathnode``.
        """
        node = self.root
        for index in label:
            if index < 1 or index > len(node.children):
                return None
            node = node.children[index - 1]
        return node

    def labels(self) -> list[tuple[int, ...]]:
        """All node labels, pre-order."""
        return [n.attrs.label for n in self.nodes()]

    def edges(self) -> list[tuple[tuple[int, ...], tuple[int, ...]]]:
        """Parent→child label pairs — the "Edges:" section of ``decompose``."""
        out = []
        for node in self.nodes():
            for child in node.children:
                out.append((node.attrs.label, child.attrs.label))
        return out
