"""Self-duality and the classical reduction ``Dual → Self-Dual``.

A monotone function ``f`` is *self-dual* when ``f = f^d``; in hypergraph
terms, ``tr(H) = H``.  Self-duality is exactly Prop. 1.3's
non-domination criterion for coteries, which makes the classical
reduction below more than a curiosity: it turns **any** dual pair into
a non-dominated coterie.

The reduction (Eiter–Gottlob, SIAM J. Comput. 1995): given monotone
``f, g`` on disjoint variables and two fresh variables ``x, y``,

    ``h = (x ∧ y) ∨ (x ∧ f) ∨ (y ∧ g)``

is self-dual **iff** ``g = f^d``.  In hypergraph form, ``h``'s edge
family is ``{{x, y}} ∪ {{x} ∪ E : E ∈ G} ∪ {{y} ∪ F : F ∈ H}``.

So ``Dual`` reduces to self-duality testing (and self-duality is the
special case ``Dual(f, f)`` of the paper's problem), giving the
experiments a second, independently-checkable formulation — and a
constructive bridge from dual pairs to coteries
(:func:`coterie_from_dual_pair`).
"""

from __future__ import annotations

from repro.errors import InvalidInstanceError, VertexError
from repro.hypergraph.hypergraph import Hypergraph
from repro.duality.engine import DEFAULT_METHOD, decide_duality
from repro.duality.result import DualityResult


def is_self_dual_hypergraph(
    hg: Hypergraph, method: str = DEFAULT_METHOD
) -> bool:
    """Is ``tr(H) = H`` (the function of ``hg`` self-dual)?

    Runs the selected ``Dual`` engine on the pair ``(hg, hg)``.
    """
    return decide_duality(hg, hg, method=method).is_dual


def self_dualization(
    g: Hypergraph,
    h: Hypergraph,
    x="__x__",
    y="__y__",
) -> Hypergraph:
    """The Eiter–Gottlob self-dualizing hypergraph of a pair ``(G, H)``.

    Edges: ``{x, y}``, ``{x} ∪ E`` for every ``E ∈ G``, and ``{y} ∪ F``
    for every ``F ∈ H``, over the shared universe plus the two fresh
    vertices.  The result is self-dual iff ``H = tr(G)``.

    The fresh vertex labels must not occur in either hypergraph.
    Constant inputs are rejected — the reduction's correctness needs
    non-degenerate ``f`` and ``g`` (decide those with
    :func:`~repro.duality.conditions.check_degenerate` directly).
    """
    universe = g.vertices | h.vertices
    if x in universe or y in universe:
        raise VertexError(
            f"fresh vertices {x!r}/{y!r} collide with the instance universe"
        )
    for side, name in ((g, "G"), (h, "H")):
        if side.is_trivial_false() or side.is_trivial_true():
            raise InvalidInstanceError(
                f"{name} is constant; the self-dualization reduction needs "
                "non-degenerate inputs"
            )
    edges = [frozenset({x, y})]
    edges.extend(frozenset(e | {x}) for e in g.edges)
    edges.extend(frozenset(e | {y}) for e in h.edges)
    return Hypergraph(edges, vertices=universe | {x, y})


def decide_duality_via_self_duality(
    g: Hypergraph,
    h: Hypergraph,
    method: str = DEFAULT_METHOD,
) -> DualityResult:
    """Decide ``H = tr(G)`` through the self-duality reduction.

    Builds the self-dualization and asks the engine whether it equals
    its own transversal hypergraph.  The verdict transfers by the
    reduction theorem; the certificate speaks about the *reduced*
    instance (its witness mentions the fresh vertices), so the result's
    ``stats.extra["reduced"]`` flags that.  Exists as an independent
    cross-check of every direct engine, exercised by the tests.
    """
    reduced = self_dualization(g, h)
    result = decide_duality(reduced, reduced, method=method)
    result.stats.extra["reduced"] = True
    result.stats.extra["reduced_vertices"] = len(reduced.vertices)
    return result


def coterie_from_dual_pair(g: Hypergraph, h: Hypergraph):
    """A non-dominated coterie built from a dual pair (Prop. 1.3 bridge).

    The self-dualization of a dual pair is a self-dual intersecting
    antichain — precisely a non-dominated coterie.  Raises
    :class:`~repro.errors.InvalidInstanceError` when the pair is not
    dual (the construction would be dominated or not a coterie).
    """
    from repro.coteries.coterie import Coterie

    if not decide_duality(g, h).is_dual:
        raise InvalidInstanceError(
            "coterie_from_dual_pair needs a dual pair; run decide_duality "
            "first to obtain a witness for the failure"
        )
    reduced = self_dualization(g, h)
    return Coterie(reduced.edges, universe=reduced.vertices)
