"""Necessary conditions for duality and the logspace-checkable entry test.

The paper (Section 2) assumes of every input instance ``I = (G, H)``:

    "It is assumed that for the input instance I = (G,H) we have
     |H| ≤ |G|, and that G ⊆ tr(H) and H ⊆ tr(G).  Clearly this can be
     tested in logarithmic space."

``G ⊆ tr(H)`` means every edge of ``G`` is a *minimal transversal* of
``H`` — checkable edge-by-edge with counters only (hence logspace):

* transversality: each ``E ∈ G`` meets each ``F ∈ H``;
* minimality (private-vertex criterion): each ``v ∈ E`` has a witness
  edge ``F ∈ H`` with ``E ∩ F = {v}``.

This module provides those checks, classic quick rejections used by the
Fredman–Khachiyan algorithms, and :func:`prepare_instance`, which either
normalises an arbitrary simple pair into a valid Boros–Makino input or
returns an immediate NOT_DUAL answer with a primitive certificate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import NotSimpleError
from repro.hypergraph import Hypergraph
from repro.hypergraph.transversal import (
    is_minimal_transversal,
    is_transversal,
)
from repro.duality.result import FailureKind


def first_non_minimal_transversal_edge(
    g: Hypergraph, h: Hypergraph
) -> frozenset | None:
    """The canonically-first edge of ``g`` that is not a minimal transversal of ``h``.

    Returns ``None`` when ``G ⊆ tr(H)`` holds.
    """
    for edge in g.edges:
        if not is_minimal_transversal(edge, h):
            return edge
    return None


def subset_of_transversals(g: Hypergraph, h: Hypergraph) -> bool:
    """``G ⊆ tr(H)``: every edge of ``g`` is a minimal transversal of ``h``."""
    return first_non_minimal_transversal_edge(g, h) is None


def cross_intersection_holds(g: Hypergraph, h: Hypergraph) -> bool:
    """Every edge of ``g`` meets every edge of ``h`` (weakest necessary condition)."""
    return all(ge & he for ge in g.edges for he in h.edges)


def fredman_khachiyan_weight(g: Hypergraph, h: Hypergraph) -> float:
    """The FK volume inequality weight ``Σ_G 2^{-|E|} + Σ_H 2^{-|E|}``.

    For a dual pair the weight is ≥ 1 (every assignment satisfies
    exactly one of ``f(x)``, ``g(¬x)``, and each term covers a
    ``2^{-|t|}`` fraction of assignments).  Weight < 1 certifies
    non-duality without recursion.
    """
    return sum(2.0 ** -len(e) for e in g.edges) + sum(
        2.0 ** -len(e) for e in h.edges
    )


def same_relevant_variables(g: Hypergraph, h: Hypergraph) -> bool:
    """Dual irredundant DNFs mention exactly the same variables.

    A variable occurring in a minimal term of ``f`` is relevant to ``f``,
    and ``f`` and its dual have the same relevant variables.  (Degenerate
    constant hypergraphs mention no variables, so they pass vacuously.)
    """
    g_used: set = set()
    for edge in g.edges:
        g_used |= edge
    h_used: set = set()
    for edge in h.edges:
        h_used |= edge
    return g_used == h_used


@dataclass(frozen=True)
class EntryCheck:
    """Outcome of :func:`prepare_instance`.

    Either ``ok`` is True and ``(g, h)`` is a valid decomposition input
    (both simple, ``G ⊆ tr(H)``, ``H ⊆ tr(G)``) — in which case duality
    of the original pair is equivalent to ``H = tr(G)`` — or ``ok`` is
    False and ``failure``/``witness``/``detail`` explain the immediate
    NOT_DUAL verdict.
    """

    ok: bool
    g: Hypergraph | None = None
    h: Hypergraph | None = None
    failure: FailureKind | None = None
    witness: frozenset | None = None
    detail: str = ""


def check_degenerate(g: Hypergraph, h: Hypergraph) -> bool | None:
    """Resolve instances involving constant hypergraphs, if possible.

    Returns True/False when the instance is decided outright by the
    Boolean-constant conventions, ``None`` when both sides are
    non-degenerate:

    * ``tr(∅) = {∅}``: constant false is dual to constant true only;
    * a hypergraph with the empty edge is dual to the empty one only.
    """
    if g.is_trivial_false():
        return h.is_trivial_true()
    if g.is_trivial_true():
        return h.is_trivial_false()
    if h.is_trivial_false() or h.is_trivial_true():
        # g is non-degenerate here, so it cannot be dual to a constant.
        return False
    return None


def prepare_instance(g: Hypergraph, h: Hypergraph) -> EntryCheck:
    """Validate and normalise an instance for the decomposition deciders.

    Raises :class:`NotSimpleError` when a side is not simple (redundant
    DNF — a malformed input per the problem definition).  Otherwise
    performs the paper's logspace entry test:

    1. resolve degenerate/constant cases,
    2. check ``H ⊆ tr(G)`` — a violation yields an ``EXTRA_EDGE``
       certificate (some claimed minimal transversal isn't one),
    3. check ``G ⊆ tr(H)`` — a violation means (since duality is
       symmetric) ``tr(G) ≠ H``; the offending edge certifies it.

    On success the returned pair is aligned to a shared universe (the
    union of both universes), so decomposition can treat ``V`` as one
    fixed vertex set.
    """
    g.require_simple("G")
    h.require_simple("H")

    degenerate = check_degenerate(g, h)
    if degenerate is True:
        return EntryCheck(ok=True, g=g, h=h)
    if degenerate is False:
        return EntryCheck(
            ok=False,
            failure=FailureKind.CONSTANT_MISMATCH,
            detail="constant hypergraph paired with a non-matching partner",
        )

    universe = g.vertices | h.vertices
    g = g.with_vertices(universe)
    h = h.with_vertices(universe)

    bad_h = first_non_minimal_transversal_edge(h, g)
    if bad_h is not None:
        if is_transversal(bad_h, g):
            detail = f"edge {sorted(map(repr, bad_h))} of H is a non-minimal transversal of G"
        else:
            detail = f"edge {sorted(map(repr, bad_h))} of H is not a transversal of G"
        return EntryCheck(
            ok=False,
            failure=FailureKind.EXTRA_EDGE,
            witness=bad_h,
            detail=detail,
        )

    bad_g = first_non_minimal_transversal_edge(g, h)
    if bad_g is not None:
        if is_transversal(bad_g, h):
            detail = f"edge {sorted(map(repr, bad_g))} of G is a non-minimal transversal of H"
        else:
            detail = f"edge {sorted(map(repr, bad_g))} of G is not a transversal of H"
        return EntryCheck(
            ok=False,
            failure=FailureKind.EXTRA_EDGE,
            witness=bad_g,
            detail=detail,
        )

    return EntryCheck(ok=True, g=g, h=h)
