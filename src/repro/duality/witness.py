"""Witness validation and post-processing (paper, Corollary 4.1 discussion).

A NOT_DUAL verdict must be *checkable*.  For the instance "is
``H = tr(G)``?" the primitive certificates are:

* a **new transversal** of ``G`` w.r.t. ``H`` — a transversal of ``G``
  containing no edge of ``H`` (proves a minimal transversal is missing
  from ``H``);
* an **extra edge** — an edge of ``H`` that is not a minimal transversal
  of ``G``.

Because duality is symmetric, engines that internally swap sides may
return a new transversal of ``H`` w.r.t. ``G`` instead;
:func:`classify_witness` recognises all cases.

The paper points out (after Corollary 4.1) that the witness ``t(α)`` is
in general *not minimal*, and that greedy minimalization needs linear
(not quadratic-log) space; :func:`extract_missing_minimal_transversal`
implements that post-pass and is measured separately by experiment E7.
"""

from __future__ import annotations

from enum import Enum

from repro.hypergraph import Hypergraph
from repro.hypergraph.transversal import (
    is_minimal_transversal,
    is_new_transversal,
    is_transversal,
    minimalize_transversal,
)
from repro.duality.result import DualityResult, FailureKind


class WitnessRole(Enum):
    """What a claimed witness set actually certifies."""

    NEW_TRANSVERSAL_OF_G = "new transversal of G w.r.t. H"
    NEW_TRANSVERSAL_OF_H = "new transversal of H w.r.t. G"
    EXTRA_EDGE_OF_H = "edge of H that is not a minimal transversal of G"
    EXTRA_EDGE_OF_G = "edge of G that is not a minimal transversal of H"
    INVALID = "certifies nothing"


def classify_witness(
    g: Hypergraph, h: Hypergraph, witness: frozenset
) -> WitnessRole:
    """Determine which non-duality certificate ``witness`` provides, if any.

    Checks the four primitive roles in a fixed priority order (new
    transversals first — they are the strongest evidence).
    """
    universe = g.vertices | h.vertices
    g_a = g.with_vertices(universe)
    h_a = h.with_vertices(universe)
    if is_new_transversal(witness, g_a, h_a):
        return WitnessRole.NEW_TRANSVERSAL_OF_G
    if is_new_transversal(witness, h_a, g_a):
        return WitnessRole.NEW_TRANSVERSAL_OF_H
    if witness in set(h_a.edges) and not is_minimal_transversal(witness, g_a):
        return WitnessRole.EXTRA_EDGE_OF_H
    if witness in set(g_a.edges) and not is_minimal_transversal(witness, h_a):
        return WitnessRole.EXTRA_EDGE_OF_G
    return WitnessRole.INVALID


def check_result_witness(
    g: Hypergraph, h: Hypergraph, result: DualityResult
) -> bool:
    """True iff a NOT_DUAL result carries a valid certificate.

    DUAL results need no witness and always pass.  Results whose failure
    kind is :attr:`FailureKind.CONSTANT_MISMATCH` are validated
    structurally (one side must be constant).
    """
    if result.is_dual:
        return True
    kind = result.certificate.kind
    if kind is FailureKind.CONSTANT_MISMATCH:
        return (
            g.is_trivial_false()
            or g.is_trivial_true()
            or h.is_trivial_false()
            or h.is_trivial_true()
        )
    witness = result.certificate.witness
    if witness is None:
        return False
    return classify_witness(g, h, witness) is not WitnessRole.INVALID


def extract_missing_minimal_transversal(
    g: Hypergraph, h: Hypergraph, witness: frozenset
) -> frozenset:
    """Shrink a new transversal to a *missing minimal transversal*.

    Given a new transversal ``t`` of ``G`` w.r.t. ``H``, greedily remove
    vertices while the set stays a transversal of ``G`` (the linear-space
    post-pass the paper describes).  The result is a minimal transversal
    of ``G`` that is not an edge of ``H`` — i.e. concretely an element of
    ``tr(G) − H``.

    Engines are free to swap sides (the paper assumes ``|H| ≤ |G|``), so
    a witness may be a new transversal of ``H`` w.r.t. ``G`` instead.  In
    that case its complement ``V − t`` is a new transversal of ``G``
    w.r.t. ``H`` (``t`` meets every ``H``-edge, so no ``H``-edge fits in
    the complement; ``t`` covers no ``G``-edge, so every ``G``-edge meets
    the complement), and we shrink that instead.
    """
    universe = g.vertices | h.vertices
    g_a = g.with_vertices(universe)
    h_a = h.with_vertices(universe)
    if not is_new_transversal(witness, g_a, h_a):
        flipped = frozenset(universe - witness)
        if not is_new_transversal(witness, h_a, g_a):
            raise ValueError("witness is not a new transversal of G w.r.t. H")
        witness = flipped
    minimal = minimalize_transversal(witness, g_a)
    # A minimal transversal below a new transversal cannot be an H-edge:
    # every H-edge inside the witness would contradict new-ness, and the
    # shrink only removes vertices.
    assert minimal not in set(h_a.edges)
    assert is_minimal_transversal(minimal, g_a)
    return minimal


def witness_direction_pair(
    g: Hypergraph, h: Hypergraph, result: DualityResult
) -> tuple[Hypergraph, Hypergraph] | None:
    """The (base, reference) pair a new-transversal witness speaks about.

    Returns ``(g, h)`` when the witness is a new transversal of ``G``
    w.r.t. ``H``, ``(h, g)`` when of ``H`` w.r.t. ``G``, and ``None`` for
    non-transversal certificates.
    """
    if result.is_dual or result.certificate.witness is None:
        return None
    role = classify_witness(g, h, result.certificate.witness)
    if role is WitnessRole.NEW_TRANSVERSAL_OF_G:
        return g, h
    if role is WitnessRole.NEW_TRANSVERSAL_OF_H:
        return h, g
    return None


def explain(g: Hypergraph, h: Hypergraph, result: DualityResult) -> str:
    """One-line human explanation of a duality result and its evidence."""
    if result.is_dual:
        return f"dual ({result.method}): H = tr(G) over {len(g.vertices | h.vertices)} vertices"
    witness = result.certificate.witness
    role = (
        classify_witness(g, h, witness).value
        if witness is not None
        else "no witness"
    )
    return (
        f"not dual ({result.method}): {result.certificate.kind.value}; "
        f"witness {sorted(map(str, witness or ()))} is a {role}"
    )


def is_transversal_pair_consistent(g: Hypergraph, h: Hypergraph) -> bool:
    """Quick consistency: every ``H``-edge is at least a transversal of ``G``.

    Weaker than the full entry check; used by integration tests to build
    sensible negative instances.
    """
    return all(is_transversal(e, g) for e in h.edges)
