"""Unified façade over all duality deciders.

``decide_duality(g, h, method=...)`` runs any of the engines behind a
single signature, so applications (itemsets, keys, coteries) and the
experiment harness can switch algorithms with a string:

============  =====================================================
method        engine
============  =====================================================
truth-table   definitional check on all ``2^n`` assignments
transversal   exact ``tr(G)`` comparison (Berge oracle)
berge         incremental Berge with blow-up instrumentation
fk-a          Fredman–Khachiyan algorithm A
fk-b          Fredman–Khachiyan algorithm B
bm            full Boros–Makino decomposition tree (Section 2)
logspace      the paper's quadratic-logspace algorithm (Section 4)
guess-check   the paper's guess-and-check algorithm (Section 5)
tractable     Section 6 structural dispatch (graph / threshold /
              acyclic fast paths, general fallback)
dfs-enum      space-efficient DFS enumeration with early stop
              (the ref [44] Tamaki style)
portfolio     several engines raced on the instance, first finisher
              wins (:mod:`repro.parallel.portfolio`)
auto          learned selector: predict the winning engine from
              structural features, race top-2 on low confidence
              (:mod:`repro.select`)
============  =====================================================

``decide_duality`` additionally accepts ``n_jobs`` (sharded
multi-process solving for ``fk-a``/``fk-b``/``bm``/``logspace`` via
:mod:`repro.parallel`) and passes engine-specific keyword options
through after validating them against the engine's signature.

All engines answer the same question — is ``H = tr(G)``? — and return a
:class:`repro.duality.result.DualityResult` with a checkable certificate
on NOT_DUAL.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.hypergraph import Hypergraph
from repro.dnf import MonotoneDNF
from repro.duality.result import DualityResult


def _lazy_engines() -> dict[str, Callable[[Hypergraph, Hypergraph], DualityResult]]:
    # Imported lazily so the cheap engines stay importable even while the
    # heavier modules are being developed/tested in isolation.
    from repro.duality.naive import decide_by_transversals, decide_by_truth_table
    from repro.duality.berge import decide_by_berge
    from repro.duality.fredman_khachiyan import decide_fk_a, decide_fk_b
    from repro.duality.boros_makino import decide_boros_makino
    from repro.duality.logspace import decide_logspace
    from repro.duality.guess_and_check import decide_guess_and_check
    from repro.duality.tractable import decide_duality_tractable
    from repro.duality.enumeration import decide_by_dfs_enumeration

    return {
        "truth-table": decide_by_truth_table,
        "transversal": decide_by_transversals,
        "berge": decide_by_berge,
        "fk-a": decide_fk_a,
        "fk-b": decide_fk_b,
        "bm": decide_boros_makino,
        "logspace": decide_logspace,
        "guess-check": decide_guess_and_check,
        "tractable": decide_duality_tractable,
        "dfs-enum": decide_by_dfs_enumeration,
    }


DEFAULT_METHOD = "bm"

#: Methods with a sharded multi-process path behind ``n_jobs > 1``
#: (mirrors :data:`repro.parallel.executor.PARALLEL_METHODS`; duplicated
#: here so the facade can report errors without importing the package).
PARALLEL_METHODS = ("fk-a", "fk-b", "bm", "logspace")


def available_methods() -> list[str]:
    """The method names accepted by :func:`decide_duality`.

    Includes two meta-methods that are not algorithms of their own:
    ``"portfolio"`` (several engines raced, first finisher wins — see
    :mod:`repro.parallel.portfolio`) and ``"auto"`` (the learned
    selector: predict the winner, race only on low confidence — see
    :mod:`repro.select`).
    """
    return sorted([*_lazy_engines(), "portfolio", "auto"])


def _engine_options(fn: Callable) -> dict[str, object]:
    """The sanctioned keyword options of an engine: every defaulted
    parameter after the two hypergraph positionals."""
    from inspect import Parameter, signature

    options = {}
    for name, param in list(signature(fn).parameters.items())[2:]:
        if param.default is not Parameter.empty or param.kind is Parameter.KEYWORD_ONLY:
            options[name] = param.default
    return options


def _reject_unknown_options(method: str, fn: Callable, options: dict) -> None:
    """The uniform option check: every engine kwarg must be sanctioned.

    Raises ``ValueError`` naming both the offending option(s) and the
    full sanctioned list for the chosen method, so callers never have to
    guess which engine accepts what.
    """
    allowed = _engine_options(fn)
    unknown = sorted(set(options) - set(allowed))
    if not unknown:
        return
    if allowed:
        sanctioned = ", ".join(
            f"{name}={default!r}" for name, default in sorted(allowed.items())
        )
        hint = f"sanctioned options for {method!r}: {sanctioned}"
    else:
        hint = f"method {method!r} accepts no engine options"
    raise ValueError(
        f"unknown option(s) {', '.join(map(repr, unknown))} "
        f"for duality method {method!r}; {hint}"
    )


def decide_duality(
    g: Hypergraph,
    h: Hypergraph,
    method: str = DEFAULT_METHOD,
    *,
    n_jobs: int = 1,
    **options,
) -> DualityResult:
    """Decide whether ``H = tr(G)`` with the selected engine.

    Parameters
    ----------
    g, h:
        Simple hypergraphs.  Universes are united internally; isolated
        vertices are allowed.
    method:
        One of :func:`available_methods` (default: the Boros–Makino
        tree, the paper's workhorse).  ``"portfolio"`` races several
        engines and returns the first finisher.
    n_jobs:
        Worker processes: ``1`` (default) runs serially in-process,
        ``-1`` uses every core (for ``"portfolio"``: one worker per
        engine, even beyond the core count).  Values above 1 are
        honoured for the sharded methods (``fk-a``, ``fk-b``, ``bm``,
        ``logspace``) and ``"portfolio"``; other engines have no
        parallel path and reject them.  Verdicts and certificates never
        depend on ``n_jobs``.
    options:
        Engine-specific keyword options (e.g. ``use_bitset=False`` for
        the FK reference recursion, ``policy=`` for the tree engines).
        Unknown options are rejected with the sanctioned list.

    Raises
    ------
    ValueError
        For an unknown method name, an unknown engine option, or an
        ``n_jobs`` request the method cannot honour.
    repro.errors.NotSimpleError
        When a side is not simple (redundant DNF).
    """
    engines = _lazy_engines()
    if method == "portfolio":
        from repro.parallel.portfolio import race_portfolio

        _reject_unknown_options(method, race_portfolio, options)
        # -1 means "one worker per engine" for a race (engines may
        # outnumber cores; oversubscription is the hedge, so the racer
        # is not capped at cpu_count like the sharded paths are).
        return race_portfolio(
            g, h, n_jobs=(None if n_jobs == -1 else n_jobs), **options
        )
    if method == "auto":
        from repro.select.selector import decide_auto

        _reject_unknown_options(method, decide_auto, options)
        return decide_auto(g, h, n_jobs=n_jobs, **options)
    # ``cost_fn`` belongs to the shard *planner*, not any serial engine:
    # it re-weighs how a sharded plan balances its frontier (verdicts
    # and certificates are unchanged at any partition), so it is only
    # meaningful on a parallel solve of a sharded method.
    cost_fn = options.pop("cost_fn", None)
    if method not in engines:
        raise ValueError(_unknown_method_message(method, engines))
    fn = engines[method]
    _reject_unknown_options(method, fn, options)
    if cost_fn is not None:
        if method not in ("bm", "logspace") or n_jobs == 1:
            raise ValueError(
                f"cost_fn= re-weighs the tree planners' frontiers and needs "
                f"a sharded parallel solve: method in 'bm', 'logspace' with "
                f"n_jobs != 1 (got method={method!r}, n_jobs={n_jobs})"
            )
        options["cost_fn"] = cost_fn
    if n_jobs != 1:
        # repro.parallel stays unimported on the serial path — plain
        # serial use never pays for the subsystem.
        from repro.parallel.executor import decide_duality_parallel, resolve_n_jobs

        jobs = resolve_n_jobs(n_jobs)
        if jobs != 1:
            if method not in PARALLEL_METHODS:
                raise ValueError(
                    f"method {method!r} has no parallel path (n_jobs={n_jobs}); "
                    f"methods honouring n_jobs > 1: "
                    f"{', '.join(map(repr, PARALLEL_METHODS))} and 'portfolio'"
                )
            return decide_duality_parallel(
                g, h, method=method, n_jobs=jobs, **options
            )
    return fn(g, h, **options)


def _unknown_method_message(method: str, engines: dict) -> str:
    """A helpful error for a bad ``method``: every valid name, plus the
    closest match when the input looks like a typo."""
    from difflib import get_close_matches

    names = sorted([*engines, "portfolio", "auto"])
    message = (
        f"unknown duality method {method!r}; valid methods are: "
        + ", ".join(repr(name) for name in names)
    )
    close = get_close_matches(str(method), names, n=1)
    if close:
        message += f" (did you mean {close[0]!r}?)"
    return message


def are_dual(
    g: Hypergraph,
    h: Hypergraph,
    method: str = DEFAULT_METHOD,
    *,
    n_jobs: int = 1,
    **options,
) -> bool:
    """Boolean shortcut for :func:`decide_duality`."""
    return decide_duality(g, h, method=method, n_jobs=n_jobs, **options).is_dual


def decide_dnf_duality(
    f: MonotoneDNF, g: MonotoneDNF, method: str = DEFAULT_METHOD
) -> DualityResult:
    """Duality of monotone DNFs — the trivial reduction of Section 1.

    The formulas must be irredundant (the problem ``Dual`` is defined on
    irredundant DNFs); redundant input raises
    :class:`repro.errors.NotIrredundantError`.
    """
    f.require_irredundant()
    g.require_irredundant()
    return decide_duality(f.hypergraph(), g.hypergraph(), method=method)


def is_self_dual(g: Hypergraph, method: str = DEFAULT_METHOD) -> bool:
    """``tr(G) = G``?  (The coterie non-domination test of Prop. 1.3.)"""
    return are_dual(g, g, method=method)
