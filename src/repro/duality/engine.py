"""Unified façade over all duality deciders.

``decide_duality(g, h, method=...)`` runs any of the engines behind a
single signature, so applications (itemsets, keys, coteries) and the
experiment harness can switch algorithms with a string:

============  =====================================================
method        engine
============  =====================================================
truth-table   definitional check on all ``2^n`` assignments
transversal   exact ``tr(G)`` comparison (Berge oracle)
berge         incremental Berge with blow-up instrumentation
fk-a          Fredman–Khachiyan algorithm A
fk-b          Fredman–Khachiyan algorithm B
bm            full Boros–Makino decomposition tree (Section 2)
logspace      the paper's quadratic-logspace algorithm (Section 4)
guess-check   the paper's guess-and-check algorithm (Section 5)
tractable     Section 6 structural dispatch (graph / threshold /
              acyclic fast paths, general fallback)
dfs-enum      space-efficient DFS enumeration with early stop
              (the ref [44] Tamaki style)
============  =====================================================

All engines answer the same question — is ``H = tr(G)``? — and return a
:class:`repro.duality.result.DualityResult` with a checkable certificate
on NOT_DUAL.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.hypergraph import Hypergraph
from repro.dnf import MonotoneDNF
from repro.duality.result import DualityResult


def _lazy_engines() -> dict[str, Callable[[Hypergraph, Hypergraph], DualityResult]]:
    # Imported lazily so the cheap engines stay importable even while the
    # heavier modules are being developed/tested in isolation.
    from repro.duality.naive import decide_by_transversals, decide_by_truth_table
    from repro.duality.berge import decide_by_berge
    from repro.duality.fredman_khachiyan import decide_fk_a, decide_fk_b
    from repro.duality.boros_makino import decide_boros_makino
    from repro.duality.logspace import decide_logspace
    from repro.duality.guess_and_check import decide_guess_and_check
    from repro.duality.tractable import decide_duality_tractable
    from repro.duality.enumeration import decide_by_dfs_enumeration

    return {
        "truth-table": decide_by_truth_table,
        "transversal": decide_by_transversals,
        "berge": decide_by_berge,
        "fk-a": decide_fk_a,
        "fk-b": decide_fk_b,
        "bm": decide_boros_makino,
        "logspace": decide_logspace,
        "guess-check": decide_guess_and_check,
        "tractable": decide_duality_tractable,
        "dfs-enum": decide_by_dfs_enumeration,
    }


DEFAULT_METHOD = "bm"


def available_methods() -> list[str]:
    """The method names accepted by :func:`decide_duality`."""
    return sorted(_lazy_engines())


def decide_duality(
    g: Hypergraph, h: Hypergraph, method: str = DEFAULT_METHOD
) -> DualityResult:
    """Decide whether ``H = tr(G)`` with the selected engine.

    Parameters
    ----------
    g, h:
        Simple hypergraphs.  Universes are united internally; isolated
        vertices are allowed.
    method:
        One of :func:`available_methods` (default: the Boros–Makino
        tree, the paper's workhorse).

    Raises
    ------
    ValueError
        For an unknown method name.
    repro.errors.NotSimpleError
        When a side is not simple (redundant DNF).
    """
    engines = _lazy_engines()
    if method not in engines:
        raise ValueError(_unknown_method_message(method, engines))
    return engines[method](g, h)


def _unknown_method_message(method: str, engines: dict) -> str:
    """A helpful error for a bad ``method``: every valid name, plus the
    closest match when the input looks like a typo."""
    from difflib import get_close_matches

    names = sorted(engines)
    message = (
        f"unknown duality method {method!r}; valid methods are: "
        + ", ".join(repr(name) for name in names)
    )
    close = get_close_matches(str(method), names, n=1)
    if close:
        message += f" (did you mean {close[0]!r}?)"
    return message


def are_dual(g: Hypergraph, h: Hypergraph, method: str = DEFAULT_METHOD) -> bool:
    """Boolean shortcut for :func:`decide_duality`."""
    return decide_duality(g, h, method=method).is_dual


def decide_dnf_duality(
    f: MonotoneDNF, g: MonotoneDNF, method: str = DEFAULT_METHOD
) -> DualityResult:
    """Duality of monotone DNFs — the trivial reduction of Section 1.

    The formulas must be irredundant (the problem ``Dual`` is defined on
    irredundant DNFs); redundant input raises
    :class:`repro.errors.NotIrredundantError`.
    """
    f.require_irredundant()
    g.require_irredundant()
    return decide_duality(f.hypergraph(), g.hypergraph(), method=method)


def is_self_dual(g: Hypergraph, method: str = DEFAULT_METHOD) -> bool:
    """``tr(G) = G``?  (The coterie non-domination test of Prop. 1.3.)"""
    return are_dual(g, g, method=method)
