"""The Fredman–Khachiyan duality algorithms A and B.

Fredman and Khachiyan (J. Algorithms 1996; paper's reference [15]) gave
the first quasi-polynomial algorithms for ``Dual``.  The paper recalls
them as the baseline decomposition methods: algorithm **A** produces a
binary decomposition tree, algorithm **B** a non-binary tree with fewer
nodes and the celebrated ``n^{4χ(n)+O(1)}`` bound, where ``χ(χ) = n``.

Both algorithms decide whether the monotone DNFs given by edge families
``F`` and ``G`` are *dual* and, when they are not, return a **failing
assignment** σ with ``f(σ) = g(¬σ)``, from which the standard witnesses
derive:

* type ``00`` (``f(σ) = g(¬σ) = 0``): the false set ``V − σ`` is a *new
  transversal* of ``F`` w.r.t. ``G``;
* type ``11`` (``f(σ) = g(¬σ) = 1``): an ``F``-edge inside σ misses a
  ``G``-edge inside ``V − σ`` — a cross-intersection violation.

The recursion splits on a variable ``x`` (``f = x·f₁ ∨ f₀``):

* **A** checks both restrictions: ``(f₀, g₀ ∨ g₁)`` and ``(f₀ ∨ f₁, g₀)``,
  choosing ``x`` of maximal frequency.
* **B** replaces the second call, once the first succeeded, by one
  subproblem per term ``u ∈ g₁``: over ``V − {x} − u``, check duality of
  ``{E ∈ f₀ ∨ f₁ : E ∩ u = ∅}`` against ``min{E' − u : E' ∈ g₀}``.
  This is valid because (given the first call and cross-intersection)
  any failing assignment for ``(f₀ ∨ f₁, g₀)`` must satisfy some term of
  ``g₁`` on its false side; B uses it when every variable's frequency is
  below ``1/χ(v)`` (``v`` the volume ``|F|·|G|``), which makes ``|g₁|``
  small — exactly the case split behind the ``n^{4χ(n)+O(1)}`` bound.
"""

from __future__ import annotations

from itertools import chain

from repro._util import minimize_family, vertex_key
from repro.complexity.bounds import chi
from repro.core import VertexIndex, antichain_minima, iter_bits, mask_sort_key
from repro.hypergraph import Hypergraph
from repro.duality.result import (
    DecisionStats,
    DualityResult,
    FailureKind,
    dual_result,
    not_dual_result,
)

# A failing assignment: ("00" | "11", frozenset of variables set to true).
FailingAssignment = tuple[str, frozenset]

_EMPTY = frozenset()


def _split(edges: frozenset[frozenset], x) -> tuple[frozenset, frozenset, frozenset]:
    """Decompose on ``x``: returns ``(F₀, F₁, min(F₀ ∪ F₁))``.

    ``F₀`` = edges avoiding ``x``; ``F₁`` = edges containing ``x``, with
    ``x`` removed; the third component is the edge family of ``f`` at
    ``x = 1``.
    """
    f0 = frozenset(e for e in edges if x not in e)
    f1 = frozenset(e - {x} for e in edges if x in e)
    return f0, f1, minimize_family(f0 | f1)


def _first_edge(edges: frozenset[frozenset]) -> frozenset:
    """Canonically-first edge (deterministic witness selection)."""
    return min(edges, key=lambda e: (len(e), sorted(map(vertex_key, e))))


def _weight(f: frozenset[frozenset], g: frozenset[frozenset]) -> float:
    """The FK mass ``Σ_F 2^{-|E|} + Σ_G 2^{-|E|}`` (≥ 1 for dual pairs)."""
    return sum(2.0 ** -len(e) for e in f) + sum(2.0 ** -len(e) for e in g)


def _low_weight_assignment(
    f: frozenset[frozenset], g: frozenset[frozenset]
) -> frozenset:
    """A type-00 assignment when the FK mass is < 1 (derandomised).

    Method of conditional expectations: decide variables one at a time,
    keeping the expected number of satisfied ``F``-terms plus satisfied
    mirrored ``G``-terms below 1.  Since the final expectation counts
    actual satisfied terms, none is satisfied.
    """
    f_alive = {e: len(e) for e in f}
    g_alive = {e: len(e) for e in g}
    true_set: set = set()
    variables = sorted({v for e in chain(f, g) for v in e}, key=vertex_key)
    for v in variables:
        weight_true = sum(
            2.0 ** -(c - (1 if v in e else 0)) for e, c in f_alive.items()
        ) + sum(2.0 ** -c for e, c in g_alive.items() if v not in e)
        weight_false = sum(
            2.0 ** -c for e, c in f_alive.items() if v not in e
        ) + sum(2.0 ** -(c - (1 if v in e else 0)) for e, c in g_alive.items())
        if weight_true <= weight_false:
            true_set.add(v)
            f_alive = {
                e: (c - 1 if v in e else c) for e, c in f_alive.items()
            }
            g_alive = {e: c for e, c in g_alive.items() if v not in e}
        else:
            f_alive = {e: c for e, c in f_alive.items() if v not in e}
            g_alive = {
                e: (c - 1 if v in e else c) for e, c in g_alive.items()
            }
    return frozenset(true_set)


def _most_frequent_variable(
    f: frozenset[frozenset], g: frozenset[frozenset]
) -> tuple:
    """The variable of maximal frequency (max of the two sides), with ties
    broken canonically.  Returns ``(variable, frequency)``."""
    counts_f: dict = {}
    counts_g: dict = {}
    for e in f:
        for v in e:
            counts_f[v] = counts_f.get(v, 0) + 1
    for e in g:
        for v in e:
            counts_g[v] = counts_g.get(v, 0) + 1
    best_v = None
    best_freq = -1.0
    for v in sorted(set(counts_f) | set(counts_g), key=vertex_key):
        freq = max(
            counts_f.get(v, 0) / len(f) if f else 0.0,
            counts_g.get(v, 0) / len(g) if g else 0.0,
        )
        if freq > best_freq:
            best_v, best_freq = v, freq
    return best_v, best_freq


def _base_case(
    f: frozenset[frozenset], g: frozenset[frozenset], stats: DecisionStats
) -> tuple[bool, FailingAssignment | None] | None:
    """Resolve constants, cross-intersection, mass, and single-term cases.

    Returns ``None`` when the instance needs recursion, otherwise a pair
    ``(is_dual, failing_assignment_or_None)``.
    """
    universe = frozenset(v for e in chain(f, g) for v in e)

    # Constants.  F simple with ∅ ∈ F means F == {∅}.
    if not f:  # f ≡ false
        stats.base_cases += 1
        if g == frozenset({_EMPTY}):
            return True, None
        if not g:
            return False, ("00", _EMPTY)
        return False, ("00", universe)
    if _EMPTY in f:  # f ≡ true
        stats.base_cases += 1
        if not g:
            return True, None
        return False, ("11", universe - _first_edge(g))
    if not g:  # g ≡ false, f non-constant
        stats.base_cases += 1
        return False, ("00", _EMPTY)
    if _EMPTY in g:  # g ≡ true, f non-constant
        stats.base_cases += 1
        return False, ("11", _first_edge(f))

    # Cross-intersection: every F-edge must meet every G-edge.  The
    # early-exit scan runs in hash order; on failure the witness is
    # re-selected canonically so the certificate is deterministic and
    # identical to the mask path's.
    if any(not e & e2 for e in f for e2 in g):
        stats.base_cases += 1
        offending = min(
            (e2 for e2 in g if any(not e & e2 for e in f)),
            key=lambda e2: (len(e2), sorted(map(vertex_key, e2))),
        )
        return False, ("11", universe - offending)

    # Single-term sides: f = single term t is dual exactly to the
    # singletons of t (given cross-intersection and simplicity).
    if len(f) == 1:
        stats.base_cases += 1
        (term,) = f
        singles = frozenset(frozenset({v}) for v in term)
        if g == singles:
            return True, None
        missing = sorted(
            (v for v in term if frozenset({v}) not in g), key=vertex_key
        )
        # Some singleton must be missing: if g contained all of them,
        # simplicity + cross-intersection would force g == singles.
        return False, ("00", universe - {missing[0]})
    if len(g) == 1:
        resolved = _base_case(g, f, stats)
        if resolved is None:
            return None
        is_dual, failing = resolved
        if failing is None:
            return is_dual, None
        kind, true_set = failing
        return is_dual, (kind, universe - true_set)

    # Fredman–Khachiyan mass: dual pairs satisfy mass ≥ 1.
    if _weight(f, g) < 1.0:
        stats.base_cases += 1
        return False, ("00", _low_weight_assignment(f, g))

    return None


def _decide(
    f: frozenset[frozenset],
    g: frozenset[frozenset],
    stats: DecisionStats,
    depth: int,
    use_b: bool,
) -> FailingAssignment | None:
    """Core recursion shared by A and B; returns a failing assignment or ``None``."""
    stats.nodes += 1
    stats.max_depth = max(stats.max_depth, depth)

    resolved = _base_case(f, g, stats)
    if resolved is not None:
        _is_dual, failing = resolved
        return failing

    x, freq = _most_frequent_variable(f, g)
    f0, _f1, f_at_1 = _split(f, x)
    g0, g1, g_at_1 = _split(g, x)

    # x = 0 branch: f|x=0 = f0 against g|x=1 = min(g0 ∪ g1).
    failing = _decide(f0, g_at_1, stats, depth + 1, use_b)
    if failing is not None:
        return failing

    volume = max(len(f) * len(g), 2)
    if use_b and freq < 1.0 / chi(volume) and g1:
        # B-branch: one subproblem per u ∈ g1 instead of the full
        # (f|x=1, g0) call.  Valid given the x=0 branch succeeded.
        for u in sorted(g1, key=lambda e: (len(e), sorted(map(vertex_key, e)))):
            f_prime = frozenset(e for e in f_at_1 if not e & u)
            g0_u = minimize_family(e2 - u for e2 in g0)
            failing = _decide(f_prime, g0_u, stats, depth + 1, use_b)
            if failing is not None:
                kind, true_set = failing
                return kind, true_set | {x}
        return None

    # x = 1 branch (algorithm A, and B's frequent-variable case):
    failing = _decide(f_at_1, g0, stats, depth + 1, use_b)
    if failing is not None:
        kind, true_set = failing
        return kind, true_set | {x}
    return None


# ---------------------------------------------------------------------------
# Mask-domain recursion (the bitset fast path)
# ---------------------------------------------------------------------------
# Mirrors of the frozenset helpers above with edges as integer masks over
# a shared VertexIndex.  Every free choice — frequent-variable selection,
# tie-breaking, witness selection, variable scan order — is resolved in
# the same canonical order (ascending bit position ⇔ ascending
# vertex_key), so both paths return the identical failing assignment.
# The frozenset originals stay as the reference the equivalence suite
# and the perf harness compare against.

# A mask-domain failing assignment: ("00" | "11", true-variable mask).
_MaskAssignment = tuple[str, int]


def _split_m(
    edges: frozenset[int], xbit: int
) -> tuple[frozenset[int], frozenset[int], frozenset[int]]:
    """Mask twin of :func:`_split`: ``(F₀, F₁, min(F₀ ∪ F₁))``.

    The minimalised component is a frozenset (like the original), so the
    order-free :func:`antichain_minima` suffices — no canonical sort.
    """
    f0 = frozenset(e for e in edges if not e & xbit)
    f1 = frozenset(e & ~xbit for e in edges if e & xbit)
    return f0, f1, frozenset(antichain_minima(f0 | f1))


def _first_edge_m(edges: frozenset[int]) -> int:
    """Canonically-first mask (deterministic witness selection)."""
    return min(edges, key=mask_sort_key)


def _weight_m(f: frozenset[int], g: frozenset[int]) -> float:
    """The FK mass in the mask domain (popcount instead of ``len``)."""
    return sum(2.0 ** -e.bit_count() for e in f) + sum(
        2.0 ** -e.bit_count() for e in g
    )


def _low_weight_assignment_m(f: frozenset[int], g: frozenset[int]) -> int:
    """Mask twin of :func:`_low_weight_assignment` (same scan order)."""
    f_alive = {e: e.bit_count() for e in f}
    g_alive = {e: e.bit_count() for e in g}
    union = 0
    for e in chain(f, g):
        union |= e
    true_mask = 0
    for vbit in iter_bits(union):
        weight_true = sum(
            2.0 ** -(c - (1 if e & vbit else 0)) for e, c in f_alive.items()
        ) + sum(2.0 ** -c for e, c in g_alive.items() if not e & vbit)
        weight_false = sum(
            2.0 ** -c for e, c in f_alive.items() if not e & vbit
        ) + sum(
            2.0 ** -(c - (1 if e & vbit else 0)) for e, c in g_alive.items()
        )
        if weight_true <= weight_false:
            true_mask |= vbit
            f_alive = {
                e: (c - 1 if e & vbit else c) for e, c in f_alive.items()
            }
            g_alive = {e: c for e, c in g_alive.items() if not e & vbit}
        else:
            f_alive = {e: c for e, c in f_alive.items() if not e & vbit}
            g_alive = {
                e: (c - 1 if e & vbit else c) for e, c in g_alive.items()
            }
    return true_mask


def _most_frequent_variable_m(
    f: frozenset[int], g: frozenset[int]
) -> tuple[int, float]:
    """Mask twin of :func:`_most_frequent_variable`; returns ``(bit position,
    frequency)`` with ties broken by ascending position (the canonical
    vertex order), exactly like the frozenset original.  One ``O(Σ|E|)``
    counting pass, matching the reference's cost."""
    counts_f: dict[int, int] = {}
    counts_g: dict[int, int] = {}
    for e in f:
        for bit in iter_bits(e):
            counts_f[bit] = counts_f.get(bit, 0) + 1
    for e in g:
        for bit in iter_bits(e):
            counts_g[bit] = counts_g.get(bit, 0) + 1
    n_f, n_g = len(f), len(g)
    best_bit = 0
    best_freq = -1.0
    # Single-bit masks sort ascending exactly by position.
    for bit in sorted(set(counts_f) | set(counts_g)):
        freq = max(
            counts_f.get(bit, 0) / n_f if n_f else 0.0,
            counts_g.get(bit, 0) / n_g if n_g else 0.0,
        )
        if freq > best_freq:
            best_bit, best_freq = bit, freq
    return best_bit.bit_length() - 1, best_freq


def _base_case_m(
    f: frozenset[int], g: frozenset[int], stats: DecisionStats
) -> tuple[bool, _MaskAssignment | None] | None:
    """Mask twin of :func:`_base_case` (``0`` is the empty edge)."""
    universe = 0
    for e in chain(f, g):
        universe |= e

    if not f:  # f ≡ false
        stats.base_cases += 1
        if g == frozenset({0}):
            return True, None
        if not g:
            return False, ("00", 0)
        return False, ("00", universe)
    if 0 in f:  # f ≡ true
        stats.base_cases += 1
        if not g:
            return True, None
        return False, ("11", universe & ~_first_edge_m(g))
    if not g:  # g ≡ false, f non-constant
        stats.base_cases += 1
        return False, ("00", 0)
    if 0 in g:  # g ≡ true, f non-constant
        stats.base_cases += 1
        return False, ("11", _first_edge_m(f))

    # Cross-intersection, with the same canonical witness re-selection
    # as the frozenset path (set iteration order differs between the
    # two domains; the min() makes the certificate identical).
    if any(not e & e2 for e in f for e2 in g):
        stats.base_cases += 1
        offending = min(
            (e2 for e2 in g if any(not e & e2 for e in f)),
            key=mask_sort_key,
        )
        return False, ("11", universe & ~offending)

    if len(f) == 1:
        stats.base_cases += 1
        (term,) = f
        singles = frozenset(iter_bits(term))
        if g == singles:
            return True, None
        missing_bit = next(b for b in iter_bits(term) if b not in g)
        return False, ("00", universe & ~missing_bit)
    if len(g) == 1:
        resolved = _base_case_m(g, f, stats)
        if resolved is None:
            return None
        is_dual, failing = resolved
        if failing is None:
            return is_dual, None
        kind, true_mask = failing
        return is_dual, (kind, universe & ~true_mask)

    if _weight_m(f, g) < 1.0:
        stats.base_cases += 1
        return False, ("00", _low_weight_assignment_m(f, g))

    return None


def _decide_m(
    f: frozenset[int],
    g: frozenset[int],
    stats: DecisionStats,
    depth: int,
    use_b: bool,
) -> _MaskAssignment | None:
    """Mask twin of :func:`_decide` — the same recursion, ints throughout."""
    stats.nodes += 1
    stats.max_depth = max(stats.max_depth, depth)

    resolved = _base_case_m(f, g, stats)
    if resolved is not None:
        _is_dual, failing = resolved
        return failing

    position, freq = _most_frequent_variable_m(f, g)
    xbit = 1 << position
    f0, _f1, f_at_1 = _split_m(f, xbit)
    g0, g1, g_at_1 = _split_m(g, xbit)

    failing = _decide_m(f0, g_at_1, stats, depth + 1, use_b)
    if failing is not None:
        return failing

    volume = max(len(f) * len(g), 2)
    if use_b and freq < 1.0 / chi(volume) and g1:
        for u in sorted(g1, key=mask_sort_key):
            f_prime = frozenset(e for e in f_at_1 if not e & u)
            g0_u = frozenset(antichain_minima(e2 & ~u for e2 in g0))
            failing = _decide_m(f_prime, g0_u, stats, depth + 1, use_b)
            if failing is not None:
                kind, true_mask = failing
                return kind, true_mask | xbit
        return None

    failing = _decide_m(f_at_1, g0, stats, depth + 1, use_b)
    if failing is not None:
        kind, true_mask = failing
        return kind, true_mask | xbit
    return None


def _assignment_to_result(
    method: str,
    g: Hypergraph,
    h: Hypergraph,
    failing: FailingAssignment,
    stats: DecisionStats,
) -> DualityResult:
    """Translate a failing assignment into the standard certificates."""
    universe = g.vertices | h.vertices
    kind, true_set = failing
    false_set = frozenset(universe - true_set)
    if kind == "00":
        # false_set meets every G-edge and covers no H-edge.
        return not_dual_result(
            method,
            FailureKind.MISSING_TRANSVERSAL,
            witness=false_set,
            detail="failing assignment with f(σ) = g(¬σ) = 0",
            stats=stats,
        )
    offending = next(e for e in h.edges if e <= false_set)
    return not_dual_result(
        method,
        FailureKind.EXTRA_EDGE,
        witness=offending,
        detail="failing assignment with f(σ) = g(¬σ) = 1",
        stats=stats,
    )


def _decide_fk(
    g: Hypergraph, h: Hypergraph, use_b: bool, use_bitset: bool = True
) -> DualityResult:
    method = "fredman-khachiyan-B" if use_b else "fredman-khachiyan-A"
    g.require_simple("G")
    h.require_simple("H")
    stats = DecisionStats()
    if use_bitset:
        index = VertexIndex(g.vertices | h.vertices)
        failing_m = _decide_m(
            frozenset(index.encode(e) for e in g.edges),
            frozenset(index.encode(e) for e in h.edges),
            stats,
            depth=0,
            use_b=use_b,
        )
        failing = (
            None
            if failing_m is None
            else (failing_m[0], index.decode(failing_m[1]))
        )
    else:
        failing = _decide(
            frozenset(g.edges), frozenset(h.edges), stats, depth=0, use_b=use_b
        )
    if failing is None:
        return dual_result(method, stats)
    return _assignment_to_result(method, g, h, failing, stats)


def decide_fk_a(
    g: Hypergraph, h: Hypergraph, use_bitset: bool = True
) -> DualityResult:
    """Fredman–Khachiyan algorithm A: binary recursion on a frequent variable.

    Decides ``H = tr(G)`` for simple hypergraphs over a shared universe
    in ``n^{O(log² n)}``-ish time (A's bound is ``n^{O(log n)}`` with the
    original frequency analysis); certificates as in
    :mod:`repro.duality.result`.  ``use_bitset=False`` selects the
    frozenset reference recursion (identical verdicts and certificates).
    """
    return _decide_fk(g, h, use_b=False, use_bitset=use_bitset)


def decide_fk_b(
    g: Hypergraph, h: Hypergraph, use_bitset: bool = True
) -> DualityResult:
    """Fredman–Khachiyan algorithm B: the ``n^{4χ(n)+O(1)}`` refinement.

    Falls back on A's branching when a frequent variable exists and uses
    the per-``g₁``-term decomposition otherwise.  ``use_bitset=False``
    selects the frozenset reference recursion.
    """
    return _decide_fk(g, h, use_b=True, use_bitset=use_bitset)
