"""Tie-breaking policies for the Boros–Makino decomposition (ablation).

Section 2 notes that ``T(G, H)`` "is actually not uniquely defined"
because of free choices, and suggests one deterministic resolution
(smallest ``i``, lexicographically first edge) — the library's default.
Correctness (Prop. 2.1) holds for *any* resolution; what the choice
affects is the tree's **size** and witness selection.  This module makes
the choices first-class so experiment E13 can measure that effect:

* ``marksmall`` case 4: which ``i ∈ H`` with ``{i} ∉ G^{S_α}`` to drop;
* ``process`` step 3: which ``G ∈ G^{S_α}`` with ``G ∩ I_α = ∅``;
* ``process`` step 4: which ``H ∈ H_{S_α}`` with ``H ⊆ I_α``.

Policies are deterministic functions of the candidate list, so every
policy still yields a reproducible tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro._util import sort_key, vertex_key


@dataclass(frozen=True)
class TieBreakPolicy:
    """A deterministic resolution of the decomposition's free choices.

    Each chooser receives a non-empty list of candidates and must return
    one of them.  ``vertex_choice`` picks the ``marksmall`` case-4
    vertex; ``edge_choice`` picks the step-3 ``G``-edge and the step-4
    ``H``-edge.
    """

    name: str
    vertex_choice: Callable[[list], object]
    edge_choice: Callable[[list[frozenset]], frozenset]


def _first_vertex(candidates: list) -> object:
    return min(candidates, key=vertex_key)


def _last_vertex(candidates: list) -> object:
    return max(candidates, key=vertex_key)


def _first_edge(candidates: list[frozenset]) -> frozenset:
    return min(candidates, key=sort_key)


def _last_edge(candidates: list[frozenset]) -> frozenset:
    return max(candidates, key=sort_key)


def _smallest_edge(candidates: list[frozenset]) -> frozenset:
    return min(candidates, key=lambda e: (len(e),) + sort_key(e))


def _largest_edge(candidates: list[frozenset]) -> frozenset:
    return min(candidates, key=lambda e: (-len(e),) + sort_key(e))


PAPER_POLICY = TieBreakPolicy(
    name="paper",
    vertex_choice=_first_vertex,
    edge_choice=_first_edge,
)

REVERSE_POLICY = TieBreakPolicy(
    name="reverse",
    vertex_choice=_last_vertex,
    edge_choice=_last_edge,
)

SMALL_EDGE_POLICY = TieBreakPolicy(
    name="small-edge",
    vertex_choice=_first_vertex,
    edge_choice=_smallest_edge,
)

LARGE_EDGE_POLICY = TieBreakPolicy(
    name="large-edge",
    vertex_choice=_first_vertex,
    edge_choice=_largest_edge,
)

ALL_POLICIES: tuple[TieBreakPolicy, ...] = (
    PAPER_POLICY,
    REVERSE_POLICY,
    SMALL_EDGE_POLICY,
    LARGE_EDGE_POLICY,
)


def policy_by_name(name: str) -> TieBreakPolicy:
    """Look up a policy by its name."""
    for policy in ALL_POLICIES:
        if policy.name == name:
            return policy
    raise ValueError(
        f"unknown policy {name!r}; available: {[p.name for p in ALL_POLICIES]}"
    )
