"""The Boros–Makino decomposition method (paper, Section 2).

This module is a line-by-line transcription of the two procedures the
paper gives — ``marksmall`` (for leaves with ``|H_{S_α}| ≤ 1``) and
``process`` (the majority-vertex expansion step) — together with the
tree builder that applies them exhaustively, and a decider wrapper.

Determinism.  The paper notes the tree is not unique because of free
choices, and suggests fixing them; we follow its suggestions exactly:

* ``marksmall`` case 4 picks the **smallest** ``i ∈ H`` with
  ``{i} ∉ G^{S_α}`` (smallest in the library's canonical vertex order);
* ``process`` step 3 picks the **lexicographically first** edge
  ``G ∈ G^{S_α}`` with ``G ∩ I_α = ∅``, and step 4 the first
  ``H ∈ H_{S_α}`` with ``H ⊆ I_α`` (canonical edge order);
* children are ordered by the canonical order of their scopes, indexed
  from 1 — this fixes the labels used by Section 4's path descriptors.

Entry conditions.  The procedures are only correct for instances with
``G ⊆ tr(H)`` and ``H ⊆ tr(G)`` ("It is assumed that … Clearly this can
be tested in logarithmic space"); :func:`decide_boros_makino` runs
:func:`repro.duality.conditions.prepare_instance` first and converts a
violation into an immediate NOT_DUAL verdict.  The paper also assumes
``|H| ≤ |G|``; the decider swaps the sides when necessary (duality is
symmetric) and records the swap.
"""

from __future__ import annotations

from repro._util import sort_key, vertex_key
from repro.core import iter_bits
from repro.hypergraph import Hypergraph
from repro.hypergraph.operations import restriction_instance
from repro.hypergraph.transversal import is_new_transversal
from repro.duality.conditions import prepare_instance
from repro.duality.policies import PAPER_POLICY, TieBreakPolicy
from repro.duality.result import (
    DecisionStats,
    DualityResult,
    FailureKind,
    dual_result,
    not_dual_result,
)
from repro.duality.tree import (
    DecompositionTree,
    Mark,
    NodeAttributes,
    TreeNode,
)


def majority_vertices(h_restricted: Hypergraph) -> frozenset:
    """``I_α``: vertices occurring in more than ``|H_{S_α}|/2`` edges (step 1).

    One pass over the bitset view (shared with the step-2 check),
    counting per-bit occurrences — ``O(Σ|E|)`` like the ``degrees()``
    scan, but with int keys instead of vertex hashing.
    """
    threshold = len(h_restricted) / 2.0
    family = h_restricted.bits()
    counts: dict[int, int] = {}
    for mask in family.masks:
        for bit in iter_bits(mask):
            counts[bit] = counts.get(bit, 0) + 1
    majority = 0
    for bit, count in counts.items():
        if count > threshold:
            majority |= bit
    return family.index.decode(majority)


def marksmall(
    attrs: NodeAttributes,
    g: Hypergraph,
    h: Hypergraph,
    policy: TieBreakPolicy = PAPER_POLICY,
) -> NodeAttributes:
    """The paper's ``marksmall`` procedure, for nodes with ``|H_{S_α}| ≤ 1``.

    Returns the node with its final ``done``/``fail`` marking and
    witness set ``t(α)``.  ``policy`` resolves the case-4 free choice
    (the paper's default: smallest ``i``).
    """
    g_s, h_s = attrs.instance(g, h)
    if len(h_s) > 1:
        raise ValueError("marksmall requires |H_S| <= 1")
    g_family = g_s.bits()
    empty_in_g = 0 in g_family

    if len(h_s) == 0 and not empty_in_g:
        # case 1: nothing left of H, yet S_α still traverses G.
        return NodeAttributes(attrs.label, attrs.scope, Mark.FAIL, attrs.scope)
    if len(h_s) == 0 and empty_in_g:
        # case 2: some G-edge misses S_α entirely — branch is consistent.
        return NodeAttributes(attrs.label, attrs.scope, Mark.DONE, frozenset())

    (h_edge,) = h_s.edges
    if all(g_family.index.bit(i) in g_family for i in h_edge):
        # case 3: the lone H-edge is forced vertex-by-vertex.
        return NodeAttributes(attrs.label, attrs.scope, Mark.DONE, frozenset())

    # case 4: drop an i ∈ H whose singleton is not in G^{S_α}
    # (paper default: the smallest such i).
    candidates = sorted(
        (i for i in h_edge if g_family.index.bit(i) not in g_family),
        key=vertex_key,
    )
    chosen = policy.vertex_choice(candidates)
    return NodeAttributes(
        attrs.label, attrs.scope, Mark.FAIL, attrs.scope - {chosen}
    )


def process_children(
    attrs: NodeAttributes,
    g: Hypergraph,
    h: Hypergraph,
    policy: TieBreakPolicy = PAPER_POLICY,
) -> NodeAttributes | list[frozenset]:
    """The paper's ``process`` procedure, for nodes with ``|H_{S_α}| ≥ 2``.

    Either the node turns out to be a ``fail`` leaf (step 2 — the
    majority set is a new transversal), in which case the marked
    :class:`NodeAttributes` is returned, or the list of child **scopes**
    ``C = {C₁, …, C_κ}`` is returned in canonical order.
    """
    g_s, h_s = attrs.instance(g, h)
    if len(h_s) < 2:
        raise ValueError("process requires |H_S| >= 2")
    scope = attrs.scope

    # Step 1: the majority vertex set.
    i_alpha = majority_vertices(h_s)

    # Step 2: is I_α a new transversal of G^{S_α} w.r.t. H_{S_α}?
    if is_new_transversal(i_alpha, g_s, h_s):
        return NodeAttributes(attrs.label, scope, Mark.FAIL, i_alpha)

    # Step 3: some G-edge disjoint from I_α (I_α not a transversal).
    g_family = g_s.bits()
    i_alpha_mask = g_family.index.encode_within(i_alpha)
    missed = [
        e
        for e, m in zip(g_s.edges, g_family.masks)
        if not m & i_alpha_mask
    ]
    if missed:
        g_edge = policy.edge_choice(missed)
        avoid_mask = g_family.index.encode(scope - g_edge)
        survivors = [
            e
            for e, m in zip(g_s.edges, g_family.masks)
            if m & avoid_mask != m
        ]
        scopes = {
            scope - (e - {i}) for e in survivors for i in (e & g_edge)
        }
        return sorted(scopes, key=sort_key)

    # Step 4: some H-edge inside I_α (I_α covers an H-edge).
    h_family = h_s.bits()
    covered_mask = h_family.index.encode_within(i_alpha)
    covered = [
        e
        for e, m in zip(h_s.edges, h_family.masks)
        if m & covered_mask == m
    ]
    h_edge = policy.edge_choice(covered)
    scopes = {scope - {i} for i in h_edge} | {h_edge}
    return sorted(scopes, key=sort_key)


def expand(
    attrs: NodeAttributes,
    g: Hypergraph,
    h: Hypergraph,
    policy: TieBreakPolicy = PAPER_POLICY,
) -> NodeAttributes | list[NodeAttributes]:
    """One decomposition step at a node: mark it, or produce its children.

    This is the building block the logspace ``next`` procedure of
    Section 4 wraps: everything it does is edge-counting, set
    intersection and comparisons — logspace operations.
    """
    _g_s, h_s = attrs.instance(g, h)
    if len(h_s) <= 1:
        return marksmall(attrs, g, h, policy)
    outcome = process_children(attrs, g, h, policy)
    if isinstance(outcome, NodeAttributes):
        return outcome
    return [
        NodeAttributes(attrs.child_label(i), child_scope, Mark.NIL, frozenset())
        for i, child_scope in enumerate(outcome, start=1)
    ]


def build_tree(
    g: Hypergraph,
    h: Hypergraph,
    policy: TieBreakPolicy = PAPER_POLICY,
) -> DecompositionTree:
    """Materialise the full decomposition tree ``T(G, H)``.

    ``g`` and ``h`` must already satisfy the entry conditions
    (``G ⊆ tr(H)``, ``H ⊆ tr(G)``, shared universe); use
    :func:`decide_boros_makino` for arbitrary simple inputs.  ``policy``
    resolves the free choices — any policy is correct (Prop. 2.1); only
    tree size and witness identity vary (experiment E13).
    """
    universe = frozenset(g.vertices | h.vertices)
    root_attrs = NodeAttributes((), universe, Mark.NIL, frozenset())
    root = TreeNode(root_attrs)
    frontier = [root]
    while frontier:
        node = frontier.pop()
        outcome = expand(node.attrs, g, h, policy)
        if isinstance(outcome, NodeAttributes):
            node.attrs = outcome
            continue
        node.children = [TreeNode(child) for child in outcome]
        frontier.extend(node.children)
    return DecompositionTree(g=g, h=h, root=root)


def decide_boros_makino(
    g: Hypergraph,
    h: Hypergraph,
    enforce_size_order: bool = True,
    policy: TieBreakPolicy = PAPER_POLICY,
) -> DualityResult:
    """Decide duality via the full Boros–Makino decomposition tree.

    Pipeline: entry check (``prepare_instance``) → optional side swap to
    restore the paper's ``|H| ≤ |G|`` assumption → build ``T(G, H)`` →
    all leaves ``done`` ⟺ dual (Proposition 2.1(1)).

    On failure, the first ``fail`` leaf (in canonical label order)
    provides the witness ``t(α)`` — a new transversal of the tree's
    ``G``-side w.r.t. its ``H``-side; ``stats.extra["swapped"]`` records
    whether the sides were exchanged (the witness direction flips with
    it).  The fail leaf's label is reported as the certificate path.
    """
    method = "boros-makino"
    entry = prepare_instance(g, h)
    if not entry.ok:
        return not_dual_result(
            method, entry.failure, witness=entry.witness, detail=entry.detail
        )
    g_v, h_v = entry.g, entry.h

    swapped = enforce_size_order and len(h_v) > len(g_v)
    if swapped:
        g_v, h_v = h_v, g_v

    tree = build_tree(g_v, h_v, policy)
    stats = DecisionStats(
        nodes=tree.node_count(),
        max_depth=tree.depth(),
        max_children=tree.max_branching(),
        base_cases=sum(1 for _ in tree.leaves()),
    )
    stats.extra["swapped"] = swapped

    fails = tree.fail_leaves()
    if not fails:
        return dual_result(method, stats)
    first_fail = min(fails, key=lambda n: n.attrs.label)
    direction = "H wrt G" if swapped else "G wrt H"
    return not_dual_result(
        method,
        FailureKind.MISSING_TRANSVERSAL,
        witness=first_fail.attrs.witness,
        detail=f"fail leaf {first_fail.attrs.label}: new transversal of {direction}",
        path=first_fail.attrs.label,
        stats=stats,
    )


def tree_for(
    g: Hypergraph,
    h: Hypergraph,
    policy: TieBreakPolicy = PAPER_POLICY,
) -> DecompositionTree:
    """Entry-checked tree construction (raises on invalid instances).

    Convenience for experiments that need the tree itself (depth and
    branching measurements); requires the instance to satisfy the entry
    conditions, i.e. to be a "genuine" ``H ⊆ tr(G)`` decomposition input.
    """
    entry = prepare_instance(g, h)
    if not entry.ok:
        raise ValueError(
            f"instance violates the decomposition entry conditions: {entry.detail}"
        )
    return build_tree(entry.g, entry.h, policy)
