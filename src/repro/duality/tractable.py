"""Tractable special cases of ``Dual`` (the paper's Section 6 landscape).

The paper's concluding discussion recalls that ``Dual`` is polynomial
for several structural classes and asks for more.  This module builds
the classical tractable deciders as first-class engines:

* **graphs** (``rank(G) ≤ 2``): minimal transversals of a graph are its
  minimal vertex covers — complements of maximal independent sets — so
  duality testing reduces to MIS enumeration with an early stop after
  ``|H| + 1`` sets (polynomial per set via Bron–Kerbosch with
  pivoting);
* **complete uniform (threshold) hypergraphs**: ``tr`` of "all
  k-subsets of W" is "all (|W| − k + 1)-subsets of W" in closed form,
  so duality testing is counting plus one scan for a missing subset;
* **α-acyclic hypergraphs**: tractable by Eiter–Gottlob (ref [9]); the
  decider validates acyclicity with the GYO reduction and runs Berge
  multiplication in a GYO-guided edge order, which keeps intermediate
  families small on acyclic inputs (the E18 experiment measures this —
  the implementation is exact on *all* inputs, the ordering is the
  acyclicity-aware part).

:func:`decide_duality_tractable` dispatches: constants → entry check,
rank ≤ 2 → graph, complete-uniform → threshold, α-acyclic → acyclic,
anything else → the general Boros–Makino engine.  It is registered as
the ``"tractable"`` method of :func:`repro.duality.engine.decide_duality`.
"""

from __future__ import annotations

from collections.abc import Iterator
from itertools import combinations
from math import comb

from repro._util import sort_key, vertex_key
from repro.core import (
    VertexIndex,
    antichain_minima,
    is_submask,
    iter_bits,
    iter_positions,
    mask_sort_key,
    popcount,
)
from repro.errors import InvalidInstanceError
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.structure import gyo_reduction, is_alpha_acyclic
from repro.hypergraph.transversal import transversal_hypergraph
from repro.duality.conditions import prepare_instance
from repro.duality.result import (
    DecisionStats,
    DualityResult,
    FailureKind,
    dual_result,
    not_dual_result,
)


# ----------------------------------------------------------------------
# Maximal-independent-set enumeration (the graph case's workhorse)
# ----------------------------------------------------------------------


def maximal_independent_sets_iter(
    vertices: frozenset, pair_edges: tuple[frozenset, ...]
) -> Iterator[frozenset]:
    """Yield the maximal independent sets of a graph, one at a time.

    Bron–Kerbosch with pivoting on the *complement* adjacency (maximal
    cliques of the complement are exactly the MIS).  Deterministic
    order; the early-stopping deciders consume only as many sets as
    they need.
    """
    verts = sorted(vertices, key=vertex_key)
    adjacency: dict = {v: set() for v in verts}
    for edge in pair_edges:
        u, v = tuple(edge)
        adjacency[u].add(v)
        adjacency[v].add(u)
    non_adjacent = {
        v: (set(verts) - adjacency[v] - {v}) for v in verts
    }

    def expand(r: set, p: set, x: set) -> Iterator[frozenset]:
        if not p and not x:
            yield frozenset(r)
            return
        pivot = max(p | x, key=lambda u: (len(non_adjacent[u] & p), vertex_key(u)))
        candidates = sorted(p - non_adjacent[pivot], key=vertex_key)
        for v in candidates:
            yield from expand(
                r | {v}, p & non_adjacent[v], x & non_adjacent[v]
            )
            p = p - {v}
            x = x | {v}

    yield from expand(set(), set(verts), set())


def minimal_vertex_covers_iter(
    vertices: frozenset, pair_edges: tuple[frozenset, ...]
) -> Iterator[frozenset]:
    """Minimal vertex covers = complements of maximal independent sets."""
    universe = set(vertices)
    for mis in maximal_independent_sets_iter(vertices, pair_edges):
        yield frozenset(universe - mis)


def maximal_independent_set_masks(
    covered_mask: int, pair_masks: tuple[int, ...]
) -> Iterator[int]:
    """The mask-domain twin of :func:`maximal_independent_sets_iter`.

    Identical Bron–Kerbosch recursion, identical pivot rule (max by
    ``(|non-adjacent ∩ P|, vertex order)``; ascending bit position *is*
    ascending ``vertex_key`` by the :class:`~repro.core.VertexIndex`
    invariant), identical candidate order — so the yielded masks decode
    to the reference's sets in the reference's order.
    """
    adjacency: dict[int, int] = {
        pos: 0 for pos in iter_positions(covered_mask)
    }
    for pair in pair_masks:
        u, v = iter_positions(pair)
        adjacency[u] |= 1 << v
        adjacency[v] |= 1 << u
    non_adjacent = {
        pos: covered_mask & ~adjacency[pos] & ~(1 << pos)
        for pos in adjacency
    }

    def expand(r: int, p: int, x: int) -> Iterator[int]:
        if not p and not x:
            yield r
            return
        best = None
        best_key = None
        for pos in iter_positions(p | x):
            key = (popcount(non_adjacent[pos] & p), pos)
            if best_key is None or key > best_key:
                best_key, best = key, pos
        candidates = p & ~non_adjacent[best]
        for bit in iter_bits(candidates):
            non_adj = non_adjacent[bit.bit_length() - 1]
            yield from expand(r | bit, p & non_adj, x & non_adj)
            p &= ~bit
            x |= bit

    yield from expand(0, covered_mask, 0)


# ----------------------------------------------------------------------
# Rank ≤ 2: the graph decider
# ----------------------------------------------------------------------


def graph_reduction(
    g: Hypergraph,
) -> tuple[frozenset, tuple[frozenset, ...], frozenset]:
    """Split a rank-≤2 hypergraph into (forced vertices, pair edges, V'').

    Singleton edges force their vertex into every transversal; the
    remaining size-2 edges form a graph (simplicity guarantees the two
    parts are vertex-disjoint).  ``V''`` is the vertex set of the graph
    part.
    """
    if g.rank() > 2:
        raise InvalidInstanceError(
            f"graph decider needs rank ≤ 2, got rank {g.rank()}"
        )
    forced = frozenset(next(iter(e)) for e in g.edges if len(e) == 1)
    pairs = tuple(e for e in g.edges if len(e) == 2)
    covered: set = set()
    for e in pairs:
        covered |= e
    return forced, pairs, frozenset(covered)


def decide_duality_graph(
    g: Hypergraph, h: Hypergraph, use_bitset: bool = True
) -> DualityResult:
    """Polynomial duality testing when ``rank(G) ≤ 2``.

    After the entry check (which already certifies ``H ⊆ tr(G)``), every
    edge of ``H`` corresponds to a distinct maximal independent set of
    the graph part; duality holds iff the MIS enumeration produces no
    transversal outside ``H``.  The first such transversal — necessarily
    a *missing minimal transversal* — is the witness.  Work per MIS is
    polynomial, and at most ``|H| + 1`` sets are ever generated.

    ``use_bitset=True`` (default) runs the Bron–Kerbosch enumeration
    and the membership scan in the mask domain over one shared index;
    ``use_bitset=False`` is the ``frozenset`` reference.  Both paths
    are bit-for-bit identical.
    """
    method = "graph"
    entry = prepare_instance(g, h)
    if not entry.ok:
        return not_dual_result(
            method, entry.failure, witness=entry.witness, detail=entry.detail
        )
    g_v, h_v = entry.g, entry.h
    forced, pairs, covered = graph_reduction(g_v)
    stats = DecisionStats()
    if use_bitset:
        index = g_v.bits().index
        claimed_masks = frozenset(index.encode(e) for e in h_v.edges)
        forced_mask = index.encode(forced)
        covered_mask = index.encode(covered)
        pair_masks = tuple(index.encode(e) for e in pairs)
        covers = (
            forced_mask | (covered_mask & ~mis)
            for mis in maximal_independent_set_masks(covered_mask, pair_masks)
        )
        claimed_size = len(claimed_masks)
        missing = lambda t: t not in claimed_masks  # noqa: E731
        decode = index.decode
    else:
        claimed = set(h_v.edges)
        covers = (
            frozenset(forced | cover)
            for cover in minimal_vertex_covers_iter(covered, pairs)
        )
        claimed_size = len(claimed)
        missing = lambda t: t not in claimed  # noqa: E731
        decode = lambda t: t  # noqa: E731
    seen = 0
    for transversal in covers:
        seen += 1
        stats.nodes = seen
        if missing(transversal):
            return not_dual_result(
                method,
                FailureKind.MISSING_TRANSVERSAL,
                witness=decode(transversal),
                detail=(
                    "minimal vertex cover yields a minimal transversal "
                    "missing from H"
                ),
                stats=stats,
            )
        if seen > claimed_size:
            break
    if seen != claimed_size:
        # Unreachable given the entry check (H ⊆ tr(G) makes every
        # claimed edge one of the enumerated covers), kept as a guard.
        raise AssertionError("MIS count disagrees with |H| after entry check")
    return dual_result(method, stats=stats)


# ----------------------------------------------------------------------
# Complete k-uniform (threshold) hypergraphs
# ----------------------------------------------------------------------


def complete_uniform_arity(g: Hypergraph) -> int | None:
    """``k`` when ``g`` is exactly all ``k``-subsets of its covered
    vertices, else ``None``."""
    if not g.edges:
        return None
    sizes = set(g.edge_sizes())
    if len(sizes) != 1:
        return None
    k = sizes.pop()
    if k == 0:
        return None
    covered: set = set()
    for e in g.edges:
        covered |= e
    if len(g) != comb(len(covered), k):
        return None
    return k


def decide_duality_threshold(
    g: Hypergraph, h: Hypergraph, use_bitset: bool = True
) -> DualityResult:
    """Closed-form duality testing for complete k-uniform ``G``.

    ``tr`` of all ``k``-subsets of ``W`` is all ``(|W| − k + 1)``-subsets
    of ``W``, so the decider validates ``H``'s *shape* directly instead
    of running the quadratic cross-minimality entry check (whose
    ``|G|·|H|`` cost is exactly what the closed form avoids):

    * an ``H``-edge that is not a ``(|W| − k + 1)``-subset of ``W`` is
      provably not a minimal transversal — an ``EXTRA_EDGE`` witness;
    * otherwise only the count can be wrong, and a combinations scan
      with early exit locates a missing subset — a new (indeed missing
      minimal) transversal witness.
    """
    method = "threshold"
    g.require_simple("G")
    h.require_simple("H")
    from repro.duality.conditions import check_degenerate

    degenerate = check_degenerate(g, h)
    if degenerate is True:
        return dual_result(method)
    if degenerate is False:
        return not_dual_result(
            method,
            FailureKind.CONSTANT_MISMATCH,
            detail="constant hypergraph paired with a non-matching partner",
        )
    k = complete_uniform_arity(g)
    if k is None:
        raise InvalidInstanceError(
            "threshold decider needs a complete k-uniform hypergraph"
        )
    covered: set = set()
    for e in g.edges:
        covered |= e
    n = len(covered)
    dual_size = n - k + 1
    stats = DecisionStats(extra={"n": n, "k": k, "dual_size": dual_size})
    if use_bitset:
        # One shared index for both sides: the shape scan is a popcount
        # plus a submask test per H-edge, the missing-subset scan ORs
        # bit triples instead of building frozensets.
        index = VertexIndex(g.vertices | h.vertices)
        covered_mask = index.encode(covered)
        h_masks = tuple(index.encode(e) for e in h.edges)
        for edge, mask in zip(h.edges, h_masks):
            if popcount(mask) != dual_size or not is_submask(mask, covered_mask):
                return not_dual_result(
                    method,
                    FailureKind.EXTRA_EDGE,
                    witness=edge,
                    detail=(
                        f"H-edge is not a {dual_size}-subset of the covered "
                        "vertices, hence not a minimal transversal"
                    ),
                    stats=stats,
                )
        expected = comb(n, dual_size)
        if len(h) == expected:
            return dual_result(method, stats=stats)
        claimed_masks = frozenset(h_masks)
        bits = [1 << pos for pos in iter_positions(covered_mask)]
        for subset in combinations(bits, dual_size):
            candidate = 0
            for bit in subset:
                candidate |= bit
            if candidate not in claimed_masks:
                return not_dual_result(
                    method,
                    FailureKind.MISSING_TRANSVERSAL,
                    witness=index.decode(candidate),
                    detail=(
                        f"missing {dual_size}-subset of the {n} covered vertices"
                    ),
                    stats=stats,
                )
        raise AssertionError("count mismatch but no missing subset found")
    for edge in h.edges:
        if len(edge) != dual_size or not edge <= covered:
            return not_dual_result(
                method,
                FailureKind.EXTRA_EDGE,
                witness=edge,
                detail=(
                    f"H-edge is not a {dual_size}-subset of the covered "
                    "vertices, hence not a minimal transversal"
                ),
                stats=stats,
            )
    expected = comb(n, dual_size)
    if len(h) == expected:
        return dual_result(method, stats=stats)
    claimed = set(h.edges)
    for subset in combinations(sorted(covered, key=vertex_key), dual_size):
        candidate = frozenset(subset)
        if candidate not in claimed:
            return not_dual_result(
                method,
                FailureKind.MISSING_TRANSVERSAL,
                witness=candidate,
                detail=f"missing {dual_size}-subset of the {n} covered vertices",
                stats=stats,
            )
    raise AssertionError("count mismatch but no missing subset found")


# ----------------------------------------------------------------------
# α-acyclic hypergraphs
# ----------------------------------------------------------------------


def gyo_edge_order(g: Hypergraph) -> list[frozenset]:
    """An edge order from the GYO reduction (ears last, reversed to front).

    Re-runs the reduction recording the order in which edges become
    removable; Berge multiplication in *reverse* removal order keeps the
    processed prefix connected on acyclic inputs, which is what keeps
    intermediate transversal families small.
    """
    edges = [set(e) for e in g.edges]
    original = list(g.edges)
    alive = set(range(len(edges)))
    removal: list[int] = []
    changed = True
    while changed and alive:
        changed = False
        occurrence: dict = {}
        for idx in alive:
            for v in edges[idx]:
                occurrence.setdefault(v, []).append(idx)
        for v, holders in occurrence.items():
            if len(holders) == 1:
                edges[holders[0]].discard(v)
                changed = True
        for idx in sorted(alive):
            if any(
                jdx in alive
                and jdx != idx
                and (edges[idx] < edges[jdx]
                     or (edges[idx] == edges[jdx] and idx > jdx))
                for jdx in alive
            ) or not edges[idx]:
                removal.append(idx)
                alive.discard(idx)
                changed = True
    # Any residue (cyclic core) goes first, then ears outward-in.
    ordered = sorted(alive) + list(reversed(removal))
    return [original[idx] for idx in ordered]


def decide_duality_acyclic(
    g: Hypergraph, h: Hypergraph, use_bitset: bool = True
) -> DualityResult:
    """Duality testing for α-acyclic ``G`` (tractable per ref [9]).

    Validates acyclicity via the GYO reduction, computes ``tr(G)`` by
    Berge multiplication in the GYO-guided order, and compares.  Exact
    regardless of input; the ordering is what keeps the intermediate
    families polynomial on acyclic instances (measured by E18).

    ``use_bitset=True`` (default) runs the Berge steps and the final
    comparison in the mask domain (one ``&`` per containment test);
    ``use_bitset=False`` keeps the ``frozenset`` reference.  Both paths
    are bit-for-bit identical, counters included.
    """
    method = "acyclic"
    entry = prepare_instance(g, h)
    if not entry.ok:
        return not_dual_result(
            method, entry.failure, witness=entry.witness, detail=entry.detail
        )
    g_v, h_v = entry.g, entry.h
    if not is_alpha_acyclic(g_v):
        raise InvalidInstanceError(
            "acyclic decider needs an α-acyclic G "
            f"(GYO residue: {gyo_reduction(g_v)!r})"
        )
    stats = DecisionStats()
    if use_bitset:
        index = g_v.bits().index
        peak = 1
        current_masks: list[int] = [0]
        for edge in gyo_edge_order(g_v):
            edge_mask = index.encode(edge)
            expanded_masks: set[int] = set()
            for partial in current_masks:
                if partial & edge_mask:
                    expanded_masks.add(partial)
                else:
                    for bit in iter_bits(edge_mask):
                        expanded_masks.add(partial | bit)
            current_masks = antichain_minima(expanded_masks)
            peak = max(peak, len(current_masks))
            stats.nodes += len(current_masks)
        stats.extra["peak_intermediate"] = peak
        exact_masks = set(current_masks)
        claimed_masks = {index.encode(e) for e in h_v.edges}
        if exact_masks == claimed_masks:
            return dual_result(method, stats=stats)
        missing_masks = sorted(exact_masks - claimed_masks, key=mask_sort_key)
        if missing_masks:
            return not_dual_result(
                method,
                FailureKind.MISSING_TRANSVERSAL,
                witness=index.decode(missing_masks[0]),
                detail="minimal transversal of G missing from H",
                stats=stats,
            )
        extra = sorted(claimed_masks - exact_masks, key=mask_sort_key)
        return not_dual_result(
            method,
            FailureKind.EXTRA_EDGE,
            witness=index.decode(extra[0]),
            detail="edge of H is not a minimal transversal of G",
            stats=stats,
        )
    from repro._util import minimize_family

    current: frozenset[frozenset] = frozenset((frozenset(),))
    peak = 1
    for edge in gyo_edge_order(g_v):
        expanded: set[frozenset] = set()
        for partial in current:
            if partial & edge:
                expanded.add(partial)
            else:
                for v in edge:
                    expanded.add(partial | {v})
        current = minimize_family(expanded)
        peak = max(peak, len(current))
        stats.nodes += len(current)
    stats.extra["peak_intermediate"] = peak
    exact = set(current)
    claimed = set(h_v.edges)
    if exact == claimed:
        return dual_result(method, stats=stats)
    missing = sorted(exact - claimed, key=sort_key)
    if missing:
        return not_dual_result(
            method,
            FailureKind.MISSING_TRANSVERSAL,
            witness=missing[0],
            detail="minimal transversal of G missing from H",
            stats=stats,
        )
    extra = sorted(claimed - exact, key=sort_key)
    return not_dual_result(
        method,
        FailureKind.EXTRA_EDGE,
        witness=extra[0],
        detail="edge of H is not a minimal transversal of G",
        stats=stats,
    )


# ----------------------------------------------------------------------
# The dispatcher
# ----------------------------------------------------------------------


def classify_instance(g: Hypergraph, h: Hypergraph) -> str:
    """Which specialised decider applies to ``(G, H)``?

    One of ``"constant"``, ``"graph"``, ``"threshold"``, ``"acyclic"``
    or ``"general"``.  Classification looks at ``G`` only (the side
    being dualized), mirroring the structural classes of Section 6.
    """
    if (
        g.is_trivial_false()
        or g.is_trivial_true()
        or h.is_trivial_false()
        or h.is_trivial_true()
    ):
        return "constant"
    if g.rank() <= 2:
        return "graph"
    if complete_uniform_arity(g) is not None:
        return "threshold"
    if is_alpha_acyclic(g):
        return "acyclic"
    return "general"


def decide_duality_tractable(
    g: Hypergraph, h: Hypergraph, use_bitset: bool = True
) -> DualityResult:
    """Dispatch to the matching tractable decider, or fall back to BM.

    The returned result's ``stats.extra["class"]`` records the detected
    structural class, so experiments can report which fast path fired.
    ``use_bitset=False`` routes the specialised deciders through their
    ``frozenset`` reference paths (the general BM fallback always runs
    its own mask kernels); verdicts and certificates are identical
    either way.
    """
    tag = classify_instance(g, h)
    if tag == "graph":
        result = decide_duality_graph(g, h, use_bitset=use_bitset)
    elif tag == "threshold":
        result = decide_duality_threshold(g, h, use_bitset=use_bitset)
    elif tag == "acyclic":
        result = decide_duality_acyclic(g, h, use_bitset=use_bitset)
    else:
        from repro.duality.boros_makino import decide_boros_makino

        result = decide_boros_makino(g, h)
    result.stats.extra["class"] = tag
    return result


def transversals_via_mis(g: Hypergraph) -> Hypergraph:
    """``tr`` of a rank-≤2 hypergraph through the MIS route (cross-check).

    Exists so tests can verify the graph decider's enumeration against
    :func:`~repro.hypergraph.transversal.transversal_hypergraph`.
    """
    if g.is_trivial_false():
        return Hypergraph([frozenset()], vertices=g.vertices)
    if g.is_trivial_true():
        return Hypergraph.empty(g.vertices)
    forced, pairs, covered = graph_reduction(g)
    transversals = [
        frozenset(forced | cover)
        for cover in minimal_vertex_covers_iter(covered, pairs)
    ]
    return Hypergraph(transversals, vertices=g.vertices)
