"""Section 5: the guess-and-check bound ``GC(log² n, [[LOGSPACE_pol]]^log)``.

Theorem 5.1 places the *complement* of ``Dual`` in the guess-and-check
class: to refute duality it suffices to

1. **guess** a path descriptor π — ``O(log² n)`` bits (the guess), and
2. **check** that ``pathnode(I, π)`` is a leaf marked ``fail`` — a
   ``[[LOGSPACE_pol]]^log`` computation followed by a LOGSPACE test
   (Lemma 5.1).

This module provides the checker (:func:`check_certificate`), a prover
that produces certificates for non-dual instances
(:func:`certificate_for`), and a decider that simulates the
nondeterministic guess by exhaustive enumeration with space re-use —
which is precisely how Theorem 5.2 embeds the class into
``DSPACE[log² n]``.
"""

from __future__ import annotations

from repro.hypergraph import Hypergraph
from repro.machine.meter import SpaceMeter
from repro.duality.conditions import prepare_instance
from repro.duality.logspace import (
    PathDescriptor,
    descriptor_bits,
    is_valid_descriptor,
    iter_tree_nodes,
    pathnode,
    pathnode_metered,
)
from repro.duality.result import (
    DecisionStats,
    DualityResult,
    FailureKind,
    dual_result,
    not_dual_result,
)
from repro.duality.tree import Mark


def check_certificate(
    g: Hypergraph, h: Hypergraph, pi: PathDescriptor
) -> bool:
    """Lemma 5.1's check: does ``pathnode(I, π)`` output a ``fail`` leaf?

    The instance must satisfy the decomposition entry conditions (the
    guess-and-check machine receives a validated instance).  Descriptors
    outside ``PD(I)`` simply fail the check (they are wrong guesses, not
    errors).
    """
    entry = prepare_instance(g, h)
    if not entry.ok:
        raise ValueError(
            f"instance outside the decomposition preconditions: {entry.detail}"
        )
    if not is_valid_descriptor(entry.g, entry.h, tuple(pi)):
        return False
    attrs = pathnode(entry.g, entry.h, tuple(pi))
    return attrs is not None and attrs.mark is Mark.FAIL


def check_certificate_metered(
    g: Hypergraph, h: Hypergraph, pi: PathDescriptor
) -> tuple[bool, SpaceMeter]:
    """The certificate check with the Lemma 3.1 register discipline metered."""
    entry = prepare_instance(g, h)
    if not entry.ok:
        raise ValueError(
            f"instance outside the decomposition preconditions: {entry.detail}"
        )
    attrs, meter = pathnode_metered(entry.g, entry.h, tuple(pi))
    return (attrs is not None and attrs.mark is Mark.FAIL), meter


def certificate_for(
    g: Hypergraph, h: Hypergraph
) -> PathDescriptor | None:
    """A certificate (fail-leaf path descriptor) for a non-dual instance.

    The "prover" side of Theorem 5.1: returns the label of the first
    ``fail`` leaf of ``T(G, H)``, or ``None`` when the instance is dual
    (no certificate exists — Proposition 2.1(1)+(4)).
    """
    entry = prepare_instance(g, h)
    if not entry.ok:
        raise ValueError(
            f"instance outside the decomposition preconditions: {entry.detail}"
        )
    for attrs in iter_tree_nodes(entry.g, entry.h):
        if attrs.mark is Mark.FAIL:
            return attrs.label
    return None


def decide_guess_and_check(g: Hypergraph, h: Hypergraph) -> DualityResult:
    """Decide ``Dual`` by simulating the ``GC(log² n, ·)`` machine.

    All possible guesses are enumerated under space re-use (the
    Theorem 5.2 simulation argument); the first accepting certificate
    refutes duality.  ``stats.guessed_bits`` records the guess size —
    ``⌊log|H|⌋·⌈log(|V||G|+1)⌉`` bits, the paper's ``O(log² n)``.

    The witness attached to a NOT_DUAL verdict is the fail leaf's
    ``t(α)``, re-derived from the certificate by ``pathnode`` — i.e. the
    verdict is *checked*, not trusted from the enumeration.
    """
    method = "guess-check"
    entry = prepare_instance(g, h)
    if not entry.ok:
        return not_dual_result(
            method, entry.failure, witness=entry.witness, detail=entry.detail
        )
    g_v, h_v = entry.g, entry.h
    if len(h_v) > len(g_v):
        swapped = True
        g_v, h_v = h_v, g_v
    else:
        swapped = False

    stats = DecisionStats(guessed_bits=descriptor_bits(g_v, h_v))
    stats.extra["swapped"] = swapped

    # Enumerate candidate guesses.  Pruned enumeration visits exactly the
    # valid descriptors; every skipped guess is one pathnode would map to
    # wrongpath, so the accept/reject behaviour matches the exhaustive
    # simulation bit for bit.
    for attrs in iter_tree_nodes(g_v, h_v):
        stats.nodes += 1
        if attrs.mark is Mark.FAIL:
            certificate = attrs.label
            verified = pathnode(g_v, h_v, certificate)
            assert verified is not None and verified.mark is Mark.FAIL
            direction = "H wrt G" if swapped else "G wrt H"
            return not_dual_result(
                method,
                FailureKind.MISSING_TRANSVERSAL,
                witness=verified.witness,
                detail=(
                    f"accepted certificate {certificate}: new transversal "
                    f"of {direction}"
                ),
                path=certificate,
                stats=stats,
            )
    return dual_result(method, stats)
