"""Section 5: the guess-and-check bound ``GC(log² n, [[LOGSPACE_pol]]^log)``.

Theorem 5.1 places the *complement* of ``Dual`` in the guess-and-check
class: to refute duality it suffices to

1. **guess** a path descriptor π — ``O(log² n)`` bits (the guess), and
2. **check** that ``pathnode(I, π)`` is a leaf marked ``fail`` — a
   ``[[LOGSPACE_pol]]^log`` computation followed by a LOGSPACE test
   (Lemma 5.1).

This module provides the checker (:func:`check_certificate`), a prover
that produces certificates for non-dual instances
(:func:`certificate_for`), and a decider that simulates the
nondeterministic guess by exhaustive enumeration with space re-use —
which is precisely how Theorem 5.2 embeds the class into
``DSPACE[log² n]``.
"""

from __future__ import annotations

from repro.core import (
    VertexIndex,
    is_new_transversal_mask,
    iter_bits,
    mask_sort_key,
)
from repro.hypergraph import Hypergraph
from repro.machine.meter import SpaceMeter
from repro.duality.conditions import prepare_instance
from repro.duality.logspace import (
    PathDescriptor,
    descriptor_bits,
    is_valid_descriptor,
    iter_tree_nodes,
    pathnode,
    pathnode_metered,
)
from repro.duality.result import (
    DecisionStats,
    DualityResult,
    FailureKind,
    dual_result,
    not_dual_result,
)
from repro.duality.tree import Mark


def check_certificate(
    g: Hypergraph, h: Hypergraph, pi: PathDescriptor
) -> bool:
    """Lemma 5.1's check: does ``pathnode(I, π)`` output a ``fail`` leaf?

    The instance must satisfy the decomposition entry conditions (the
    guess-and-check machine receives a validated instance).  Descriptors
    outside ``PD(I)`` simply fail the check (they are wrong guesses, not
    errors).
    """
    entry = prepare_instance(g, h)
    if not entry.ok:
        raise ValueError(
            f"instance outside the decomposition preconditions: {entry.detail}"
        )
    if not is_valid_descriptor(entry.g, entry.h, tuple(pi)):
        return False
    attrs = pathnode(entry.g, entry.h, tuple(pi))
    return attrs is not None and attrs.mark is Mark.FAIL


def check_certificate_metered(
    g: Hypergraph, h: Hypergraph, pi: PathDescriptor
) -> tuple[bool, SpaceMeter]:
    """The certificate check with the Lemma 3.1 register discipline metered."""
    entry = prepare_instance(g, h)
    if not entry.ok:
        raise ValueError(
            f"instance outside the decomposition preconditions: {entry.detail}"
        )
    attrs, meter = pathnode_metered(entry.g, entry.h, tuple(pi))
    return (attrs is not None and attrs.mark is Mark.FAIL), meter


def certificate_for(
    g: Hypergraph, h: Hypergraph
) -> PathDescriptor | None:
    """A certificate (fail-leaf path descriptor) for a non-dual instance.

    The "prover" side of Theorem 5.1: returns the label of the first
    ``fail`` leaf of ``T(G, H)``, or ``None`` when the instance is dual
    (no certificate exists — Proposition 2.1(1)+(4)).
    """
    entry = prepare_instance(g, h)
    if not entry.ok:
        raise ValueError(
            f"instance outside the decomposition preconditions: {entry.detail}"
        )
    for attrs in iter_tree_nodes(entry.g, entry.h):
        if attrs.mark is Mark.FAIL:
            return attrs.label
    return None


class _MaskTreeWalker:
    """The decomposition-tree walk of Section 5's checker, on masks.

    The frozenset enumeration (:func:`iter_tree_nodes`) re-derives each
    node's instance with the restriction operators and ``frozenset``
    scopes; this walker keeps the *entire* state — scopes, instances,
    majority sets, witnesses — as integers over one
    :class:`~repro.core.VertexIndex`, decoding only the final witness.
    Every free choice follows the paper policy's canonical order, which
    in the mask domain is ascending bit position / ``mask_sort_key``, so
    labels, marks and witnesses coincide bit for bit with the frozenset
    walk (the equivalence suite asserts it).
    """

    def __init__(self, g: Hypergraph, h: Hypergraph) -> None:
        self.index = VertexIndex(g.vertices | h.vertices)
        self.g_masks = tuple(self.index.encode(e) for e in g.edges)
        self.h_masks = tuple(self.index.encode(e) for e in h.edges)
        self.full = self.index.full_mask
        self._finalized: dict[int, tuple[Mark, int]] = {}
        self._children: dict[int, tuple[int, ...]] = {}

    # -- restriction operators (G^S, H_S) ------------------------------

    def _instance(self, scope: int) -> tuple[tuple[int, ...], tuple[int, ...]]:
        g_s = tuple(sorted({m & scope for m in self.g_masks}, key=mask_sort_key))
        h_s = tuple(m for m in self.h_masks if m & scope == m)
        return g_s, h_s

    @staticmethod
    def _majority(h_s: tuple[int, ...]) -> int:
        threshold = len(h_s) / 2.0
        counts: dict[int, int] = {}
        for mask in h_s:
            for bit in iter_bits(mask):
                counts[bit] = counts.get(bit, 0) + 1
        majority = 0
        for bit, count in counts.items():
            if count > threshold:
                majority |= bit
        return majority

    # -- marking (marksmall + the process step-2 check) ----------------

    def finalized(self, scope: int) -> tuple[Mark, int]:
        """The ``(mark, t)`` of a node at ``scope`` (cached per scope)."""
        cached = self._finalized.get(scope)
        if cached is not None:
            return cached
        g_s, h_s = self._instance(scope)
        if len(h_s) <= 1:
            outcome = self._marksmall(g_s, h_s, scope)
        else:
            i_alpha = self._majority(h_s)
            if is_new_transversal_mask(i_alpha, g_s, h_s):
                outcome = (Mark.FAIL, i_alpha)
            else:
                outcome = (Mark.NIL, 0)
        self._finalized[scope] = outcome
        return outcome

    @staticmethod
    def _marksmall(
        g_s: tuple[int, ...], h_s: tuple[int, ...], scope: int
    ) -> tuple[Mark, int]:
        g_set = frozenset(g_s)
        empty_in_g = 0 in g_set
        if not h_s and not empty_in_g:
            return Mark.FAIL, scope  # case 1
        if not h_s:
            return Mark.DONE, 0  # case 2
        (h_edge,) = h_s
        if all(bit in g_set for bit in iter_bits(h_edge)):
            return Mark.DONE, 0  # case 3
        # case 4: lowest bit position == smallest vertex (paper policy).
        chosen = next(bit for bit in iter_bits(h_edge) if bit not in g_set)
        return Mark.FAIL, scope & ~chosen

    # -- children (process steps 3-4) ----------------------------------

    def children(self, scope: int) -> tuple[int, ...]:
        """Ordered child scopes of an interior node (cached per scope)."""
        cached = self._children.get(scope)
        if cached is not None:
            return cached
        g_s, h_s = self._instance(scope)
        i_alpha = self._majority(h_s)
        missed = [m for m in g_s if not m & i_alpha]
        if missed:
            # Step 3: branch on the first G-edge disjoint from I_α.
            g_edge = min(missed, key=mask_sort_key)
            avoid = scope & ~g_edge
            survivors = [m for m in g_s if m & avoid != m]
            scopes = {
                scope & ~(e & ~bit)
                for e in survivors
                for bit in iter_bits(e & g_edge)
            }
        else:
            # Step 4: branch on the first H-edge inside I_α.
            covered = [m for m in h_s if m & i_alpha == m]
            h_edge = min(covered, key=mask_sort_key)
            scopes = {scope & ~bit for bit in iter_bits(h_edge)} | {h_edge}
        ordered = tuple(sorted(scopes, key=mask_sort_key))
        self._children[scope] = ordered
        return ordered

    # -- traversal ------------------------------------------------------

    def iter_nodes(self):
        """All nodes in DFS (label) order, as ``(label, scope, mark, t)``.

        The visiting order replicates :func:`iter_tree_nodes` exactly:
        canonical scope order equals ascending ``mask_sort_key``.
        """
        mark, witness = self.finalized(self.full)
        yield (), self.full, mark, witness
        if mark is not Mark.NIL:
            return
        stack: list[tuple[tuple[int, ...], int, int]] = [((), self.full, 1)]
        while stack:
            label, scope, i = stack.pop()
            kids = self.children(scope)
            if i > len(kids):
                continue
            stack.append((label, scope, i + 1))
            child_label = label + (i,)
            child_scope = kids[i - 1]
            child_mark, child_witness = self.finalized(child_scope)
            yield child_label, child_scope, child_mark, child_witness
            if child_mark is Mark.NIL:
                stack.append((child_label, child_scope, 1))

    def resolve(self, label: tuple[int, ...]) -> tuple[Mark, int] | None:
        """The mask-domain ``pathnode``: re-derive a node from its label."""
        scope = self.full
        mark, witness = self.finalized(scope)
        for i in label:
            if mark is not Mark.NIL:
                return None
            kids = self.children(scope)
            if i < 1 or i > len(kids):
                return None
            scope = kids[i - 1]
            mark, witness = self.finalized(scope)
        return mark, witness


def decide_guess_and_check(
    g: Hypergraph, h: Hypergraph, use_bitset: bool = True
) -> DualityResult:
    """Decide ``Dual`` by simulating the ``GC(log² n, ·)`` machine.

    All possible guesses are enumerated under space re-use (the
    Theorem 5.2 simulation argument); the first accepting certificate
    refutes duality.  ``stats.guessed_bits`` records the guess size —
    ``⌊log|H|⌋·⌈log(|V||G|+1)⌉`` bits, the paper's ``O(log² n)``.

    The witness attached to a NOT_DUAL verdict is the fail leaf's
    ``t(α)``, re-derived from the certificate by ``pathnode`` — i.e. the
    verdict is *checked*, not trusted from the enumeration.

    ``use_bitset=True`` (the default) runs the enumeration and the
    certificate re-check on the :class:`_MaskTreeWalker`;
    ``use_bitset=False`` keeps the frozenset reference walk.  Both
    return identical verdicts, certificates, and node counts.
    """
    method = "guess-check"
    entry = prepare_instance(g, h)
    if not entry.ok:
        return not_dual_result(
            method, entry.failure, witness=entry.witness, detail=entry.detail
        )
    g_v, h_v = entry.g, entry.h
    if len(h_v) > len(g_v):
        swapped = True
        g_v, h_v = h_v, g_v
    else:
        swapped = False

    stats = DecisionStats(guessed_bits=descriptor_bits(g_v, h_v))
    stats.extra["swapped"] = swapped
    direction = "H wrt G" if swapped else "G wrt H"

    if use_bitset:
        walker = _MaskTreeWalker(g_v, h_v)
        for label, _scope, mark, _witness in walker.iter_nodes():
            stats.nodes += 1
            if mark is Mark.FAIL:
                verified = walker.resolve(label)
                assert verified is not None and verified[0] is Mark.FAIL
                return not_dual_result(
                    method,
                    FailureKind.MISSING_TRANSVERSAL,
                    witness=walker.index.decode(verified[1]),
                    detail=(
                        f"accepted certificate {label}: new transversal "
                        f"of {direction}"
                    ),
                    path=label,
                    stats=stats,
                )
        return dual_result(method, stats)

    # Enumerate candidate guesses.  Pruned enumeration visits exactly the
    # valid descriptors; every skipped guess is one pathnode would map to
    # wrongpath, so the accept/reject behaviour matches the exhaustive
    # simulation bit for bit.
    for attrs in iter_tree_nodes(g_v, h_v):
        stats.nodes += 1
        if attrs.mark is Mark.FAIL:
            certificate = attrs.label
            verified = pathnode(g_v, h_v, certificate)
            assert verified is not None and verified.mark is Mark.FAIL
            return not_dual_result(
                method,
                FailureKind.MISSING_TRANSVERSAL,
                witness=verified.witness,
                detail=(
                    f"accepted certificate {certificate}: new transversal "
                    f"of {direction}"
                ),
                path=certificate,
                stats=stats,
            )
    return dual_result(method, stats)
