"""The enumeration decider: ``Dual`` via space-efficient DFS (ref [44]).

Any duplicate-free enumerator of ``tr(G)`` decides ``H = tr(G)`` with
an early stop: after the entry check (``H ⊆ tr(G)``), walk the minimal
transversals and

* stop at the first one outside ``H`` — it is a *missing minimal
  transversal*, the strongest NOT-DUAL witness (it cannot contain an
  ``H``-edge: two comparable minimal transversals would contradict the
  antichain property);
* accept once exactly ``|H|`` transversals have appeared.

Built on :mod:`repro.hypergraph.dfs_enumeration`, the decider's working
memory beyond the input is one partial transversal plus a recursion
stack — the Tamaki-style space-efficiency the paper's Section 1 cites
as precursor work to its own DSPACE[log² n] bound.  Experiment E20
contrasts its working set against Berge's intermediate families.
"""

from __future__ import annotations

from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.dfs_enumeration import DFSStats, minimal_transversals_dfs
from repro.duality.conditions import prepare_instance
from repro.duality.result import (
    DecisionStats,
    DualityResult,
    FailureKind,
    dual_result,
    not_dual_result,
)

METHOD = "dfs-enum"


def decide_by_dfs_enumeration(g: Hypergraph, h: Hypergraph) -> DualityResult:
    """Decide ``H = tr(G)`` by early-stopping DFS enumeration of ``tr(G)``.

    Exact on every instance; the decision needs at most ``|H| + 1``
    enumerated transversals.  ``stats.extra`` carries the DFS working-set
    accounting (peak partial size, tree nodes) for the space experiments.
    """
    entry = prepare_instance(g, h)
    if not entry.ok:
        return not_dual_result(
            METHOD, entry.failure, witness=entry.witness, detail=entry.detail
        )
    g_v, h_v = entry.g, entry.h
    claimed = set(h_v.edges)
    dfs_stats = DFSStats()
    stats = DecisionStats()
    seen = 0
    for transversal in minimal_transversals_dfs(g_v, dfs_stats):
        seen += 1
        stats.nodes = dfs_stats.nodes
        stats.extra["peak_partial"] = dfs_stats.peak_partial
        if transversal not in claimed:
            return not_dual_result(
                METHOD,
                FailureKind.MISSING_TRANSVERSAL,
                witness=transversal,
                detail="DFS enumeration reached a transversal outside H",
                stats=stats,
            )
        if seen > len(claimed):  # pragma: no cover - shielded by entry check
            break
    stats.nodes = dfs_stats.nodes
    stats.extra["peak_partial"] = dfs_stats.peak_partial
    if seen != len(claimed):  # pragma: no cover - shielded by entry check
        raise AssertionError("enumeration count disagrees after entry check")
    return dual_result(METHOD, stats=stats)
