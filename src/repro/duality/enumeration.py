"""The enumeration decider: ``Dual`` via space-efficient DFS (ref [44]).

Any duplicate-free enumerator of ``tr(G)`` decides ``H = tr(G)`` with
an early stop: after the entry check (``H ⊆ tr(G)``), walk the minimal
transversals and

* stop at the first one outside ``H`` — it is a *missing minimal
  transversal*, the strongest NOT-DUAL witness (it cannot contain an
  ``H``-edge: two comparable minimal transversals would contradict the
  antichain property);
* accept once exactly ``|H|`` transversals have appeared.

Built on :mod:`repro.hypergraph.dfs_enumeration`, the decider's working
memory beyond the input is one partial transversal plus a recursion
stack — the Tamaki-style space-efficiency the paper's Section 1 cites
as precursor work to its own DSPACE[log² n] bound.  Experiment E20
contrasts its working set against Berge's intermediate families.
"""

from __future__ import annotations

from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.dfs_enumeration import (
    DFSStats,
    minimal_transversal_masks_dfs,
    minimal_transversals_dfs,
)
from repro.duality.conditions import prepare_instance
from repro.duality.result import (
    DecisionStats,
    DualityResult,
    FailureKind,
    dual_result,
    not_dual_result,
)

METHOD = "dfs-enum"


def decide_by_dfs_enumeration(
    g: Hypergraph, h: Hypergraph, use_bitset: bool = True
) -> DualityResult:
    """Decide ``H = tr(G)`` by early-stopping DFS enumeration of ``tr(G)``.

    Exact on every instance; the decision needs at most ``|H| + 1``
    enumerated transversals.  ``stats.extra`` carries the DFS working-set
    accounting (peak partial size, tree nodes) for the space experiments.

    ``use_bitset=True`` (default) runs the whole scan in the mask
    domain — the enumeration *and* the membership test against ``H``
    are integer compares over one shared index; the witness is decoded
    only on failure.  ``use_bitset=False`` is the ``frozenset``
    reference; both paths are bit-for-bit identical (verdict,
    certificate, and work counters).
    """
    entry = prepare_instance(g, h)
    if not entry.ok:
        return not_dual_result(
            METHOD, entry.failure, witness=entry.witness, detail=entry.detail
        )
    g_v, h_v = entry.g, entry.h
    dfs_stats = DFSStats()
    stats = DecisionStats()
    if use_bitset:
        family = g_v.bits()
        index = family.index
        claimed_masks = frozenset(index.encode(e) for e in h_v.edges)
        enumerator = minimal_transversal_masks_dfs(family, dfs_stats)
        claimed_size = len(claimed_masks)
        missing = lambda t: t not in claimed_masks  # noqa: E731
        decode = index.decode
    else:
        claimed = set(h_v.edges)
        enumerator = minimal_transversals_dfs(
            g_v, dfs_stats, use_bitset=False
        )
        claimed_size = len(claimed)
        missing = lambda t: t not in claimed  # noqa: E731
        decode = lambda t: t  # noqa: E731
    seen = 0
    for transversal in enumerator:
        seen += 1
        stats.nodes = dfs_stats.nodes
        stats.extra["peak_partial"] = dfs_stats.peak_partial
        if missing(transversal):
            return not_dual_result(
                METHOD,
                FailureKind.MISSING_TRANSVERSAL,
                witness=decode(transversal),
                detail="DFS enumeration reached a transversal outside H",
                stats=stats,
            )
        if seen > claimed_size:  # pragma: no cover - shielded by entry check
            break
    stats.nodes = dfs_stats.nodes
    stats.extra["peak_partial"] = dfs_stats.peak_partial
    if seen != claimed_size:  # pragma: no cover - shielded by entry check
        raise AssertionError("enumeration count disagrees after entry check")
    return dual_result(METHOD, stats=stats)
