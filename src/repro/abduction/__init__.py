"""Minimal abductive explanations over Horn theories (paper ref [10]).

Section 1 lists "computing minimal abductive explanations to
observations" among the ``Dual`` applications.  Given a Horn theory
``T``, a set of *hypotheses* (abducible atoms) and a query atom, an
explanation is a hypothesis set whose addition to ``T`` entails the
query; the interesting ones are the inclusion-minimal explanations.

Structure this package operationalises: for Horn theories,
*explains-the-query* is a **monotone** predicate of the hypothesis set
(more facts can only grow the forward-chaining closure), so

* the minimal explanations are the minimal true points of a monotone
  function — enumerable by the GKMT border learner of
  :mod:`repro.learning`;
* the maximal non-explanations are its maximal false points; and
* *"is this list of explanations complete?"* is a ``Dual`` instance,
  checkable by any engine including the paper's quadratic-logspace one.
"""

from repro.abduction.explanations import (
    AbductionProblem,
    is_explanation,
    maximal_non_explanations,
    minimal_explanations,
    minimal_explanations_brute_force,
    necessary_hypotheses,
    relevant_hypotheses,
    verify_explanation_completeness,
)

__all__ = [
    "AbductionProblem",
    "is_explanation",
    "maximal_non_explanations",
    "minimal_explanations",
    "minimal_explanations_brute_force",
    "necessary_hypotheses",
    "relevant_hypotheses",
    "verify_explanation_completeness",
]
