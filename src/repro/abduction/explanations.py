"""Abduction on Horn theories: problems, explanations, and the Dual link.

Definitions (Eiter–Makino [10], specialised to atomic queries over Horn
theories):

* an *abduction problem* is ``(T, A, q)`` — a Horn theory ``T``, a set
  ``A`` of hypothesis atoms, and a query atom ``q``;
* ``E ⊆ A`` is an **explanation** iff ``T ∪ E ⊨ q`` and ``T ∪ E`` is
  consistent (the consistency requirement only bites when ``T`` has
  negative clauses);
* the solutions of interest are the ⊆-minimal explanations.

For *definite* ``T``, entailment is forward chaining, and
``E ↦ [T ∪ E ⊨ q]`` is monotone, so the minimal explanations are a
monotone function's minimal true points.  With negative clauses the
consistency side-condition can break monotonicity (a superset of an
explanation may turn inconsistent), so the learner route requires a
definite theory — callers with constraints get the brute-force route
and a documented exception otherwise.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro._util import minimize_family, maximize_family, powerset, vertex_key
from repro.errors import InvalidInstanceError, VertexError
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.operations import complement_family
from repro.duality.engine import DEFAULT_METHOD, decide_duality
from repro.duality.result import DualityResult
from repro.learning.oracle import MembershipOracle
from repro.learning.exact import learn_monotone_function
from repro.logic.horn import HornTheory


class AbductionProblem:
    """An atomic-query Horn abduction problem ``(T, A, q)``.

    Parameters
    ----------
    theory:
        The background :class:`~repro.logic.HornTheory`.
    hypotheses:
        The abducible atoms ``A`` (must be theory atoms).
    query:
        The atom to explain (must be a theory atom).
    """

    def __init__(
        self, theory: HornTheory, hypotheses: Iterable, query
    ) -> None:
        self.theory = theory
        self.hypotheses = frozenset(hypotheses)
        if not self.hypotheses <= theory.atoms:
            extra = sorted(self.hypotheses - theory.atoms, key=vertex_key)
            raise VertexError(f"hypotheses outside the theory atoms: {extra}")
        if query not in theory.atoms:
            raise VertexError(f"query {query!r} is not a theory atom")
        self.query = query

    def explains(self, hypothesis_set: Iterable) -> bool:
        """Is ``T ∪ E`` consistent and entailing the query?"""
        e = frozenset(hypothesis_set)
        if not e <= self.hypotheses:
            extra = sorted(e - self.hypotheses, key=vertex_key)
            raise VertexError(f"not hypothesis atoms: {extra}")
        if not self.theory.closure_consistent(e):
            return False
        return self.theory.entails_atom(e, self.query)

    def require_definite(self) -> "AbductionProblem":
        """Raise unless the theory is definite (the monotone case)."""
        if not self.theory.is_definite():
            raise InvalidInstanceError(
                "the learner route needs a definite Horn theory "
                "(negative clauses can break monotonicity); "
                "use minimal_explanations_brute_force"
            )
        return self

    def oracle(self) -> MembershipOracle:
        """The monotone membership oracle ``f(E) = [E explains q]``.

        Only available for definite theories, where monotonicity is a
        theorem (forward chaining grows with the fact set).
        """
        self.require_definite()
        return MembershipOracle(
            self.explains, self.hypotheses, name=f"explains({self.query})"
        )

    def __repr__(self) -> str:
        return (
            f"AbductionProblem(query={self.query!r}, "
            f"|A|={len(self.hypotheses)}, theory={self.theory!r})"
        )


def is_explanation(problem: AbductionProblem, hypothesis_set: Iterable) -> bool:
    """Is the set an explanation (not necessarily minimal)?"""
    return problem.explains(hypothesis_set)


def minimal_explanations(
    problem: AbductionProblem, method: str = DEFAULT_METHOD
) -> Hypergraph:
    """All minimal explanations, via the monotone-border learner.

    ``method`` selects the duality engine behind the learner's
    completeness checks.  Requires a definite theory (see
    :meth:`AbductionProblem.oracle`).
    """
    learned = learn_monotone_function(problem.oracle(), method=method)
    return learned.minimal_true_points


def maximal_non_explanations(
    problem: AbductionProblem, method: str = DEFAULT_METHOD
) -> Hypergraph:
    """The maximal hypothesis sets that do *not* explain the query."""
    learned = learn_monotone_function(problem.oracle(), method=method)
    return learned.maximal_false_points


def minimal_explanations_brute_force(problem: AbductionProblem) -> Hypergraph:
    """Exponential reference enumeration (works for any Horn theory)."""
    explanations = [
        e for e in powerset(problem.hypotheses) if problem.explains(e)
    ]
    return Hypergraph(
        minimize_family(explanations), vertices=problem.hypotheses
    )


def maximal_non_explanations_brute_force(
    problem: AbductionProblem,
) -> Hypergraph:
    """Exponential reference for the false side of the border."""
    non_explanations = [
        e for e in powerset(problem.hypotheses) if not problem.explains(e)
    ]
    return Hypergraph(
        maximize_family(non_explanations), vertices=problem.hypotheses
    )


def necessary_hypotheses(explanations: Hypergraph) -> frozenset:
    """Hypotheses contained in *every* minimal explanation."""
    edges = explanations.edges
    if not edges:
        return frozenset()
    common = set(edges[0])
    for e in edges[1:]:
        common &= e
    return frozenset(common)


def relevant_hypotheses(explanations: Hypergraph) -> frozenset:
    """Hypotheses contained in *some* minimal explanation."""
    out: set = set()
    for e in explanations.edges:
        out |= e
    return frozenset(out)


def verify_explanation_completeness(
    problem: AbductionProblem,
    claimed_explanations: Hypergraph,
    claimed_non_explanations: Hypergraph,
    method: str = DEFAULT_METHOD,
    validate: bool = True,
) -> DualityResult:
    """Are the claimed explanation borders complete?  A ``Dual`` instance.

    Given claimed minimal explanations ``E`` and claimed maximal
    non-explanations ``N``, completeness is ``E = tr(Nᶜ)`` (the border
    identity of monotone functions — the same shape as the paper's
    Prop. 1.1 for itemset borders).  With ``validate=True`` each claimed
    set is first checked genuine against the theory (raising
    :class:`~repro.errors.InvalidInstanceError` otherwise).
    """
    universe = problem.hypotheses
    if validate:
        for e in claimed_explanations.edges:
            if not problem.explains(e):
                raise InvalidInstanceError(
                    f"claimed explanation {sorted(e, key=vertex_key)} "
                    "does not explain the query"
                )
            if any(
                problem.explains(e - {a}) for a in e
            ):
                raise InvalidInstanceError(
                    f"claimed explanation {sorted(e, key=vertex_key)} "
                    "is not minimal"
                )
        for n in claimed_non_explanations.edges:
            if problem.explains(n):
                raise InvalidInstanceError(
                    f"claimed non-explanation {sorted(n, key=vertex_key)} "
                    "explains the query"
                )
            if any(
                not problem.explains(n | {a}) for a in universe - n
            ):
                raise InvalidInstanceError(
                    f"claimed non-explanation {sorted(n, key=vertex_key)} "
                    "is not maximal"
                )
    g = complement_family(
        claimed_non_explanations.with_vertices(universe)
    )
    h = claimed_explanations.with_vertices(universe)
    return decide_duality(g, h, method=method)
