"""The wire protocol of the duality service: JSON lines over TCP.

One request per line, one response per line, UTF-8 JSON objects, ``\n``
terminated — the network shape of what ``repro serve`` already speaks
over stdin/stdout, so every UNIX tool that can write lines can drive a
:class:`~repro.net.server.DualityServer` directly.

Requests
--------

======== ==================================================================
op       fields
======== ==================================================================
solve    ``id`` (echoed back), optional ``method`` (per-request engine
         override), and the instance: either inline ``g`` + ``h``
         hypergraphs (:func:`encode_hypergraph`) or a server-side
         ``path`` to an ``.hg`` instance file.  An optional ``trace``
         field (a trace-id string, or ``true`` to let the server mint
         one) makes this one request traced: the response carries a
         ``trace`` object ``{"id", "spans"}`` with the server-side span
         tree (parse / cache-lookup / queue-wait / worker-solve /
         serialize), each span a dict in the
         :meth:`repro.obs.trace.Span.to_dict` shape
solve_shard one planned shard of a decomposed instance: ``id`` plus a
         ``shard`` object in the wire shape of
         :func:`repro.parallel.backends.encode_shard_request` (kind +
         mask payload + shared vertex header).  The response carries
         the runner's ``outcome``
         (:func:`repro.parallel.backends.encode_shard_outcome`) — this
         is how a coordinator's
         :class:`~repro.parallel.backends.PeerBackend` fans one
         instance out to a worker fleet.  Scheduling, backpressure,
         auth, and tracing are exactly the ``solve`` op's
ping     liveness probe; answered with ``{"pong": true}``
stats    server/pool/cache health snapshot: counters, per-connection
         in-flight, cache hit/miss/eviction totals, per-op request and
         error tallies, p50/p99 service time
auth     ``token``: the server's shared secret.  On a server started
         with ``--auth-token`` this **must be the first frame** of the
         connection; a wrong or missing token is answered with one
         ``AuthError`` line and a disconnect.  Servers without a token
         accept (and ignore) the op.
metrics  the server's unified metrics registry rendered as Prometheus
         text exposition (version 0.0.4), returned as the ``metrics``
         string field of the response — counters, gauges, and the
         solve-latency summary, scrape-ready
shutdown ask the server to stop: in-flight requests drain, the cache is
         flushed atomically, the pool closes
======== ==================================================================

Responses carry ``"ok": true`` plus the verdict fields of
:func:`repro.service.response_to_json`, or ``"ok": false`` plus an
``error`` object ``{"type", "message"}`` — errors are *per request*;
they never tear down the connection, let alone the server.

**Responses may arrive out of request order.**  The server schedules
every solve on a shared worker pool and writes each response the
moment its verdict exists, so a fast instance overtakes a slow one
pipelined before it — that is the whole point of the concurrent
scheduler.  The echoed ``id`` is the correlation key: clients that
pipeline must match responses to requests by ``id``
(:meth:`repro.net.client.DualityClient.solve_many` does, and still
returns results in input order).  Non-solve ops (``ping``, ``stats``,
``shutdown``) are answered inline by the connection's reader, and one
connection's response lines never interleave mid-line (a dedicated
writer serialises them).

Framing is length-sane: a line longer than ``max_line_bytes`` (default
:data:`MAX_LINE_BYTES`) is refused with a protocol error and the
connection is closed, because a half-read oversized line has no
trustworthy resynchronisation point.

Flow control is per connection, both ways.  The server stops *reading*
a connection once it has ``max_inflight`` solves scheduled and
undelivered for it — a client that pipelines beyond the cap backs up
into its own socket buffers (TCP pushback), not server memory — and
each connection's responses are written under ``drain()`` throttling,
so a client that stops reading stalls only itself.  Clients should
therefore keep consuming responses while they stream requests
(:meth:`~repro.net.client.AsyncDualityClient.solve_many` does).

Hypergraphs travel through the lossless tagged codec of
:mod:`repro.parallel.codec` (one encoded vertex list per edge, plus the
universe for isolated vertices), so tuple- or frozenset-labelled
instances round-trip the wire with their exact vertex types.
"""

from __future__ import annotations

import json
import socket

from repro.hypergraph import Hypergraph
from repro.parallel.codec import decode_vertex_set, encode_vertex_set

#: Default ceiling for one request/response line (4 MiB of JSON text).
MAX_LINE_BYTES = 4 * 1024 * 1024

#: The request operations a server understands.
OPERATIONS = ("solve", "solve_shard", "ping", "stats", "auth", "metrics", "shutdown")


class ProtocolError(ValueError):
    """A malformed request/response line or an ill-typed field."""


class LineTooLong(ProtocolError):
    """A line exceeded the negotiated ``max_line_bytes`` ceiling."""


class AuthError(ProtocolError):
    """A missing or wrong shared-secret token on an auth-required server."""


class RequestError(RuntimeError):
    """A server-side per-request failure, re-raised client-side.

    ``info`` is the error object off the wire: ``{"type", "message"}``.
    """

    def __init__(self, info: dict) -> None:
        super().__init__(f"{info.get('type', 'Error')}: {info.get('message', '')}")
        self.info = info


# ---------------------------------------------------------------------------
# Hypergraphs on the wire
# ---------------------------------------------------------------------------


def encode_hypergraph(hg: Hypergraph) -> dict:
    """A JSON-safe, lossless wire form: codec-tagged edges + universe."""
    return {
        "vertices": encode_vertex_set(hg.vertices),
        "edges": [encode_vertex_set(edge) for edge in hg.edges],
    }


def decode_hypergraph(payload) -> Hypergraph:
    """Invert :func:`encode_hypergraph`; raises :class:`ProtocolError`."""
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"hypergraph payload must be an object, got {type(payload).__name__}"
        )
    try:
        edges = [decode_vertex_set(edge) for edge in payload["edges"]]
        vertices = decode_vertex_set(payload.get("vertices"))
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed hypergraph payload: {exc}") from exc
    return Hypergraph(edges, vertices=vertices)


# ---------------------------------------------------------------------------
# Line framing
# ---------------------------------------------------------------------------


def send_json(sock: socket.socket, obj: dict) -> None:
    """Write one JSON object as one ``\n``-terminated line."""
    sock.sendall(json.dumps(obj).encode("utf-8") + b"\n")


def parse_request(line: bytes) -> dict:
    """Decode one request line into its dict; raises :class:`ProtocolError`."""
    try:
        request = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"request line is not valid JSON: {exc}") from exc
    if not isinstance(request, dict):
        raise ProtocolError(
            f"request must be a JSON object, got {type(request).__name__}"
        )
    op = request.get("op", "solve")
    if op not in OPERATIONS:
        raise ProtocolError(
            f"unknown op {op!r}; valid ops: {', '.join(OPERATIONS)}"
        )
    return request


def parse_response(line: bytes) -> dict:
    """Decode one response line into its dict; raises :class:`ProtocolError`.

    Shape checks only — correlation (matching the echoed ``id`` to an
    outstanding request) is the caller's job, because pipelined
    responses legitimately arrive out of request order.
    """
    try:
        response = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"malformed response line: {exc}") from exc
    if not isinstance(response, dict):
        raise ProtocolError(f"response is not an object: {response!r}")
    return response


class LineReader:
    """A buffered line reader over a socket with a hard length ceiling.

    ``readline`` returns one line without its terminator, ``None`` on a
    clean EOF (a trailing partial line — a client that died mid-request
    — is discarded), and raises :class:`LineTooLong` once the buffer
    exceeds ``max_line_bytes`` without a newline.  A socket timeout
    simply propagates (`TimeoutError`); buffered partial data survives
    it, so callers can poll a shutdown flag between reads.
    """

    def __init__(self, sock: socket.socket, max_line_bytes: int = MAX_LINE_BYTES):
        self._sock = sock
        self._max = max_line_bytes
        self._buffer = bytearray()
        self._eof = False

    def readline(self) -> bytes | None:
        while True:
            newline = self._buffer.find(b"\n")
            if newline >= 0:
                line = bytes(self._buffer[:newline])
                del self._buffer[: newline + 1]
                return line
            if self._eof:
                # Whatever is left has no terminator: a connection cut
                # mid-request.  Dropping it is the only safe reading.
                return None
            if len(self._buffer) > self._max:
                raise LineTooLong(
                    f"request line exceeds {self._max} bytes without a newline"
                )
            chunk = self._sock.recv(65536)
            if not chunk:
                self._eof = True
                continue
            self._buffer.extend(chunk)
