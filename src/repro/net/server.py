"""A concurrent TCP front end over the :mod:`repro.service` scheduler.

Many clients, one warm pool — and since PR 5, **many solves at once**:
the server owns a single :class:`~repro.service.pool.EnginePool` and a
single (thread-safe) :class:`~repro.parallel.batch.ResultCache`, and
every connection dispatches its requests straight to the shared
scheduler.  There is no solve lock: each request becomes a
:class:`~repro.service.ServiceTicket`, and its response is written to
the wire **the moment it completes — out of request order** when a
fast instance overtakes a slow one.  The protocol already correlates
by ``id`` (echoed back verbatim), and
:meth:`~repro.net.client.DualityClient.solve_many` re-orders arrivals,
so a slow instance on one connection never head-of-line-blocks fast
requests on another (or even on the same) connection.  Per-request
``method`` overrides are served by per-method
:class:`~repro.service.EngineService` views that all borrow the same
pool and cache, so a mixed-engine workload still shares every warm
worker and every cached verdict.

Each connection runs two threads: a *reader* that parses request lines
and dispatches tickets, and a *writer* that drains a FIFO outbox onto
the socket — completion callbacks only ever enqueue, so a client that
is slow to read its responses stalls its own writer thread and nobody
else's.

Lifecycle: :meth:`DualityServer.start` binds and spawns the accept
loop; :meth:`DualityServer.shutdown` (or a client ``shutdown`` request,
or ``KeyboardInterrupt`` in the CLI) waits for in-flight tickets to
deliver, flushes the cache atomically to its path, then closes the
pool.  Handler threads poll the closing flag between requests on a
short socket timeout, so shutdown is graceful but bounded.

Crash-safety: the cache is persisted after every computed verdict
(``autosave_every``; default 1) *before* the verdict is written to the
wire, so even a ``kill -9``'d server loses no verdict a client ever
saw, and the atomic :meth:`~repro.parallel.batch.ResultCache.save`
guarantees the file on disk is always a loadable generation.
"""

from __future__ import annotations

import queue
import socket
import threading
from pathlib import Path

from repro.net.protocol import (
    LineReader,
    LineTooLong,
    MAX_LINE_BYTES,
    ProtocolError,
    decode_hypergraph,
    parse_request,
    send_json,
)
from repro.parallel.batch import ResultCache
from repro.service import EnginePool, EngineService, response_to_json


def parse_address(text: str) -> tuple[str, int]:
    """Split a ``HOST:PORT`` string (``:PORT`` alone means localhost)."""
    host, sep, port = text.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(
            f"expected HOST:PORT (e.g. 127.0.0.1:7171), got {text!r}"
        )
    return host or "127.0.0.1", int(port)


class _Connection:
    """One client connection: a reader's socket plus an ordered writer.

    Completion callbacks (and the reader itself) never touch the socket
    directly — they :meth:`send` payloads into a FIFO outbox that a
    dedicated writer thread drains.  That gives every connection
    strictly ordered, non-interleaved response lines with no lock
    around the socket, and confines a stalled client to its own writer.

    The writer sends on a ``dup()`` of the socket so its (generous)
    send timeout never races the reader's short poll timeout — socket
    timeouts live on the Python socket object, not the connection.
    """

    _CLOSE = object()

    def __init__(self, sock: socket.socket, index: int, send_timeout: float):
        self.sock = sock
        self.dead = False  # a send failed; the wire is untrustworthy
        self._wire = sock.dup()
        self._wire.settimeout(send_timeout)
        self._outbox: queue.SimpleQueue = queue.SimpleQueue()
        self._pending = 0
        self._cond = threading.Condition()
        self._finished = False
        self.writer = threading.Thread(
            target=self._write_loop, name=f"duality-send-{index}", daemon=True
        )
        self.writer.start()

    # -- in-flight accounting (per connection) -------------------------

    def track(self) -> None:
        with self._cond:
            self._pending += 1

    def settle(self) -> None:
        with self._cond:
            self._pending -= 1
            self._cond.notify_all()

    def wait_idle(self, timeout: float) -> bool:
        """Block until every tracked request has been delivered."""
        with self._cond:
            return self._cond.wait_for(lambda: self._pending == 0, timeout)

    # -- the write side -------------------------------------------------

    def send(self, payload: dict) -> None:
        """Enqueue one response line (FIFO; dropped once the wire died)."""
        self._outbox.put(payload)

    def _write_loop(self) -> None:
        while True:
            payload = self._outbox.get()
            if payload is self._CLOSE:
                return
            if self.dead:
                continue  # discard: the client is gone
            try:
                send_json(self._wire, payload)
            except OSError:
                # Stalled past the send timeout or vanished: this
                # connection is over, but its in-flight verdicts are
                # already cached — only the delivery is lost.
                self.dead = True

    def finish(self, timeout: float = 10.0) -> None:
        """Flush the outbox and stop the writer (idempotent)."""
        if not self._finished:
            self._finished = True
            self._outbox.put(self._CLOSE)
        if self.writer is not threading.current_thread():
            self.writer.join(timeout)

    def close(self) -> None:
        self.finish()
        for sock in (self._wire, self.sock):
            try:
                sock.close()
            except OSError:  # pragma: no cover - already closed
                pass


class DualityServer:
    """JSON-lines-over-TCP duality scheduler: shared pool, shared cache."""

    #: How often (seconds) idle handler threads poll the closing flag.
    POLL_INTERVAL = 0.2

    #: How long (seconds) one response write may take before the client
    #: is declared stalled and its connection dropped.
    SEND_TIMEOUT = 30.0

    #: How long (seconds) a closing connection or server waits for its
    #: in-flight tickets to deliver before giving up on them.
    DRAIN_TIMEOUT = 30.0

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        method: str = "fk-b",
        n_jobs: int | None = 1,
        cache: ResultCache | str | Path | None = None,
        max_line_bytes: int = MAX_LINE_BYTES,
        autosave_every: int = 1,
        cache_max_entries: int | None = None,
    ) -> None:
        """Configure a server (nothing binds until :meth:`start`).

        ``port=0`` asks the OS for a free port (read it back from
        :attr:`address` after ``start``).  ``cache`` follows
        :class:`EngineService`'s convention: a live cache, a JSON path
        (loaded tolerantly now, flushed atomically while serving), or
        ``None``; ``cache_max_entries`` caps a path-loaded cache with
        LRU eviction (``None`` = unbounded).  ``autosave_every``
        persists the path-backed cache once at least that many new
        verdicts accumulated (1 = after every computed verdict; 0
        disables autosave, leaving only the shutdown flush).
        """
        self._host = host
        self._port = port
        self.method = method
        self.n_jobs = n_jobs
        self.max_line_bytes = max_line_bytes
        self.autosave_every = autosave_every
        self._cache_path: Path | None = None
        if isinstance(cache, (str, Path)):
            self._cache_path = Path(cache)
            self.cache: ResultCache | None = ResultCache.load(
                self._cache_path, max_entries=cache_max_entries
            )
        else:
            self.cache = cache
        self.pool = EnginePool(n_jobs)
        self._services: dict[str, EngineService] = {}
        # Guards the _services dict itself (stats() snapshots it while
        # handler threads insert); there is no solve lock — requests
        # from every connection schedule concurrently on the pool.
        self._services_lock = threading.Lock()
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._handlers: list[threading.Thread] = []
        self._connections: set[_Connection] = set()
        self._conn_lock = threading.Lock()
        self._closing = threading.Event()
        self._stopped = threading.Event()
        self._count_lock = threading.Lock()
        # Server-wide in-flight tickets: shutdown waits for this to hit
        # zero so every scheduled verdict gets delivered (or its
        # connection declared dead) before the pool closes.
        self._inflight = 0
        self._idle = threading.Event()
        self._idle.set()
        self.connections_accepted = 0
        self.requests_served = 0
        self.errors = 0

    def _count(self, counter: str) -> None:
        with self._count_lock:
            setattr(self, counter, getattr(self, counter) + 1)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (valid after :meth:`start`)."""
        if self._listener is None:
            raise RuntimeError("server is not started")
        return self._listener.getsockname()[:2]

    def start(self) -> "DualityServer":
        """Bind, listen, and spawn the accept loop (idempotent)."""
        if self._closing.is_set():
            raise RuntimeError("server has been shut down; create a new one")
        if self._listener is not None:
            return self
        # Bind before spawning workers: a taken port must fail with
        # nothing to clean up, not leak a running pool.
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            listener.bind((self._host, self._port))
            listener.listen()
            self.pool.start()
        except BaseException:
            listener.close()
            self.pool.shutdown()
            raise
        # Poll rather than block in accept(): closing a socket does not
        # reliably wake a thread blocked in accept() on it, so a timed
        # accept checking the closing flag is what makes shutdown work.
        listener.settimeout(self.POLL_INTERVAL)
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="duality-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def shutdown(self, timeout: float = 30.0) -> None:
        """Stop serving gracefully: deliver in-flight verdicts, flush
        the cache, close the pool.

        Safe to call from any thread (including a handler answering a
        ``shutdown`` request) and idempotent.  In-flight requests finish
        and get their responses; idle connections are closed at the
        next poll tick.
        """
        self._begin_shutdown()
        thread = self._accept_thread
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout)
        if not self._stopped.is_set():
            # start() was never called (or the accept thread is wedged):
            # finalize inline so the pool and cache are still released.
            self._finalize()

    def wait(self) -> None:
        """Block until the server has fully stopped (CLI foreground)."""
        while not self._stopped.wait(0.5):
            pass

    def __enter__(self) -> "DualityServer":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.shutdown()

    def _begin_shutdown(self) -> None:
        if self._closing.is_set():
            return
        self._closing.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover - platform quirk
                pass

    # ------------------------------------------------------------------
    # Accept loop and finalization
    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        try:
            while not self._closing.is_set():
                try:
                    conn, _addr = self._listener.accept()
                except TimeoutError:
                    continue  # poll tick: re-check the closing flag
                except OSError:
                    break  # listener closed by shutdown
                self._count("connections_accepted")
                connection = _Connection(
                    conn, self.connections_accepted, self.SEND_TIMEOUT
                )
                with self._conn_lock:
                    self._connections.add(connection)
                # Drop finished handler threads so a long-lived server
                # doesn't accumulate one dead Thread per connection.
                self._handlers = [
                    h for h in self._handlers if h.is_alive()
                ]
                handler = threading.Thread(
                    target=self._handle,
                    args=(connection,),
                    name=f"duality-conn-{self.connections_accepted}",
                    daemon=True,
                )
                self._handlers.append(handler)
                handler.start()
        finally:
            self._begin_shutdown()
            self._finalize()

    def _finalize(self) -> None:
        if self._stopped.is_set():
            return
        # Every scheduled ticket delivers (or its client is declared
        # dead) before the workers disappear underneath it.
        self._idle.wait(self.DRAIN_TIMEOUT)
        for handler in self._handlers:
            if handler is not threading.current_thread():
                handler.join(timeout=10)
        with self._conn_lock:
            leftover = list(self._connections)
            self._connections.clear()
        for connection in leftover:  # pragma: no cover - stragglers only
            connection.close()
        with self._services_lock:
            services = list(self._services.values())
        for service in services:
            service.close()  # borrowed pool/cache survive
        if self._cache_path is not None and self.cache is not None:
            if self.cache.new_since_save:
                self.cache.save(self._cache_path)
        self.pool.shutdown()
        self._stopped.set()

    # ------------------------------------------------------------------
    # Per-connection handling
    # ------------------------------------------------------------------

    def _handle(self, connection: _Connection) -> None:
        sock = connection.sock
        sock.settimeout(self.POLL_INTERVAL)
        reader = LineReader(sock, self.max_line_bytes)
        try:
            while not self._closing.is_set() and not connection.dead:
                try:
                    line = reader.readline()
                except TimeoutError:
                    continue
                except LineTooLong as exc:
                    # No trustworthy framing past an oversized line:
                    # report and hang up, leaving other clients alone.
                    self._send_error(connection, None, exc)
                    break
                if line is None:  # clean EOF or mid-request disconnect
                    break
                if not line.strip():
                    continue
                if not self._serve_line(connection, line):
                    break
        except OSError:
            # The client vanished mid-read; its in-flight requests (if
            # any) still resolve below — their sends just go nowhere.
            pass
        finally:
            # Let this connection's in-flight tickets deliver, flush
            # the outbox in order, then release the sockets.
            connection.wait_idle(self.DRAIN_TIMEOUT)
            with self._conn_lock:
                self._connections.discard(connection)
            connection.close()

    def _serve_line(self, connection: _Connection, line: bytes) -> bool:
        """Dispatch one request line; False ends the connection."""
        try:
            request = parse_request(line)
        except ProtocolError as exc:
            self._send_error(connection, None, exc)
            return True  # framing is intact: keep serving this client
        request_id = request.get("id")
        op = request.get("op", "solve")
        if op == "ping":
            self._count("requests_served")
            connection.send({"id": request_id, "ok": True, "pong": True})
            return True
        if op == "stats":
            self._count("requests_served")
            connection.send({"id": request_id, "ok": True, "stats": self.stats()})
            return True
        if op == "shutdown":
            # This connection's own solves are tracked; once they have
            # been enqueued, FIFO ordering puts them on the wire before
            # the shutdown acknowledgement.
            connection.wait_idle(self.DRAIN_TIMEOUT)
            self._count("requests_served")
            connection.send(
                {"id": request_id, "ok": True, "shutting_down": True}
            )
            self._begin_shutdown()
            return False
        try:
            ticket = self._dispatch(request)
        except Exception as exc:  # noqa: BLE001 - per-request error object
            self._send_error(connection, request_id, exc)
            return True
        self._track(connection)
        ticket.add_done_callback(
            lambda t: self._deliver(connection, request_id, t)
        )
        return True

    def _dispatch(self, request: dict):
        """Schedule one solve on the shared scheduler; its ticket."""
        method = request.get("method") or self.method
        if not isinstance(method, str):
            raise ProtocolError(f"method must be a string, got {method!r}")
        if "path" in request:
            instance = str(request["path"])
        elif "g" in request and "h" in request:
            instance = (
                decode_hypergraph(request["g"]),
                decode_hypergraph(request["h"]),
            )
        else:
            raise ProtocolError(
                "a solve request needs either inline 'g' and 'h' "
                "hypergraphs or a server-side 'path'"
            )
        service = self._service_for(method)
        return service.submit(instance, collect=False)

    def _deliver(self, connection: _Connection, request_id, ticket) -> None:
        """One ticket resolved: put its response on the connection's wire.

        Runs in whatever thread completed the solve — never blocks on
        the socket itself (that is the writer thread's job).
        """
        try:
            error = ticket.exception()
            if error is not None:
                self._send_error(connection, request_id, error)
                return
            payload = {"ok": True}
            payload.update(response_to_json(ticket.result()))
            payload["id"] = request_id  # the wire id wins over the queue's
            # Persist before the client can read the verdict: a crash
            # after this send loses nothing the client saw.
            self._maybe_autosave()
            self._count("requests_served")
            connection.send(payload)
        finally:
            self._settle(connection)

    def _track(self, connection: _Connection) -> None:
        connection.track()
        with self._count_lock:
            self._inflight += 1
            self._idle.clear()

    def _settle(self, connection: _Connection) -> None:
        connection.settle()
        with self._count_lock:
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.set()

    def _service_for(self, method: str) -> EngineService:
        """The per-method service view (shared pool, shared cache)."""
        with self._services_lock:
            service = self._services.get(method)
            if service is None:
                service = EngineService(
                    method=method,
                    # A portfolio winner is timing-dependent — exactly
                    # what a replay cache must not store (solve_many's
                    # rule).
                    cache=None if method == "portfolio" else self.cache,
                    pool=self.pool,
                )
                self._services[method] = service
        return service

    def _maybe_autosave(self) -> None:
        if (
            self.autosave_every > 0
            and self._cache_path is not None
            and self.cache is not None
            and self.cache.new_since_save >= self.autosave_every
        ):
            self.cache.save(self._cache_path)

    def _send_error(
        self, connection: _Connection, request_id, exc: Exception
    ) -> None:
        self._count("errors")
        connection.send(
            {
                "id": request_id,
                "ok": False,
                "error": {
                    "type": type(exc).__name__,
                    "message": str(exc),
                },
            }
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """A JSON-safe health snapshot (also the ``stats`` op's answer)."""
        out = {
            "method": self.method,
            "n_jobs": self.pool.n_jobs,
            "connections_accepted": self.connections_accepted,
            "requests_served": self.requests_served,
            "requests_inflight": self._inflight,
            "errors": self.errors,
            "pool_generations": self.pool.generations,
            "pool_restarts": self.pool.restarts,
            "tasks_completed": self.pool.tasks_completed,
        }
        with self._services_lock:
            out["methods_served"] = sorted(self._services)
        if self.cache is not None:
            out["cache_entries"] = len(self.cache)
            out["cache_hits"] = self.cache.hits
            out["cache_misses"] = self.cache.misses
        return out
