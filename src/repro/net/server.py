"""A threaded TCP front end over :class:`~repro.service.EngineService`.

Many clients, one warm pool: the server owns a single
:class:`~repro.service.pool.EnginePool` and a single (thread-safe)
:class:`~repro.parallel.batch.ResultCache`, and multiplexes every
connection onto them — one accept loop, one handler thread per
connection, one solve at a time through the shared service lock (the
pool is the compute resource; the lock just keeps the submit/drain
queue coherent).  Per-request ``method`` overrides are served by
per-method :class:`EngineService` views that all borrow the same pool
and cache, so a mixed-engine workload still shares every warm worker
and every cached verdict.

Lifecycle: :meth:`DualityServer.start` binds and spawns the accept
loop; :meth:`DualityServer.shutdown` (or a client ``shutdown`` request,
or ``KeyboardInterrupt`` in the CLI) drains in-flight requests, flushes
the cache atomically to its path, then closes the pool.  Handler
threads poll the closing flag between requests on a short socket
timeout, so shutdown is graceful but bounded.

Crash-safety: the cache is also persisted after every computed verdict
(``autosave_every``; default 1), so even a ``kill -9``'d server loses
no verdict it already answered, and the atomic
:meth:`~repro.parallel.batch.ResultCache.save` guarantees the file on
disk is always a loadable generation.
"""

from __future__ import annotations

import socket
import threading
from pathlib import Path

from repro.net.protocol import (
    LineReader,
    LineTooLong,
    MAX_LINE_BYTES,
    ProtocolError,
    decode_hypergraph,
    parse_request,
    send_json,
)
from repro.parallel.batch import ResultCache
from repro.service import EnginePool, EngineService, response_to_json


def parse_address(text: str) -> tuple[str, int]:
    """Split a ``HOST:PORT`` string (``:PORT`` alone means localhost)."""
    host, sep, port = text.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(
            f"expected HOST:PORT (e.g. 127.0.0.1:7171), got {text!r}"
        )
    return host or "127.0.0.1", int(port)


class DualityServer:
    """JSON-lines-over-TCP duality service: shared pool, shared cache."""

    #: How often (seconds) idle handler threads poll the closing flag.
    POLL_INTERVAL = 0.2

    #: How long (seconds) one response write may take before the client
    #: is declared stalled and its connection dropped.
    SEND_TIMEOUT = 30.0

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        method: str = "fk-b",
        n_jobs: int | None = 1,
        cache: ResultCache | str | Path | None = None,
        max_line_bytes: int = MAX_LINE_BYTES,
        autosave_every: int = 1,
    ) -> None:
        """Configure a server (nothing binds until :meth:`start`).

        ``port=0`` asks the OS for a free port (read it back from
        :attr:`address` after ``start``).  ``cache`` follows
        :class:`EngineService`'s convention: a live cache, a JSON path
        (loaded tolerantly now, flushed atomically while serving), or
        ``None``.  ``autosave_every`` persists the path-backed cache
        once at least that many new verdicts accumulated (1 = after
        every computed verdict; 0 disables autosave, leaving only the
        shutdown flush).
        """
        self._host = host
        self._port = port
        self.method = method
        self.n_jobs = n_jobs
        self.max_line_bytes = max_line_bytes
        self.autosave_every = autosave_every
        self._cache_path: Path | None = None
        if isinstance(cache, (str, Path)):
            self._cache_path = Path(cache)
            self.cache: ResultCache | None = ResultCache.load(self._cache_path)
        else:
            self.cache = cache
        self.pool = EnginePool(n_jobs)
        self._services: dict[str, EngineService] = {}
        # Guards the _services dict itself (stats() snapshots it while
        # solves insert); _solve_lock stays the coarse solve serializer
        # so a cheap stats request never queues behind a long solve.
        self._services_lock = threading.Lock()
        self._solve_lock = threading.Lock()
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._handlers: list[threading.Thread] = []
        self._connections: set[socket.socket] = set()
        self._conn_lock = threading.Lock()
        self._closing = threading.Event()
        self._stopped = threading.Event()
        self._count_lock = threading.Lock()
        self.connections_accepted = 0
        self.requests_served = 0
        self.errors = 0

    def _count(self, counter: str) -> None:
        with self._count_lock:
            setattr(self, counter, getattr(self, counter) + 1)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (valid after :meth:`start`)."""
        if self._listener is None:
            raise RuntimeError("server is not started")
        return self._listener.getsockname()[:2]

    def start(self) -> "DualityServer":
        """Bind, listen, and spawn the accept loop (idempotent)."""
        if self._closing.is_set():
            raise RuntimeError("server has been shut down; create a new one")
        if self._listener is not None:
            return self
        # Bind before spawning workers: a taken port must fail with
        # nothing to clean up, not leak a running pool.
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            listener.bind((self._host, self._port))
            listener.listen()
            self.pool.start()
        except BaseException:
            listener.close()
            self.pool.shutdown()
            raise
        # Poll rather than block in accept(): closing a socket does not
        # reliably wake a thread blocked in accept() on it, so a timed
        # accept checking the closing flag is what makes shutdown work.
        listener.settimeout(self.POLL_INTERVAL)
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="duality-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def shutdown(self, timeout: float = 30.0) -> None:
        """Stop serving gracefully: drain, flush the cache, close the pool.

        Safe to call from any thread (including a handler answering a
        ``shutdown`` request) and idempotent.  In-flight requests finish
        and get their responses; idle connections are closed at the
        next poll tick.
        """
        self._begin_shutdown()
        thread = self._accept_thread
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout)
        if not self._stopped.is_set():
            # start() was never called (or the accept thread is wedged):
            # finalize inline so the pool and cache are still released.
            self._finalize()

    def wait(self) -> None:
        """Block until the server has fully stopped (CLI foreground)."""
        while not self._stopped.wait(0.5):
            pass

    def __enter__(self) -> "DualityServer":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.shutdown()

    def _begin_shutdown(self) -> None:
        if self._closing.is_set():
            return
        self._closing.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover - platform quirk
                pass

    # ------------------------------------------------------------------
    # Accept loop and finalization
    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        try:
            while not self._closing.is_set():
                try:
                    conn, _addr = self._listener.accept()
                except TimeoutError:
                    continue  # poll tick: re-check the closing flag
                except OSError:
                    break  # listener closed by shutdown
                conn.settimeout(None)  # handlers set their own timeout
                self._count("connections_accepted")
                with self._conn_lock:
                    self._connections.add(conn)
                # Drop finished handler threads so a long-lived server
                # doesn't accumulate one dead Thread per connection.
                self._handlers = [
                    h for h in self._handlers if h.is_alive()
                ]
                handler = threading.Thread(
                    target=self._handle,
                    args=(conn,),
                    name=f"duality-conn-{self.connections_accepted}",
                    daemon=True,
                )
                self._handlers.append(handler)
                handler.start()
        finally:
            self._begin_shutdown()
            self._finalize()

    def _finalize(self) -> None:
        if self._stopped.is_set():
            return
        for handler in self._handlers:
            if handler is not threading.current_thread():
                handler.join(timeout=10)
        with self._conn_lock:
            leftover = list(self._connections)
            self._connections.clear()
        for conn in leftover:  # pragma: no cover - stragglers only
            try:
                conn.close()
            except OSError:
                pass
        with self._solve_lock:
            for service in self._services.values():
                service.close()  # borrowed pool/cache survive
            if self._cache_path is not None and self.cache is not None:
                if self.cache.new_since_save:
                    self.cache.save(self._cache_path)
            self.pool.shutdown()
        self._stopped.set()

    # ------------------------------------------------------------------
    # Per-connection handling
    # ------------------------------------------------------------------

    def _handle(self, conn: socket.socket) -> None:
        conn.settimeout(self.POLL_INTERVAL)
        reader = LineReader(conn, self.max_line_bytes)
        try:
            while not self._closing.is_set():
                try:
                    line = reader.readline()
                except TimeoutError:
                    continue
                except LineTooLong as exc:
                    # No trustworthy framing past an oversized line:
                    # report and hang up, leaving other clients alone.
                    self._send_error(conn, None, exc)
                    break
                if line is None:  # clean EOF or mid-request disconnect
                    break
                if not line.strip():
                    continue
                if not self._serve_line(conn, line):
                    break
        except OSError:
            # The client vanished mid-read or mid-write; its in-flight
            # request (if any) is abandoned with it.
            pass
        finally:
            with self._conn_lock:
                self._connections.discard(conn)
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass

    def _serve_line(self, conn: socket.socket, line: bytes) -> bool:
        """Answer one request line; False ends the connection."""
        try:
            request = parse_request(line)
        except ProtocolError as exc:
            self._send_error(conn, None, exc)
            return True  # framing is intact: keep serving this client
        request_id = request.get("id")
        op = request.get("op", "solve")
        try:
            if op == "ping":
                payload = {"id": request_id, "ok": True, "pong": True}
            elif op == "stats":
                payload = {"id": request_id, "ok": True, "stats": self.stats()}
            elif op == "shutdown":
                payload = {"id": request_id, "ok": True, "shutting_down": True}
            else:
                response = self._solve_request(request)
                payload = {"ok": True}
                payload.update(response_to_json(response))
                payload["id"] = request_id  # the wire id wins over the queue's
            # Count before sending: the moment the client has its
            # answer, stats() must already reflect it.
            self._count("requests_served")
        except Exception as exc:  # noqa: BLE001 - per-request error object
            self._send_error(conn, request_id, exc)
            return True
        self._send(conn, payload)
        if op == "shutdown":
            self._begin_shutdown()
            return False
        return True

    def _send(self, conn: socket.socket, payload: dict) -> None:
        """One response write under its own (generous) timeout.

        The per-connection poll timeout is for *reads*; a multi-second
        write just means the client is slow draining its buffer, not
        that anything is wrong.  A send that fails anyway — the client
        stalled past :data:`SEND_TIMEOUT` or vanished — propagates its
        ``OSError`` so the handler drops the connection: after a
        partial line there is no way to keep the stream coherent.
        """
        conn.settimeout(self.SEND_TIMEOUT)
        try:
            send_json(conn, payload)
        finally:
            conn.settimeout(self.POLL_INTERVAL)

    def _solve_request(self, request: dict):
        method = request.get("method") or self.method
        if not isinstance(method, str):
            raise ProtocolError(f"method must be a string, got {method!r}")
        if "path" in request:
            instance = str(request["path"])
        elif "g" in request and "h" in request:
            instance = (
                decode_hypergraph(request["g"]),
                decode_hypergraph(request["h"]),
            )
        else:
            raise ProtocolError(
                "a solve request needs either inline 'g' and 'h' "
                "hypergraphs or a server-side 'path'"
            )
        with self._solve_lock:
            service = self._service_for(method)
            if isinstance(instance, str):
                response = service.solve_file(instance)
            else:
                response = service.solve(*instance)
            self._maybe_autosave()
        return response

    def _service_for(self, method: str) -> EngineService:
        """The per-method service view (shared pool, shared cache)."""
        with self._services_lock:
            service = self._services.get(method)
        if service is None:
            service = EngineService(
                method=method,
                # A portfolio winner is timing-dependent — exactly what
                # a replay cache must not store (solve_many's rule).
                cache=None if method == "portfolio" else self.cache,
                pool=self.pool,
            )
            with self._services_lock:
                self._services[method] = service
        return service

    def _maybe_autosave(self) -> None:
        if (
            self.autosave_every > 0
            and self._cache_path is not None
            and self.cache is not None
            and self.cache.new_since_save >= self.autosave_every
        ):
            self.cache.save(self._cache_path)

    def _send_error(
        self, conn: socket.socket, request_id, exc: Exception
    ) -> None:
        self._count("errors")
        # A failed error write propagates like any failed response
        # write: the handler closes the connection.
        self._send(
            conn,
            {
                "id": request_id,
                "ok": False,
                "error": {
                    "type": type(exc).__name__,
                    "message": str(exc),
                },
            },
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """A JSON-safe health snapshot (also the ``stats`` op's answer)."""
        out = {
            "method": self.method,
            "n_jobs": self.pool.n_jobs,
            "connections_accepted": self.connections_accepted,
            "requests_served": self.requests_served,
            "errors": self.errors,
            "pool_generations": self.pool.generations,
            "pool_restarts": self.pool.restarts,
            "tasks_completed": self.pool.tasks_completed,
        }
        with self._services_lock:
            out["methods_served"] = sorted(self._services)
        if self.cache is not None:
            out["cache_entries"] = len(self.cache)
            out["cache_hits"] = self.cache.hits
            out["cache_misses"] = self.cache.misses
        return out
