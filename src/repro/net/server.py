"""An asyncio TCP front end over the :mod:`repro.service` scheduler.

Every connection is multiplexed onto **one event loop**: where the old
thread-per-connection server spent two OS threads per client (and
degraded past a few hundred connections), :class:`AsyncDualityServer`
holds thousands of idle connections for the cost of their sockets —
the reader of every connection is a thin coroutine, and the framing in
:mod:`repro.net.protocol` plus the completion-driven
:class:`~repro.service.ServiceTicket` scheduler mean nothing about the
solve path had to change to get there.  Verdicts stay bit-for-bit
identical to serial ``decide_duality``.

Threading model (three kinds of thread, each with one job):

* the **event loop thread** owns every connection: reading lines,
  enqueueing responses, and all per-connection state.  It never solves,
  never loads a file, and never touches the disk, so a slow instance
  cannot freeze ten thousand idle connections;
* a small **dispatcher executor** runs :meth:`EngineService.submit` —
  request decoding, cache lookup, and (at ``n_jobs=1``) the inline
  solve itself — off the loop;
* the **pool's completion threads** resolve tickets.  Each ticket's
  done-callback builds the response payload and autosaves the cache in
  that thread, then bounces the finished payload into the loop via
  ``call_soon_threadsafe`` (the bridge
  :meth:`~repro.service.ServiceTicket.add_loop_callback` documents).

Backpressure, per connection, both directions:

* **read side** — at most ``max_inflight`` solves may be scheduled and
  undelivered per connection.  Past the cap the reader coroutine parks
  on a semaphore instead of calling ``read`` — asyncio flow control
  then stops the transport, TCP stops the peer, and a client that
  pipelines a million requests buffers them in *its own* kernel, not in
  server memory.  Non-solve ops hold slots from a second, smaller
  window, so a ping flood cannot grow the outbox either;
* **write side** — each connection has one writer task draining a FIFO
  outbox with ``await writer.drain()`` under a send timeout.  A client
  that stops reading stalls only its own writer (and, through the slot
  cap, its own reader); past :data:`~AsyncDualityServer.SEND_TIMEOUT`
  the connection is declared dead and dropped.

Auth: with ``auth_token`` set, the first frame of every connection must
be an ``auth`` op carrying the token — anything else (or a wrong token)
gets one clean error line and a disconnect, and never reaches the
scheduler.

Lifecycle is unchanged from the threaded generations: :meth:`start`
binds and spawns the loop thread, :meth:`shutdown` (or a client
``shutdown`` request, or ``KeyboardInterrupt`` in the CLI) waits for
in-flight tickets to deliver, flushes the cache atomically, then closes
the pool.  Crash-safety is unchanged too: the cache persists after
every computed verdict *before* the verdict is written to the wire.
"""

from __future__ import annotations

import asyncio
import hmac
import json
import socket
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.net.protocol import (
    AuthError,
    LineTooLong,
    MAX_LINE_BYTES,
    ProtocolError,
    decode_hypergraph,
    parse_request,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.timings import TimingLog
from repro.obs.trace import Span, SpanContext, TraceSink, new_trace_id, record_span
from repro.parallel.backends import (
    PeerBackend,
    decode_shard_item,
    encode_shard_outcome,
)
from repro.parallel.batch import ResultCache
from repro.parallel.executor import SHARD_RUNNERS
from repro.service import EnginePool, EngineService, response_to_json
from repro.store import VerdictStore


def parse_address(text: str) -> tuple[str, int]:
    """Split a ``HOST:PORT`` string (``:PORT`` alone means localhost)."""
    host, sep, port = text.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(
            f"expected HOST:PORT (e.g. 127.0.0.1:7171), got {text!r}"
        )
    return host or "127.0.0.1", int(port)


class _RequestTrace:
    """The tracing state of one traced solve request.

    ``sink`` is per-request so the spans can be handed back to the
    client that asked for them; ``ctx`` parents the scheduler's phase
    spans under the ``server`` root span; ``reply`` says whether the
    client asked for the spans on the wire (a server traced only by
    ``--slow-ms``/``--trace`` keeps them local).
    """

    __slots__ = ("sink", "ctx", "root", "reply")

    def __init__(self, trace_id: str, reply: bool) -> None:
        self.sink = TraceSink(maxlen=256)
        self.root = Span(trace_id, "server")
        self.ctx = SpanContext(trace_id, self.root.span_id, self.sink)
        self.reply = reply

    def finish(self) -> list[dict]:
        """Close the root span; every span of the request as dicts."""
        self.root.finish()
        self.sink.record(self.root)
        return [item.to_dict() for item in self.sink.spans()]


class _AsyncConnection:
    """One client connection: loop-owned state plus its writer task.

    Responses are enqueued (never written directly) into a FIFO outbox
    that the connection's writer task drains with ``drain()``-based
    flow control, so one connection's lines never interleave and a
    stalled client blocks only itself.  ``slots`` is the read-side
    backpressure cap: acquired by the reader before a solve is
    dispatched, released by the writer once the response left (or the
    wire died) — a full window parks the reader, which parks the
    transport, which parks the peer.
    """

    _CLOSE = object()

    def __init__(
        self,
        index: int,
        writer: asyncio.StreamWriter,
        max_inflight: int,
        op_window: int,
        send_timeout: float,
    ) -> None:
        self.index = index
        self.writer = writer
        self.dead = False  # a send failed or timed out; the wire is gone
        self.authenticated = False
        #: Solves dispatched and not yet enqueued for writing.  Touched
        #: only on the event loop thread; read (atomically) by stats.
        self.pending = 0
        self.slots = asyncio.Semaphore(max_inflight)
        self.op_slots = asyncio.Semaphore(op_window)
        self.outbox: asyncio.Queue = asyncio.Queue()
        self.send_timeout = send_timeout
        self.writer_task: asyncio.Task | None = None
        self._closed = False

    # -- the write side (the only code that touches the transport) -----

    async def write_loop(self) -> None:
        while True:
            payload, kind = await self.outbox.get()
            if payload is self._CLOSE:
                return
            if not self.dead:
                try:
                    self.writer.write(
                        json.dumps(payload).encode("utf-8") + b"\n"
                    )
                    await asyncio.wait_for(
                        self.writer.drain(), self.send_timeout
                    )
                except (OSError, TimeoutError):
                    # Stalled past the send timeout or vanished: the
                    # connection is over; computed verdicts are already
                    # cached — only their delivery is lost.
                    self.dead = True
            if kind == "solve":
                self.slots.release()
            elif kind == "op":
                self.op_slots.release()

    async def send_op(self, payload: dict) -> None:
        """Enqueue one inline-op response (bounded by the op window)."""
        await self.op_slots.acquire()
        self.outbox.put_nowait((payload, "op"))

    def enqueue_solve(self, payload: dict) -> None:
        """Enqueue one solve response (its slot is already held)."""
        self.outbox.put_nowait((payload, "solve"))

    async def aclose(self) -> None:
        """Flush the outbox, stop the writer, close the transport."""
        if self._closed:
            return
        self._closed = True
        self.outbox.put_nowait((self._CLOSE, None))
        if self.writer_task is not None:
            try:
                await asyncio.wait_for(self.writer_task, 10)
            except (TimeoutError, asyncio.CancelledError):
                pass
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (OSError, asyncio.CancelledError):  # already broken
            pass


class AsyncDualityServer:
    """JSON-lines duality scheduler on one event loop: 10k connections,
    per-connection backpressure, shared warm pool, shared cache."""

    #: How many solves one connection may have scheduled-but-undelivered
    #: before the server stops reading from it (asyncio flow control
    #: then pushes back all the way to the client's send buffer).
    MAX_INFLIGHT = 64

    #: The same cap for inline ops (ping/stats): a response window so a
    #: ping flood from a non-reading client cannot grow the outbox.
    OP_WINDOW = 32

    #: How long (seconds) one response write may take before the client
    #: is declared stalled and its connection dropped.
    SEND_TIMEOUT = 30.0

    #: How long (seconds) a closing connection or server waits for its
    #: in-flight tickets to deliver before giving up on them.
    DRAIN_TIMEOUT = 30.0

    #: listen(2) backlog — high enough for a reconnect stampede.
    BACKLOG = 512

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        method: str = "fk-b",
        n_jobs: int | None = 1,
        cache: ResultCache | str | Path | None = None,
        max_line_bytes: int = MAX_LINE_BYTES,
        autosave_every: int = 1,
        cache_max_entries: int | None = None,
        max_inflight: int = MAX_INFLIGHT,
        auth_token: str | None = None,
        slow_ms: float | None = None,
        trace_requests: bool = False,
        timings: str | Path | None = None,
        store: VerdictStore | str | Path | None = None,
        peers: list | None = None,
        peer_auth_token: str | None = None,
        hedge_ms: float | None = None,
    ) -> None:
        """Configure a server (nothing binds until :meth:`start`).

        ``port=0`` asks the OS for a free port (read it back from
        :attr:`address` after ``start``).  ``cache`` follows
        :class:`EngineService`'s convention: a live cache, a JSON path
        (loaded tolerantly now, flushed atomically while serving), or
        ``None``; ``cache_max_entries`` caps a path-loaded cache with
        LRU eviction.  ``autosave_every`` persists the path-backed
        cache once at least that many new verdicts accumulated (0
        disables autosave, leaving only the shutdown flush).
        ``max_inflight`` is the per-connection backpressure cap;
        ``auth_token`` (when set) makes the first frame of every
        connection a mandatory ``auth`` op.

        ``store`` (a :class:`~repro.store.VerdictStore` or a path,
        mutually exclusive with ``cache``) replaces the whole-file
        autosave with the durable journal/SQLite store: every computed
        verdict is one fsync'd append *before* it reaches the wire, two
        server processes can share one store file, and per-engine
        timings default into the store's ``timings`` table (an explicit
        ``timings`` path still wins).  A legacy ``cache.json`` at the
        store path is imported automatically on open.

        Observability knobs (all off by default, all verdict-neutral):
        ``slow_ms`` logs one structured JSON line to stderr — with the
        request's span breakdown — for every solve slower than that
        many milliseconds; ``trace_requests`` traces *every* solve
        server-side (clients can always trace their own requests with
        the ``trace`` field regardless); ``timings`` appends one JSONL
        row per computed solve (engine, elapsed, structural features)
        to the given path.

        ``peers`` (a list of ``"host:port"`` worker addresses) turns
        this server into a *coordinator*: parallel-method solves shard
        through a :class:`~repro.parallel.backends.PeerBackend` onto
        the fleet via the ``solve_shard`` op instead of the local
        pool, with hedged retries after ``hedge_ms`` milliseconds
        (``None`` keeps the backend's default deadline).
        ``peer_auth_token`` authenticates the outgoing peer
        connections (a fleet usually shares one secret).  Every server
        answers ``solve_shard`` regardless, so any ``repro serve``
        process can be a worker.
        """
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be positive, got {max_inflight}")
        self._host = host
        self._port = port
        self.method = method
        self.n_jobs = n_jobs
        self.max_line_bytes = max_line_bytes
        self.autosave_every = autosave_every
        self.max_inflight = max_inflight
        self._auth_token = auth_token
        self._cache_path: Path | None = None
        if store is not None and cache is not None:
            raise ValueError(
                "pass either cache= (legacy whole-file persistence) or "
                "store= (durable journal/SQLite store), not both"
            )
        self._owns_store = isinstance(store, (str, Path))
        self.store: VerdictStore | None = (
            VerdictStore(store) if self._owns_store else store
        )
        if self.store is not None:
            # Write-through LRU over the store: puts are journal
            # appends, so _maybe_autosave's whole-file path naturally
            # never fires (new_since_save stays 0).
            self.cache: ResultCache | None = ResultCache(
                max_entries=cache_max_entries, backend=self.store
            )
        elif isinstance(cache, (str, Path)):
            self._cache_path = Path(cache)
            self.cache = ResultCache.load(
                self._cache_path, max_entries=cache_max_entries
            )
        else:
            self.cache = cache
        self.pool = EnginePool(n_jobs)
        self.shard_backend: PeerBackend | None = None
        if peers:
            if hedge_ms is None:
                hedge_after = PeerBackend.DEFAULT_HEDGE_AFTER
            else:
                # 0 (or negative) disables the hedging deadline; drop
                # retries on a dead peer still fire immediately.
                hedge_after = hedge_ms / 1000.0 if hedge_ms > 0 else None
            self.shard_backend = PeerBackend(
                peers, auth_token=peer_auth_token, hedge_after=hedge_after
            )
        self._services: dict[str, EngineService] = {}
        # Guards the _services dict itself (stats() snapshots it while
        # the loop inserts); solves schedule concurrently on the pool.
        self._services_lock = threading.Lock()
        self._listener: socket.socket | None = None
        self._thread: threading.Thread | None = None
        self._dispatcher: ThreadPoolExecutor | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._shutdown_event: asyncio.Event | None = None
        self._connections: set[_AsyncConnection] = set()
        self._conn_lock = threading.Lock()
        self._handler_tasks: set[asyncio.Task] = set()
        self._closing = threading.Event()
        self._stopped = threading.Event()
        self._ready = threading.Event()
        self._start_error: BaseException | None = None
        self._count_lock = threading.Lock()
        #: Server-wide in-flight solves (dispatched, response not yet
        #: enqueued).  Mutated only on the loop thread; shutdown's drain
        #: polls it so every scheduled verdict gets delivered (or its
        #: connection declared dead) before the pool closes.
        self._inflight = 0
        self.slow_ms = slow_ms
        self.trace_requests = trace_requests
        # One shared log for every per-method service view; with a
        # store and no explicit path, timings land in the store's table.
        if timings is not None:
            self.timings = TimingLog(timings)
        elif self.store is not None:
            self.timings = self.store.timing_log()
        else:
            self.timings = None
        self.connections_accepted = 0
        self.requests_served = 0
        self.errors = 0
        #: The unified metrics registry (the ``metrics`` op's answer).
        self.registry = MetricsRegistry()
        self.latency = self.registry.histogram(
            "solve_latency_seconds",
            "Solve wall time, dispatch to response build (seconds)",
        )
        self._requests_by_op = self.registry.counter(
            "requests_total", "Requests answered, by op", ("op",)
        )
        self._errors_by_op = self.registry.counter(
            "errors_total", "Error responses, by op", ("op",)
        )
        self.registry.gauge_fn(
            "connections_open",
            "Currently open client connections",
            lambda: len(self._connections),
        )
        self.registry.gauge_fn(
            "connections_accepted_total",
            "Client connections accepted",
            lambda: self.connections_accepted,
        )
        self.registry.gauge_fn(
            "requests_inflight",
            "Solves dispatched and not yet delivered",
            lambda: self._inflight,
        )
        self.pool.register_metrics(self.registry)
        if self.shard_backend is not None:
            self.shard_backend.register_metrics(self.registry)
        if self.cache is not None:
            self.cache.register_metrics(self.registry)
        if self.store is not None:
            self.store.register_metrics(self.registry)

    def _count(self, counter: str) -> None:
        with self._count_lock:
            setattr(self, counter, getattr(self, counter) + 1)

    def _tally(self, op: str) -> None:
        """One answered request: the plain counter plus its per-op series."""
        self._count("requests_served")
        self._requests_by_op.inc(op=op)

    def _tally_error(self, op: str) -> None:
        """One error response: the plain counter plus its per-op series."""
        self._count("errors")
        self._errors_by_op.inc(op=op)

    # ------------------------------------------------------------------
    # Lifecycle (the sync facade around the loop thread)
    # ------------------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (valid after :meth:`start`)."""
        if self._listener is None:
            raise RuntimeError("server is not started")
        return self._listener.getsockname()[:2]

    def start(self) -> "AsyncDualityServer":
        """Bind, listen, and spawn the event loop thread (idempotent)."""
        if self._closing.is_set():
            raise RuntimeError("server has been shut down; create a new one")
        if self._thread is not None:
            return self
        # Bind before spawning workers: a taken port must fail with
        # nothing to clean up, not leak a running pool.
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            listener.bind((self._host, self._port))
            listener.listen(self.BACKLOG)
            listener.setblocking(False)
            self.pool.start()
        except BaseException:
            listener.close()
            self.pool.shutdown()
            raise
        self._listener = listener
        # Dispatch (submit + inline solves at n_jobs=1) runs here, off
        # the loop; two threads minimum so a cache hit is never parked
        # behind one slow inline solve.
        self._dispatcher = ThreadPoolExecutor(
            max_workers=max(2, self.pool.n_jobs),
            thread_name_prefix="duality-dispatch",
        )
        self._thread = threading.Thread(
            target=self._thread_main, name="duality-loop", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._start_error is not None:
            error = self._start_error
            self._thread.join(timeout=10)
            raise error
        return self

    def shutdown(self, timeout: float = 60.0) -> None:
        """Stop serving gracefully: deliver in-flight verdicts, flush
        the cache, close the pool.

        Safe to call from any thread and idempotent.  In-flight
        requests finish and get their responses; idle connections see a
        clean EOF.
        """
        self._closing.set()
        if self._thread is None:
            # start() was never called: still release the pool and
            # flush whatever the cache holds.
            self._finalize()
            return
        self._bounce_to_loop(self._signal_shutdown)
        self._stopped.wait(timeout)
        if self._thread is not threading.current_thread():
            self._thread.join(timeout)

    def wait(self) -> None:
        """Block until the server has fully stopped (CLI foreground)."""
        while not self._stopped.wait(0.5):
            pass

    def __enter__(self) -> "AsyncDualityServer":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.shutdown()

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # pragma: no cover - defensive
            if not self._ready.is_set():
                self._start_error = exc
                self._ready.set()
        finally:
            self._finalize()

    def _finalize(self) -> None:
        """Release everything (runs after the loop exits, or inline when
        the server never started)."""
        if self._stopped.is_set():
            return
        self._closing.set()
        if self._dispatcher is not None:
            # Queued dispatches are cancelled; a running inline solve is
            # awaited (threads cannot be killed, and its ticket resolves
            # into a closed connection harmlessly).
            self._dispatcher.shutdown(wait=True, cancel_futures=True)
        with self._services_lock:
            services = list(self._services.values())
        for service in services:
            service.close()  # borrowed pool/cache survive
        if self._cache_path is not None and self.cache is not None:
            if self.cache.new_since_save:
                self.cache.save(self._cache_path)
        if self.timings is not None:
            self.timings.close()
        if self._owns_store and self.store is not None:
            self.store.close()
        if self.shard_backend is not None:
            self.shard_backend.close()
        self.pool.shutdown()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover - already closed
                pass
        self._stopped.set()

    def _signal_shutdown(self) -> None:
        """Loop-side shutdown trigger (idempotent)."""
        if self._shutdown_event is not None:
            self._shutdown_event.set()

    def _bounce_to_loop(self, fn, *args) -> None:
        """Run ``fn(*args)`` on the event loop from any thread.

        A loop that already closed (shutdown past its drain deadline)
        swallows the bounce: by then nobody is listening.
        """
        loop = self._loop
        if loop is None:
            return
        try:
            loop.call_soon_threadsafe(fn, *args)
        except RuntimeError:
            pass

    # ------------------------------------------------------------------
    # The event loop
    # ------------------------------------------------------------------

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._shutdown_event = asyncio.Event()
        if self._closing.is_set():  # shutdown raced start
            self._shutdown_event.set()
        try:
            server = await asyncio.start_server(
                self._handle,
                sock=self._listener,
                limit=self.max_line_bytes,
                backlog=self.BACKLOG,
            )
        except BaseException as exc:
            self._start_error = exc
            self._ready.set()
            return
        self._ready.set()
        try:
            await self._shutdown_event.wait()
        finally:
            self._closing.set()
            server.close()
            await server.wait_closed()
            # Every scheduled ticket delivers (or its client is declared
            # dead) before the workers disappear underneath it.
            deadline = self._loop.time() + self.DRAIN_TIMEOUT
            while self._inflight > 0 and self._loop.time() < deadline:
                await asyncio.sleep(0.05)
            with self._conn_lock:
                leftover = list(self._connections)
                self._connections.clear()
            await asyncio.gather(
                *(conn.aclose() for conn in leftover), return_exceptions=True
            )
            tasks = {t for t in self._handler_tasks if not t.done()}
            if tasks:
                await asyncio.wait(tasks, timeout=5)

    # ------------------------------------------------------------------
    # Per-connection handling (all on the loop thread)
    # ------------------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._count("connections_accepted")
        conn = _AsyncConnection(
            self.connections_accepted,
            writer,
            self.max_inflight,
            self.OP_WINDOW,
            self.SEND_TIMEOUT,
        )
        conn.writer_task = asyncio.ensure_future(conn.write_loop())
        task = asyncio.current_task()
        if task is not None:
            self._handler_tasks.add(task)
            task.add_done_callback(self._handler_tasks.discard)
        with self._conn_lock:
            self._connections.add(conn)
        try:
            while not (self._closing.is_set() or conn.dead):
                line = await self._read_line(conn, reader)
                if line is None:
                    break
                if not line.strip():
                    continue
                if not await self._serve_line(conn, line):
                    break
        except (OSError, ConnectionError):
            # The client vanished mid-read; its in-flight requests (if
            # any) still resolve below — their sends just go nowhere.
            pass
        finally:
            # Let this connection's in-flight tickets deliver, flush
            # the outbox in order, then release the transport.
            await self._await_conn_pending(conn)
            with self._conn_lock:
                self._connections.discard(conn)
            await conn.aclose()

    async def _read_line(
        self, conn: _AsyncConnection, reader: asyncio.StreamReader
    ) -> bytes | None:
        """One request line; ``None`` ends the connection.

        A clean EOF and a mid-request disconnect (trailing partial
        line) both end it quietly; an oversized line gets a
        ``LineTooLong`` error response first, because a half-read line
        has no trustworthy resynchronisation point.
        """
        try:
            return await reader.readuntil(b"\n")
        except asyncio.IncompleteReadError:
            return None
        except asyncio.LimitOverrunError:
            self._tally_error("protocol")
            await conn.send_op(
                self._error_payload(
                    None,
                    LineTooLong(
                        f"request line exceeds {self.max_line_bytes} bytes "
                        "without a newline"
                    ),
                )
            )
            return None
        except (OSError, ConnectionError):
            return None

    async def _serve_line(self, conn: _AsyncConnection, line: bytes) -> bool:
        """Dispatch one request line; False ends the connection."""
        try:
            request = parse_request(line)
        except ProtocolError as exc:
            self._tally_error("protocol")
            await conn.send_op(self._error_payload(None, exc))
            return True  # framing is intact: keep serving this client
        request_id = request.get("id")
        op = request.get("op", "solve")
        if self._auth_token is not None and not conn.authenticated:
            if op != "auth" or not self._token_matches(request):
                self._tally_error("auth")
                message = (
                    "wrong token"
                    if op == "auth"
                    else (
                        "authentication required: the first request "
                        "must be an 'auth' op with the server's token"
                    )
                )
                await conn.send_op(
                    self._error_payload(request_id, AuthError(message))
                )
                return False  # one clean error line, then disconnect
            conn.authenticated = True
            self._tally("auth")
            await conn.send_op(
                {"id": request_id, "ok": True, "authenticated": True}
            )
            return True
        if op == "auth":
            # No token required (or a redundant re-auth): fine, unless
            # the token is configured and this one is wrong.
            if self._auth_token is not None and not self._token_matches(request):
                self._tally_error("auth")
                await conn.send_op(
                    self._error_payload(request_id, AuthError("wrong token"))
                )
                return False
            self._tally("auth")
            await conn.send_op(
                {"id": request_id, "ok": True, "authenticated": True}
            )
            return True
        if op == "ping":
            self._tally("ping")
            await conn.send_op({"id": request_id, "ok": True, "pong": True})
            return True
        if op == "stats":
            self._tally("stats")
            await conn.send_op(
                {"id": request_id, "ok": True, "stats": self.stats()}
            )
            return True
        if op == "metrics":
            self._tally("metrics")
            await conn.send_op(
                {
                    "id": request_id,
                    "ok": True,
                    "metrics": self.registry.expose(),
                }
            )
            return True
        if op == "shutdown":
            # This connection's own solves are tracked; once they have
            # been enqueued, FIFO ordering puts them on the wire before
            # the shutdown acknowledgement.
            await self._await_conn_pending(conn)
            self._tally("shutdown")
            await conn.send_op(
                {"id": request_id, "ok": True, "shutting_down": True}
            )
            self._signal_shutdown()
            return False
        # op in ("solve", "solve_shard"): acquire a backpressure slot
        # *before* reading any further — a connection at its cap parks
        # here, the transport pauses, and the client's pipeline backs up
        # into the client's own buffers instead of server memory.
        await conn.slots.acquire()
        conn.pending += 1
        self._inflight += 1
        dispatch = (
            self._dispatch_shard_and_watch
            if op == "solve_shard"
            else self._dispatch_and_watch
        )
        try:
            self._dispatcher.submit(dispatch, conn, request)
        except RuntimeError:  # dispatcher closed: the server is closing
            conn.pending -= 1
            self._inflight -= 1
            conn.slots.release()
            return False
        return True

    def _token_matches(self, request: dict) -> bool:
        token = request.get("token")
        return isinstance(token, str) and hmac.compare_digest(
            token, self._auth_token
        )

    async def _await_conn_pending(self, conn: _AsyncConnection) -> None:
        deadline = self._loop.time() + self.DRAIN_TIMEOUT
        while conn.pending > 0 and self._loop.time() < deadline:
            await asyncio.sleep(0.02)

    # ------------------------------------------------------------------
    # The solve path (dispatcher + completion threads)
    # ------------------------------------------------------------------

    def _request_trace(self, request: dict) -> _RequestTrace | None:
        """The tracing state for one solve request (``None`` — the
        common case — means zero tracing work on the whole path).

        A request is traced when the client asked (``trace`` field: a
        trace-id string to adopt, or ``true`` to mint one here) or the
        server traces everything (``trace_requests`` / ``slow_ms``).
        Only a client-requested trace is echoed on the response.
        """
        requested = request.get("trace")
        if not (requested or self.trace_requests or self.slow_ms is not None):
            return None
        if isinstance(requested, str) and requested:
            trace_id = requested
        else:
            trace_id = new_trace_id()
        return _RequestTrace(trace_id, reply=bool(requested))

    def _dispatch_and_watch(self, conn: _AsyncConnection, request: dict) -> None:
        """Submit one solve to the scheduler (dispatcher thread).

        At ``n_jobs=1`` the submit runs the solve inline right here —
        which is exactly why this is not the loop thread.
        """
        request_id = request.get("id")
        started = time.monotonic()
        trace = self._request_trace(request)
        try:
            ticket = self._dispatch(request, trace)
        except Exception as exc:  # noqa: BLE001 - per-request error object
            self._tally_error("solve")
            self._bounce_to_loop(
                self._deliver, conn, self._error_payload(request_id, exc)
            )
            return
        ticket.add_done_callback(
            lambda t: self._finish_request(conn, request_id, started, trace, t)
        )

    def _dispatch_shard_and_watch(
        self, conn: _AsyncConnection, request: dict
    ) -> None:
        """Run one remote shard on the local pool (dispatcher thread).

        The worker half of the ``solve_shard`` op: decode the shard to
        the exact item a local :class:`WorkerPool` would have built,
        run it through the same module-level runner, and answer with
        the runner's outcome — so a coordinator's merge sees
        bit-for-bit what local sharding would have produced.
        """
        request_id = request.get("id")
        started = time.monotonic()
        trace = self._request_trace(request)
        try:
            decode_start = time.time()
            kind, item = decode_shard_item(request.get("shard"))
            if trace is not None:
                record_span(
                    trace.ctx, "decode-shard", decode_start, time.time(), kind=kind
                )
            future = self.pool.submit(SHARD_RUNNERS[kind], item, collect=False)
        except Exception as exc:  # noqa: BLE001 - per-request error object
            self._tally_error("solve_shard")
            self._bounce_to_loop(
                self._deliver, conn, self._error_payload(request_id, exc)
            )
            return
        future.add_done_callback(
            lambda settled: self._finish_shard(
                conn, request_id, kind, started, trace, settled
            )
        )

    def _finish_shard(
        self,
        conn: _AsyncConnection,
        request_id,
        kind: str,
        started: float,
        trace: _RequestTrace | None,
        future,
    ) -> None:
        """One shard settled: encode its outcome and bounce it into the
        loop (runs in whichever thread completed the shard)."""
        error = future.exception()
        if error is not None:
            self._tally_error("solve_shard")
            payload = self._error_payload(request_id, error)
        else:
            serialize_start = time.time()
            payload = {
                "id": request_id,
                "ok": True,
                "outcome": encode_shard_outcome(kind, future.result()),
            }
            if trace is not None:
                record_span(
                    trace.ctx, "serialize", serialize_start, time.time()
                )
            self._tally("solve_shard")
            self.latency.observe(time.monotonic() - started)
        if trace is not None:
            spans = trace.finish()
            if trace.reply and payload.get("ok"):
                payload["trace"] = {"id": trace.ctx.trace_id, "spans": spans}
            self._maybe_log_slow(request_id, started, trace, spans)
        self._bounce_to_loop(self._deliver, conn, payload)

    def _dispatch(self, request: dict, trace: _RequestTrace | None = None):
        """Schedule one solve on the shared scheduler; its ticket."""
        parse_start = time.time()
        method = request.get("method") or self.method
        if not isinstance(method, str):
            raise ProtocolError(f"method must be a string, got {method!r}")
        if "path" in request:
            instance = str(request["path"])
        elif "g" in request and "h" in request:
            instance = (
                decode_hypergraph(request["g"]),
                decode_hypergraph(request["h"]),
            )
        else:
            raise ProtocolError(
                "a solve request needs either inline 'g' and 'h' "
                "hypergraphs or a server-side 'path'"
            )
        if trace is not None:
            record_span(
                trace.ctx,
                "parse",
                parse_start,
                time.time(),
                inline="path" not in request,
                method=method,
            )
        service = self._service_for(method)
        return service.submit(
            instance, collect=False, trace=trace.ctx if trace else None
        )

    def _finish_request(
        self,
        conn: _AsyncConnection,
        request_id,
        started: float,
        trace: _RequestTrace | None,
        ticket,
    ) -> None:
        """One ticket resolved: build its response and bounce it into
        the loop.  Runs in whatever thread completed the solve — never
        the loop thread, so the autosave's disk write cannot stall ten
        thousand other connections.
        """
        error = ticket.exception()
        if error is not None:
            self._tally_error("solve")
            payload = self._error_payload(request_id, error)
        else:
            payload = {"ok": True}
            serialize_start = time.time()
            payload.update(response_to_json(ticket.result()))
            payload["id"] = request_id  # the wire id wins over the queue's
            if trace is not None:
                record_span(
                    trace.ctx, "serialize", serialize_start, time.time()
                )
            # Persist before the client can read the verdict: a crash
            # after this send loses nothing the client saw.
            self._maybe_autosave()
            self._tally("solve")
            self.latency.observe(time.monotonic() - started)
        if trace is not None:
            spans = trace.finish()
            if trace.reply and payload.get("ok"):
                payload["trace"] = {
                    "id": trace.ctx.trace_id,
                    "spans": spans,
                }
            self._maybe_log_slow(request_id, started, trace, spans)
        self._bounce_to_loop(self._deliver, conn, payload)

    def _maybe_log_slow(
        self, request_id, started: float, trace: _RequestTrace, spans: list[dict]
    ) -> None:
        """One structured stderr line per slow solve, with its span
        breakdown — greppable, one JSON object per line."""
        if self.slow_ms is None:
            return
        elapsed_ms = (time.monotonic() - started) * 1000
        if elapsed_ms < self.slow_ms:
            return
        breakdown = {}
        for item in spans:
            end = item.get("end")
            if end is not None:
                duration = round((end - item["start"]) * 1000, 3)
                name = item["name"]
                breakdown[name] = max(duration, breakdown.get(name, 0.0))
        line = {
            "event": "slow_request",
            "id": request_id,
            "trace_id": trace.ctx.trace_id,
            "elapsed_ms": round(elapsed_ms, 3),
            "threshold_ms": self.slow_ms,
            "spans_ms": breakdown,
        }
        print(json.dumps(line, separators=(",", ":")), file=sys.stderr, flush=True)

    def _deliver(self, conn: _AsyncConnection, payload: dict) -> None:
        """Loop thread: hand one finished response to the writer."""
        conn.pending -= 1
        self._inflight -= 1
        conn.enqueue_solve(payload)

    def _service_for(self, method: str) -> EngineService:
        """The per-method service view (shared pool, shared cache)."""
        with self._services_lock:
            service = self._services.get(method)
            if service is None:
                service = EngineService(
                    method=method,
                    # A portfolio (or auto-race) winner is timing-
                    # dependent — exactly what a replay cache must not
                    # store (solve_many's rule).  Timings still flow:
                    # self.timings is shared below, so auto solves feed
                    # the online-learning corpus even without a cache.
                    cache=None if method in ("portfolio", "auto") else self.cache,
                    pool=self.pool,
                    timings=self.timings,
                    shard_backend=self.shard_backend,
                )
                self._services[method] = service
        return service

    def _maybe_autosave(self) -> None:
        if (
            self.autosave_every > 0
            and self._cache_path is not None
            and self.cache is not None
            and self.cache.new_since_save >= self.autosave_every
        ):
            self.cache.save(self._cache_path)

    @staticmethod
    def _error_payload(request_id, exc: BaseException) -> dict:
        return {
            "id": request_id,
            "ok": False,
            "error": {
                "type": type(exc).__name__,
                "message": str(exc),
            },
        }

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """A JSON-safe health snapshot (also the ``stats`` op's answer).

        Beyond the request/pool/cache counters, reports the
        backpressure state (per-connection in-flight, the cap),
        per-op request and error tallies, and service-time percentiles
        over the recent-request window.
        """
        with self._conn_lock:
            open_conns = [(c.index, c.pending) for c in self._connections]
        requests_by_op = {
            op: int(count) for op, count in self._requests_by_op.as_dict().items()
        }
        errors_by_op = {
            op: int(count) for op, count in self._errors_by_op.as_dict().items()
        }
        out = {
            "method": self.method,
            "n_jobs": self.pool.n_jobs,
            "auth_required": self._auth_token is not None,
            "max_inflight": self.max_inflight,
            "connections_accepted": self.connections_accepted,
            "connections_open": len(open_conns),
            "requests_served": self.requests_served,
            "requests_by_op": requests_by_op,
            "requests_inflight": self._inflight,
            "inflight_per_connection": {
                str(index): pending
                for index, pending in open_conns
                if pending
            },
            "errors": self.errors,
            "errors_by_op": errors_by_op,
            "latency": self.latency.snapshot_ms(),
            "pool_generations": self.pool.generations,
            "pool_restarts": self.pool.restarts,
            "tasks_completed": self.pool.tasks_completed,
        }
        with self._services_lock:
            out["methods_served"] = sorted(self._services)
            services = list(self._services.values())
        by_origin = {"computed": 0, "cache": 0, "dedup": 0}
        for service in services:
            for origin, count in service.stats()["by_origin"].items():
                by_origin[origin] = by_origin.get(origin, 0) + count
        out["responses_by_origin"] = by_origin
        if self.cache is not None:
            out["cache_entries"] = len(self.cache)
            out["cache_hits"] = self.cache.hits
            out["cache_misses"] = self.cache.misses
            out["cache_evictions"] = self.cache.evictions
        if self.store is not None:
            out["store"] = self.store.stats()
        if self.shard_backend is not None:
            out["peers"] = self.shard_backend.stats()
        return out


#: The event-loop server is *the* server since PR 6 (the threaded
#: generations are gone); the historical name stays as the API.
DualityServer = AsyncDualityServer
