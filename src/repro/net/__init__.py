"""Network front end: the duality scheduler over TCP, many clients at once.

:mod:`repro.service` made many concurrent calls cheap inside one
process; this package puts them on a socket.  An
:class:`AsyncDualityServer` multiplexes any number of connections —
thousands of them, on one event loop — onto **one** warm
:class:`~repro.service.EnginePool` and **one** thread-safe, crash-safe
:class:`~repro.parallel.batch.ResultCache`, with no solve lock: every
request is dispatched straight to the service scheduler and its
response is written the moment the verdict exists, out of request
order when a fast instance overtakes a slow one.  Backpressure is per
connection (a max-inflight cap pauses *reading*; ``drain()`` throttles
*writing*), so one firehosing or stalled client affects only itself,
and an optional shared-secret token gates every connection's first
frame.

Clients talk JSON lines (:mod:`repro.net.protocol`), shipping
instances inline through the lossless vertex codec and re-ordering
pipelined answers by their echoed ``id``: :class:`AsyncDualityClient`
for coroutine code (windowless pipelining under ``drain()`` flow
control), :class:`DualityClient` as the blocking wrapper for scripts
and the CLI.  ``repro serve --listen HOST:PORT`` on the server side,
``repro client HOST:PORT`` on the client side.

Layering: ``repro.net`` sits on top of ``repro.service`` (it drives
:class:`~repro.service.EngineService` views); nothing below imports it,
and library use without a network never pays for it.
"""

from repro.net.client import AsyncDualityClient, DualityClient
from repro.net.protocol import (
    AuthError,
    LineTooLong,
    MAX_LINE_BYTES,
    ProtocolError,
    RequestError,
    decode_hypergraph,
    encode_hypergraph,
    parse_response,
)
from repro.net.server import AsyncDualityServer, DualityServer, parse_address

__all__ = [
    "AsyncDualityClient",
    "AsyncDualityServer",
    "AuthError",
    "DualityClient",
    "DualityServer",
    "LineTooLong",
    "MAX_LINE_BYTES",
    "ProtocolError",
    "RequestError",
    "decode_hypergraph",
    "encode_hypergraph",
    "parse_address",
    "parse_response",
]
