"""A client library for the JSON-lines duality service.

:class:`DualityClient` speaks the :mod:`repro.net.protocol` wire format
to a :class:`~repro.net.server.DualityServer`: connect once, then
``solve`` / ``solve_many`` as often as the session needs — the server
keeps its pool warm and its cache hot between requests.  Instances are
shipped *inline* through the lossless codec (``.hg`` paths are read on
the client's machine), so client and server need not share a
filesystem; :meth:`DualityClient.solve_server_path` asks the server to
load one of its own files instead.

Responses are the plain JSON dicts of the wire (the
:func:`repro.service.response_to_json` fields): ``solve`` raises
:class:`~repro.net.protocol.RequestError` on a per-request error, while
``solve_many`` pipelines requests onto the socket and collects answers
**as they arrive — out of request order** when the server's concurrent
scheduler finishes a fast instance ahead of a slow one.  Arrivals are
matched to requests by their echoed ``id``, and the results still come
back in input order, with error responses in-line (``"ok": false``) so
one bad instance cannot hide the other verdicts.
"""

from __future__ import annotations

import socket
from pathlib import Path

from repro.hypergraph import Hypergraph
from repro.net.protocol import (
    LineReader,
    MAX_LINE_BYTES,
    ProtocolError,
    RequestError,
    encode_hypergraph,
    parse_response,
    send_json,
)
from repro.parallel.batch import load_instance


class DualityClient:
    """Connect / solve / solve_many / close over one TCP connection."""

    #: How many ``solve_many`` requests may be in flight at once.  The
    #: concurrent server reads ahead and answers out of order, but a
    #: bounded window still caps how much response data can pile up in
    #: kernel buffers (and how much scheduling state either side holds)
    #: while keeping the pool saturated.
    PIPELINE_WINDOW = 32

    def __init__(
        self,
        host: str,
        port: int | None = None,
        timeout: float = 60.0,
        max_line_bytes: int = MAX_LINE_BYTES,
    ) -> None:
        """Connect to ``host:port`` (or one ``"HOST:PORT"`` string).

        ``timeout`` bounds every blocking socket operation; a server
        that stops answering surfaces as ``TimeoutError`` rather than a
        hang.
        """
        if port is None:
            from repro.net.server import parse_address

            host, port = parse_address(host)
        self._address = (host, port)
        self._sock: socket.socket | None = socket.create_connection(
            self._address, timeout=timeout
        )
        self._reader = LineReader(self._sock, max_line_bytes)
        self._next_id = 0

    # ------------------------------------------------------------------
    # Wire plumbing
    # ------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._sock is None

    def _require_open(self) -> socket.socket:
        if self._sock is None:
            raise RuntimeError("client is closed; connect a new DualityClient")
        return self._sock

    def _send(self, request: dict) -> int:
        """Assign an id and put one request on the wire.

        A failed (possibly partial) write closes the client, same as a
        failed read: a half-written frame leaves nothing trustworthy to
        append a next request to.
        """
        sock = self._require_open()
        request_id = self._next_id
        self._next_id += 1
        request["id"] = request_id
        try:
            send_json(sock, request)
        except BaseException:
            self.close()
            raise
        return request_id

    def _read_response(self) -> dict:
        """Read the next response line off the wire, whatever its id.

        Any failure here — a timeout, a cut connection, a malformed
        response — closes the client: after a missed or half-read
        answer the stream has no trustworthy next frame.
        """
        self._require_open()
        try:
            line = self._reader.readline()
            if line is None:
                raise ConnectionError(
                    "server closed the connection before answering"
                )
            return parse_response(line)
        except BaseException:
            self.close()
            raise

    def _receive(self, request_id: int) -> dict:
        """Read one response line and match it to ``request_id``.

        For single-outstanding-request round trips: with nothing else
        in flight the next response *must* answer this request, so a
        mismatched id is a desynced stream and closes the client.
        Pipelined callers use :meth:`_receive_any` instead, because the
        concurrent server legitimately answers out of request order.
        """
        response = self._read_response()
        if response.get("id") != request_id:
            self.close()
            raise ProtocolError(
                f"response id {response.get('id')!r} does not match request "
                f"id {request_id} (no other request was outstanding)"
            )
        return response

    def _receive_any(self, outstanding: set[int]) -> tuple[int, dict]:
        """Read the next response and match it to *some* outstanding id."""
        response = self._read_response()
        request_id = response.get("id")
        if request_id not in outstanding:
            self.close()
            raise ProtocolError(
                f"response id {request_id!r} does not match any outstanding "
                f"request ({sorted(outstanding)})"
            )
        outstanding.discard(request_id)
        return request_id, response

    def request(self, request: dict) -> dict:
        """One raw request/response round trip (ids handled here)."""
        return self._receive(self._send(request))

    @staticmethod
    def _checked(response: dict) -> dict:
        if not response.get("ok"):
            raise RequestError(response.get("error") or {})
        return response

    # ------------------------------------------------------------------
    # The service API
    # ------------------------------------------------------------------

    def ping(self) -> bool:
        """Liveness probe: True when the server answers."""
        return bool(self._checked(self.request({"op": "ping"})).get("pong"))

    def stats(self) -> dict:
        """The server's health snapshot (pool, cache, counters)."""
        return self._checked(self.request({"op": "stats"}))["stats"]

    def solve(
        self, g: Hypergraph, h: Hypergraph, method: str | None = None
    ) -> dict:
        """Decide one in-memory pair; raises :class:`RequestError` on error."""
        return self._checked(self.request(self._solve_request((g, h), method)))

    def solve_path(self, path: str | Path, method: str | None = None) -> dict:
        """Decide one *client-side* ``.hg`` instance file (shipped inline)."""
        return self._checked(
            self.request(self._solve_request(load_instance(path), method))
        )

    def solve_server_path(
        self, path: str | Path, method: str | None = None
    ) -> dict:
        """Ask the server to load and decide one of *its own* ``.hg`` files."""
        request: dict = {"op": "solve", "path": str(path)}
        if method is not None:
            request["method"] = method
        return self._checked(self.request(request))

    def solve_many(self, instances, method: str | None = None) -> list[dict]:
        """Decide a batch, pipelined; results in input order regardless.

        ``instances`` mixes ``(G, H)`` pairs and client-side ``.hg``
        paths.  Requests stream onto the socket through a bounded
        window and answers are accepted **in whatever order the
        server's scheduler finishes them** — a slow instance never
        delays collection of the fast ones behind it.  The returned
        list is nevertheless in input order; a per-request error is
        returned as its ``"ok": false`` object instead of raised, so
        the rest of the batch still gets verdicts.
        """
        requests = [
            self._solve_request(
                load_instance(item) if isinstance(item, (str, Path)) else item,
                method,
            )
            for item in instances
        ]
        order: list[int] = []
        arrived: dict[int, dict] = {}
        outstanding: set[int] = set()
        for request in requests:
            request_id = self._send(request)
            order.append(request_id)
            outstanding.add(request_id)
            if len(outstanding) >= self.PIPELINE_WINDOW:
                request_id, response = self._receive_any(outstanding)
                arrived[request_id] = response
        while outstanding:
            request_id, response = self._receive_any(outstanding)
            arrived[request_id] = response
        return [arrived[request_id] for request_id in order]

    def shutdown_server(self) -> dict:
        """Ask the server to shut down gracefully (drain, flush, close)."""
        return self._checked(self.request({"op": "shutdown"}))

    @staticmethod
    def _solve_request(
        pair: tuple[Hypergraph, Hypergraph], method: str | None
    ) -> dict:
        g, h = pair
        request: dict = {
            "op": "solve",
            "g": encode_hypergraph(g),
            "h": encode_hypergraph(h),
        }
        if method is not None:
            request["method"] = method
        return request

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Close the connection (idempotent)."""
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "DualityClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
