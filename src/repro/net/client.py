"""Client libraries for the JSON-lines duality service.

Two clients share one wire protocol:

* :class:`AsyncDualityClient` — the native client of the event-loop
  server.  ``solve_many`` streams the whole batch under ``drain()``
  flow control (no fixed pipeline window: the server's per-connection
  in-flight cap plus TCP pushback *are* the window) while a concurrent
  reader collects answers, so ten thousand of these can share one
  process;
* :class:`DualityClient` — the synchronous compatibility wrapper for
  scripts and the CLI: same methods, blocking calls, a bounded
  :data:`~DualityClient.PIPELINE_WINDOW` standing in for the
  concurrent reader.

Both ship instances *inline* through the lossless codec (``.hg`` paths
are read on the client's machine), so client and server need not share
a filesystem; ``solve_server_path`` asks the server to load one of its
own files instead.  Both authenticate with ``auth_token=`` against a
server started with ``--auth-token``.

Responses are the plain JSON dicts of the wire (the
:func:`repro.service.response_to_json` fields): ``solve`` raises
:class:`~repro.net.protocol.RequestError` on a per-request error, while
``solve_many`` collects answers **as they arrive — out of request
order** when the server's concurrent scheduler finishes a fast
instance ahead of a slow one.  Arrivals are matched to requests by
their echoed ``id``, and the results still come back in input order,
with error responses in-line (``"ok": false``) so one bad instance
cannot hide the other verdicts.  A server that disconnects
mid-pipeline does not hang the batch: every unanswered request comes
back as an in-line ``ConnectionError`` object and the client closes
cleanly.
"""

from __future__ import annotations

import asyncio
import json
import socket
import time
from pathlib import Path

from repro.hypergraph import Hypergraph
from repro.net.protocol import (
    LineReader,
    MAX_LINE_BYTES,
    ProtocolError,
    RequestError,
    encode_hypergraph,
    parse_response,
    send_json,
)
from repro.obs.trace import Span, TraceSink, new_trace_id
from repro.parallel.batch import load_instance

#: Failures that end a wire conversation (as opposed to per-request
#: errors, which arrive as ``"ok": false`` responses on a live stream).
_WIRE_FAILURES = (ConnectionError, TimeoutError, OSError, ProtocolError)


def _solve_request(
    pair: tuple[Hypergraph, Hypergraph], method: str | None
) -> dict:
    g, h = pair
    request: dict = {
        "op": "solve",
        "g": encode_hypergraph(g),
        "h": encode_hypergraph(h),
    }
    if method is not None:
        request["method"] = method
    return request


def _merge_trace(
    sink: TraceSink, response: dict, trace_id: str, sent_at: float
) -> None:
    """Record the client-edge span and adopt the server's span tree.

    The ``client-request`` span covers send-to-receive wall time; the
    server's piggybacked spans (rooted at its ``server`` span, whose
    parent the server cannot know) are re-parented under it, so the
    merged tree reads client edge → server → parse → cache lookup →
    queue wait → worker solve → serialize, all one ``trace_id``.
    """
    edge = Span(trace_id, "client-request", start=sent_at)
    edge.finish()
    wire = response.get("trace") if isinstance(response, dict) else None
    if isinstance(wire, dict):
        for item in wire.get("spans") or []:
            if isinstance(item, dict):
                if item.get("parent_id") is None:
                    item["parent_id"] = edge.span_id
                sink.extend([item])
    sink.record(edge)


def _connection_lost_response(request_id, exc: BaseException) -> dict:
    """The in-line error standing in for an answer the wire never got."""
    return {
        "id": request_id,
        "ok": False,
        "error": {
            "type": "ConnectionError",
            "message": (
                "connection lost before the server answered "
                f"({type(exc).__name__}: {exc})"
            ),
        },
    }


class DualityClient:
    """Connect / solve / solve_many / close over one TCP connection."""

    #: How many ``solve_many`` requests may be in flight at once.  The
    #: concurrent server reads ahead and answers out of order, but a
    #: bounded window still caps how much response data can pile up in
    #: kernel buffers (and how much scheduling state either side holds)
    #: while keeping the pool saturated.
    PIPELINE_WINDOW = 32

    def __init__(
        self,
        host: str,
        port: int | None = None,
        timeout: float = 60.0,
        max_line_bytes: int = MAX_LINE_BYTES,
        auth_token: str | None = None,
        trace: bool = False,
    ) -> None:
        """Connect to ``host:port`` (or one ``"HOST:PORT"`` string).

        ``timeout`` bounds every blocking socket operation; a server
        that stops answering surfaces as ``TimeoutError`` rather than a
        hang.  ``auth_token`` authenticates the connection's first
        frame against a token-protected server; a rejected token raises
        :class:`RequestError` and closes the connection.  ``trace=True``
        mints a trace id per solve, asks the server for its span tree
        on every response, and collects the merged spans (client edge +
        server phases) in :attr:`trace_sink`.
        """
        if port is None:
            from repro.net.server import parse_address

            host, port = parse_address(host)
        self._address = (host, port)
        self._timeout = timeout
        self._max_line_bytes = max_line_bytes
        self._auth_token = auth_token
        self._sock: socket.socket | None = socket.create_connection(
            self._address, timeout=timeout
        )
        self._reader = LineReader(self._sock, max_line_bytes)
        self._next_id = 0
        #: Merged spans of every traced solve (``None`` unless
        #: ``trace=True``); render with :func:`repro.obs.format_tree`
        #: or export with :func:`repro.obs.dump_chrome`.
        self.trace_sink: TraceSink | None = TraceSink() if trace else None
        if auth_token is not None:
            try:
                self._checked(self.request({"op": "auth", "token": auth_token}))
            except BaseException:
                self.close()
                raise

    # ------------------------------------------------------------------
    # Wire plumbing
    # ------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._sock is None

    def _require_open(self) -> socket.socket:
        if self._sock is None:
            raise RuntimeError("client is closed; connect a new DualityClient")
        return self._sock

    def _send(self, request: dict) -> int:
        """Assign an id and put one request on the wire.

        A failed (possibly partial) write closes the client, same as a
        failed read: a half-written frame leaves nothing trustworthy to
        append a next request to.
        """
        sock = self._require_open()
        request_id = self._next_id
        self._next_id += 1
        request["id"] = request_id
        try:
            send_json(sock, request)
        except BaseException:
            self.close()
            raise
        return request_id

    def _read_response(self) -> dict:
        """Read the next response line off the wire, whatever its id.

        Any failure here — a timeout, a cut connection, a malformed
        response — closes the client: after a missed or half-read
        answer the stream has no trustworthy next frame.
        """
        self._require_open()
        try:
            line = self._reader.readline()
            if line is None:
                raise ConnectionError(
                    "server closed the connection before answering"
                )
            return parse_response(line)
        except BaseException:
            self.close()
            raise

    def _receive(self, request_id: int) -> dict:
        """Read one response line and match it to ``request_id``.

        For single-outstanding-request round trips: with nothing else
        in flight the next response *must* answer this request, so a
        mismatched id is a desynced stream and closes the client.
        Pipelined callers use :meth:`_receive_any` instead, because the
        concurrent server legitimately answers out of request order.
        """
        response = self._read_response()
        if response.get("id") != request_id:
            self.close()
            raise ProtocolError(
                f"response id {response.get('id')!r} does not match request "
                f"id {request_id} (no other request was outstanding)"
            )
        return response

    def _receive_any(self, outstanding: set[int]) -> tuple[int, dict]:
        """Read the next response and match it to *some* outstanding id."""
        response = self._read_response()
        request_id = response.get("id")
        if request_id not in outstanding:
            self.close()
            raise ProtocolError(
                f"response id {request_id!r} does not match any outstanding "
                f"request ({sorted(outstanding)})"
            )
        outstanding.discard(request_id)
        return request_id, response

    def request(self, request: dict) -> dict:
        """One raw request/response round trip (ids handled here)."""
        return self._receive(self._send(request))

    @staticmethod
    def _checked(response: dict) -> dict:
        if not response.get("ok"):
            raise RequestError(response.get("error") or {})
        return response

    # ------------------------------------------------------------------
    # The service API
    # ------------------------------------------------------------------

    def _solve_round_trip(self, request: dict) -> dict:
        """One solve round trip, traced when the client traces."""
        if self.trace_sink is None:
            return self.request(request)
        trace_id = new_trace_id()
        request["trace"] = trace_id
        sent_at = time.time()
        response = self.request(request)
        _merge_trace(self.trace_sink, response, trace_id, sent_at)
        return response

    def ping(self) -> bool:
        """Liveness probe: True when the server answers."""
        return bool(self._checked(self.request({"op": "ping"})).get("pong"))

    def stats(self) -> dict:
        """The server's health snapshot (pool, cache, counters)."""
        return self._checked(self.request({"op": "stats"}))["stats"]

    def metrics(self) -> str:
        """The server's metrics registry as Prometheus text exposition."""
        return self._checked(self.request({"op": "metrics"}))["metrics"]

    def solve(
        self, g: Hypergraph, h: Hypergraph, method: str | None = None
    ) -> dict:
        """Decide one in-memory pair; raises :class:`RequestError` on error."""
        return self._checked(
            self._solve_round_trip(self._solve_request((g, h), method))
        )

    def solve_path(self, path: str | Path, method: str | None = None) -> dict:
        """Decide one *client-side* ``.hg`` instance file (shipped inline)."""
        return self._checked(
            self._solve_round_trip(self._solve_request(load_instance(path), method))
        )

    def solve_server_path(
        self, path: str | Path, method: str | None = None
    ) -> dict:
        """Ask the server to load and decide one of *its own* ``.hg`` files."""
        request: dict = {"op": "solve", "path": str(path)}
        if method is not None:
            request["method"] = method
        return self._checked(self._solve_round_trip(request))

    def solve_many(
        self, instances, method: str | None = None, reconnect: int = 0
    ) -> list[dict]:
        """Decide a batch, pipelined; results in input order regardless.

        ``instances`` mixes ``(G, H)`` pairs and client-side ``.hg``
        paths.  Requests stream onto the socket through a bounded
        window and answers are accepted **in whatever order the
        server's scheduler finishes them** — a slow instance never
        delays collection of the fast ones behind it.  The returned
        list is nevertheless in input order; a per-request error is
        returned as its ``"ok": false`` object instead of raised, so
        the rest of the batch still gets verdicts.  If the server
        disconnects mid-pipeline, every unanswered request comes back
        as an in-line ``ConnectionError`` object — promptly, not after
        the receive timeout — and the client is closed.

        ``reconnect`` makes a dropped connection *retryable* instead of
        terminal: up to that many times, the client reopens the
        connection (re-authenticating when a token is set) and resends
        exactly the unanswered requests, keeping their ids and slots —
        so a server restart mid-batch costs a resubmission, not the
        batch.  Safe because solves are pure and cached server-side; a
        request answered before the drop is never sent twice.  The
        default 0 keeps the historical fail-fast behavior.
        """
        requests = [
            self._solve_request(
                load_instance(item) if isinstance(item, (str, Path)) else item,
                method,
            )
            for item in instances
        ]
        # Ids are assigned up front so that requests the wire never even
        # took still map to a definite slot in the returned list.
        order: list[int] = []
        by_id: dict[int, dict] = {}
        for request in requests:
            request["id"] = self._next_id
            self._next_id += 1
            order.append(request["id"])
            by_id[request["id"]] = request
        arrived: dict[int, dict] = {}
        outstanding: set[int] = set()
        traced: dict[int, tuple[str, float]] = {}
        failure: BaseException | None = None
        attempts = 0

        def collect_one() -> None:
            request_id, response = self._receive_any(outstanding)
            arrived[request_id] = response
            if request_id in traced:
                trace_id, sent_at = traced.pop(request_id)
                _merge_trace(self.trace_sink, response, trace_id, sent_at)

        while True:
            try:
                for request_id in [i for i in order if i not in arrived]:
                    request = by_id[request_id]
                    if self.trace_sink is not None:
                        trace_id = request.get("trace") or new_trace_id()
                        request["trace"] = trace_id
                        traced[request_id] = (trace_id, time.time())
                    send_json(self._require_open(), request)
                    outstanding.add(request_id)
                    if len(outstanding) >= self.PIPELINE_WINDOW:
                        collect_one()
                while outstanding:
                    collect_one()
                break
            except _WIRE_FAILURES as exc:
                failure = exc
                self.close()
                outstanding.clear()
                if attempts < reconnect and self._reconnect():
                    attempts += 1
                    failure = None
                    continue
                break
        if failure is not None:
            for request_id in order:
                if request_id not in arrived:
                    arrived[request_id] = _connection_lost_response(
                        request_id, failure
                    )
        return [arrived[request_id] for request_id in order]

    def _reconnect(self) -> bool:
        """Open a fresh connection to the same server (and re-auth).

        Retries the connect briefly (the server may be mid-restart);
        False once the reconnect window is spent — the caller then falls
        back to in-line ``ConnectionError`` objects.
        """
        deadline = time.monotonic() + min(self._timeout, 5.0)
        while True:
            try:
                self._sock = socket.create_connection(
                    self._address, timeout=self._timeout
                )
                break
            except OSError:
                if time.monotonic() >= deadline:
                    return False
                time.sleep(0.05)
        self._reader = LineReader(self._sock, self._max_line_bytes)
        if self._auth_token is not None:
            try:
                self._checked(
                    self.request({"op": "auth", "token": self._auth_token})
                )
            except Exception:
                self.close()
                return False
        return True

    def shutdown_server(self) -> dict:
        """Ask the server to shut down gracefully (drain, flush, close)."""
        return self._checked(self.request({"op": "shutdown"}))

    _solve_request = staticmethod(_solve_request)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Close the connection (idempotent)."""
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "DualityClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class AsyncDualityClient:
    """The event-loop client: one coroutine-friendly TCP connection.

    Construct, then ``await connect()`` (or use ``async with``)::

        async with AsyncDualityClient("127.0.0.1:7171") as client:
            results = await client.solve_many(pairs)

    ``solve_many`` is where this client earns its keep: a sender task
    streams *every* request under ``await drain()`` — no fixed pipeline
    window; the server's per-connection in-flight cap plus TCP pushback
    bound the pipeline — while the caller's coroutine collects
    responses as the scheduler finishes them.  Thousands of these
    clients can share one event loop, which is how the connection-count
    tests and benchmarks drive the server.
    """

    def __init__(
        self,
        host: str,
        port: int | None = None,
        timeout: float = 60.0,
        max_line_bytes: int = MAX_LINE_BYTES,
        auth_token: str | None = None,
        trace: bool = False,
    ) -> None:
        """Configure a client; nothing touches the network until
        :meth:`connect`.  Parameters mirror :class:`DualityClient`.
        """
        if port is None:
            from repro.net.server import parse_address

            host, port = parse_address(host)
        self._address = (host, port)
        self._timeout = timeout
        self._max_line_bytes = max_line_bytes
        self._auth_token = auth_token
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._next_id = 0
        #: Merged spans of every traced solve (see :class:`DualityClient`).
        self.trace_sink: TraceSink | None = TraceSink() if trace else None

    async def connect(self) -> "AsyncDualityClient":
        """Open the connection (and authenticate, when a token is set)."""
        if self._writer is not None:
            return self
        host, port = self._address
        self._reader, self._writer = await asyncio.wait_for(
            asyncio.open_connection(host, port, limit=self._max_line_bytes),
            self._timeout,
        )
        if self._auth_token is not None:
            try:
                self._checked(
                    await self.request({"op": "auth", "token": self._auth_token})
                )
            except BaseException:
                await self.close()
                raise
        return self

    # ------------------------------------------------------------------
    # Wire plumbing
    # ------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._writer is None

    def _require_open(self) -> asyncio.StreamWriter:
        if self._writer is None:
            raise RuntimeError(
                "client is not connected; await connect() first"
            )
        return self._writer

    async def _send(self, request: dict) -> int:
        """Assign an id and put one request on the wire (drain-throttled)."""
        writer = self._require_open()
        request_id = self._next_id
        self._next_id += 1
        request["id"] = request_id
        try:
            writer.write(json.dumps(request).encode("utf-8") + b"\n")
            await asyncio.wait_for(writer.drain(), self._timeout)
        except BaseException:
            await self.close()
            raise
        return request_id

    async def _read_response(self) -> dict:
        """The next response line, whatever its id.

        Raises ``ConnectionError`` on EOF and ``TimeoutError`` past the
        client timeout; the *caller* decides whether that tears the
        client down (round trips do; ``solve_many`` turns it into
        in-line errors first).
        """
        reader = self._reader
        if reader is None:
            raise RuntimeError(
                "client is not connected; await connect() first"
            )
        try:
            line = await asyncio.wait_for(
                reader.readuntil(b"\n"), self._timeout
            )
        except asyncio.IncompleteReadError as exc:
            raise ConnectionError(
                "server closed the connection before answering"
            ) from exc
        except asyncio.LimitOverrunError as exc:
            raise ProtocolError(f"oversized response line: {exc}") from exc
        return parse_response(line)

    async def _receive(self, request_id: int) -> dict:
        """One response, which must answer ``request_id`` (round trips)."""
        try:
            response = await self._read_response()
        except BaseException:
            await self.close()
            raise
        if response.get("id") != request_id:
            await self.close()
            raise ProtocolError(
                f"response id {response.get('id')!r} does not match request "
                f"id {request_id} (no other request was outstanding)"
            )
        return response

    async def _receive_any(self, outstanding: set[int]) -> tuple[int, dict]:
        """The next response, matched to *some* outstanding id."""
        response = await self._read_response()
        request_id = response.get("id")
        if request_id not in outstanding:
            raise ProtocolError(
                f"response id {request_id!r} does not match any outstanding "
                f"request ({sorted(outstanding)})"
            )
        outstanding.discard(request_id)
        return request_id, response

    async def request(self, request: dict) -> dict:
        """One raw request/response round trip (ids handled here)."""
        return await self._receive(await self._send(request))

    _checked = staticmethod(DualityClient._checked)

    # ------------------------------------------------------------------
    # The service API
    # ------------------------------------------------------------------

    async def _solve_round_trip(self, request: dict) -> dict:
        """One solve round trip, traced when the client traces."""
        if self.trace_sink is None:
            return await self.request(request)
        trace_id = new_trace_id()
        request["trace"] = trace_id
        sent_at = time.time()
        response = await self.request(request)
        _merge_trace(self.trace_sink, response, trace_id, sent_at)
        return response

    async def ping(self) -> bool:
        """Liveness probe: True when the server answers."""
        response = self._checked(await self.request({"op": "ping"}))
        return bool(response.get("pong"))

    async def stats(self) -> dict:
        """The server's health snapshot (pool, cache, counters)."""
        return self._checked(await self.request({"op": "stats"}))["stats"]

    async def metrics(self) -> str:
        """The server's metrics registry as Prometheus text exposition."""
        return self._checked(await self.request({"op": "metrics"}))["metrics"]

    async def solve(
        self, g: Hypergraph, h: Hypergraph, method: str | None = None
    ) -> dict:
        """Decide one in-memory pair; raises :class:`RequestError` on error."""
        return self._checked(
            await self._solve_round_trip(_solve_request((g, h), method))
        )

    async def solve_path(
        self, path: str | Path, method: str | None = None
    ) -> dict:
        """Decide one *client-side* ``.hg`` instance file (shipped inline)."""
        return self._checked(
            await self._solve_round_trip(_solve_request(load_instance(path), method))
        )

    async def solve_server_path(
        self, path: str | Path, method: str | None = None
    ) -> dict:
        """Ask the server to load and decide one of *its own* ``.hg`` files."""
        request: dict = {"op": "solve", "path": str(path)}
        if method is not None:
            request["method"] = method
        return self._checked(await self._solve_round_trip(request))

    async def solve_many(
        self, instances, method: str | None = None, reconnect: int = 0
    ) -> list[dict]:
        """Decide a batch; full-pipeline streaming, results in input order.

        A sender task streams every request back-to-back under ``await
        drain()`` — the server's per-connection in-flight cap and TCP
        flow control bound the pipeline, so there is no client-side
        window to tune — while this coroutine collects responses in
        whatever order the scheduler finishes them.  Per-request errors
        come back in-line (``"ok": false``); a connection lost
        mid-pipeline fills every unanswered slot with an in-line
        ``ConnectionError`` object, promptly, and closes the client.

        ``reconnect`` (like :meth:`DualityClient.solve_many`'s) turns a
        dropped connection into up to that many reopen-and-resend
        rounds over exactly the unanswered requests, ids and result
        slots preserved; 0 keeps the fail-fast default.
        """
        requests = [
            _solve_request(
                load_instance(item) if isinstance(item, (str, Path)) else item,
                method,
            )
            for item in instances
        ]
        self._require_open()
        order: list[int] = []
        by_id: dict[int, dict] = {}
        for request in requests:
            request["id"] = self._next_id
            self._next_id += 1
            order.append(request["id"])
            by_id[request["id"]] = request
            if self.trace_sink is not None:
                request["trace"] = new_trace_id()
        arrived: dict[int, dict] = {}
        traced: dict[int, tuple[str, float]] = {}
        failure: BaseException | None = None
        attempts = 0
        while True:
            queue = [by_id[i] for i in order if i not in arrived]
            failure = await self._pipeline_once(queue, arrived, traced)
            if failure is None:
                break
            await self.close()
            if attempts < reconnect and await self._reconnect():
                attempts += 1
                continue
            break
        if len(arrived) < len(order):
            await self.close()
            if failure is None:  # pragma: no cover - defensive
                failure = ConnectionError("response never arrived")
            for request_id in order:
                if request_id not in arrived:
                    arrived[request_id] = _connection_lost_response(
                        request_id, failure
                    )
        return [arrived[request_id] for request_id in order]

    async def _pipeline_once(
        self,
        queue: list[dict],
        arrived: dict[int, dict],
        traced: dict[int, tuple[str, float]],
    ) -> BaseException | None:
        """One streaming pass over ``queue`` on the current connection.

        Collects into ``arrived``; returns the wire failure that ended
        the pass early (``None`` on a complete pass), leaving already
        collected answers in place for a retrying caller.
        """
        writer = self._require_open()
        outstanding: set[int] = set()
        sent = asyncio.Event()

        async def send_all() -> None:
            try:
                for request in queue:
                    if "trace" in request:
                        traced[request["id"]] = (request["trace"], time.time())
                    writer.write(json.dumps(request).encode("utf-8") + b"\n")
                    outstanding.add(request["id"])
                    sent.set()
                    await writer.drain()
            finally:
                sent.set()  # wake the collector even on a send failure

        sender = asyncio.ensure_future(send_all())
        failure: BaseException | None = None
        try:
            for _ in queue:
                while not outstanding:
                    # All sent-so-far answered: wait for the sender to
                    # put more on the wire (or to fail trying).
                    if sender.done():
                        break
                    sent.clear()
                    await sent.wait()
                if not outstanding:
                    break
                try:
                    request_id, response = await self._receive_any(outstanding)
                except _WIRE_FAILURES as exc:
                    failure = exc
                    break
                arrived[request_id] = response
                if request_id in traced and self.trace_sink is not None:
                    trace_id, sent_at = traced.pop(request_id)
                    _merge_trace(self.trace_sink, response, trace_id, sent_at)
        finally:
            if not sender.done():
                sender.cancel()
            try:
                await sender
            except asyncio.CancelledError:
                pass
            except _WIRE_FAILURES as exc:
                if failure is None:
                    failure = exc
        if failure is None and len(arrived) < len(
            {request["id"] for request in queue} | set(arrived)
        ):
            failure = ConnectionError("response never arrived")
        return failure

    async def _reconnect(self) -> bool:
        """Open a fresh connection to the same server (and re-auth);
        False once the brief retry window is spent."""
        await self.close()
        deadline = time.monotonic() + min(self._timeout, 5.0)
        while True:
            try:
                self._reader, self._writer = await asyncio.wait_for(
                    asyncio.open_connection(
                        *self._address, limit=self._max_line_bytes
                    ),
                    self._timeout,
                )
                break
            except OSError:
                if time.monotonic() >= deadline:
                    return False
                await asyncio.sleep(0.05)
        if self._auth_token is not None:
            try:
                self._checked(
                    await self.request({"op": "auth", "token": self._auth_token})
                )
            except Exception:
                await self.close()
                return False
        return True

    async def shutdown_server(self) -> dict:
        """Ask the server to shut down gracefully (drain, flush, close)."""
        return self._checked(await self.request({"op": "shutdown"}))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def close(self) -> None:
        """Close the connection (idempotent)."""
        writer = self._writer
        if writer is None:
            return
        self._writer = None
        self._reader = None
        try:
            writer.close()
            await writer.wait_closed()
        except (OSError, asyncio.CancelledError):
            pass

    async def __aenter__(self) -> "AsyncDualityClient":
        return await self.connect()

    async def __aexit__(self, *_exc) -> None:
        await self.close()
