"""A client library for the JSON-lines duality service.

:class:`DualityClient` speaks the :mod:`repro.net.protocol` wire format
to a :class:`~repro.net.server.DualityServer`: connect once, then
``solve`` / ``solve_many`` as often as the session needs — the server
keeps its pool warm and its cache hot between requests.  Instances are
shipped *inline* through the lossless codec (``.hg`` paths are read on
the client's machine), so client and server need not share a
filesystem; :meth:`DualityClient.solve_server_path` asks the server to
load one of its own files instead.

Responses are the plain JSON dicts of the wire (the
:func:`repro.service.response_to_json` fields): ``solve`` raises
:class:`~repro.net.protocol.RequestError` on a per-request error, while
``solve_many`` pipelines every request onto the socket first and then
collects answers, returning error responses in-line (``"ok": false``)
so one bad instance cannot hide the other verdicts.
"""

from __future__ import annotations

import socket
from pathlib import Path

from repro.hypergraph import Hypergraph
from repro.net.protocol import (
    LineReader,
    MAX_LINE_BYTES,
    ProtocolError,
    RequestError,
    encode_hypergraph,
    send_json,
)
from repro.parallel.batch import load_instance


class DualityClient:
    """Connect / solve / solve_many / close over one TCP connection."""

    #: How many ``solve_many`` requests may be in flight at once.  The
    #: server answers request *k* before reading *k+1*, so an unbounded
    #: pipeline fills the kernel buffers on both sides and deadlocks
    #: both ends in ``sendall``; a bounded window keeps the wire
    #: saturated without ever outrunning the reader.
    PIPELINE_WINDOW = 32

    def __init__(
        self,
        host: str,
        port: int | None = None,
        timeout: float = 60.0,
        max_line_bytes: int = MAX_LINE_BYTES,
    ) -> None:
        """Connect to ``host:port`` (or one ``"HOST:PORT"`` string).

        ``timeout`` bounds every blocking socket operation; a server
        that stops answering surfaces as ``TimeoutError`` rather than a
        hang.
        """
        if port is None:
            from repro.net.server import parse_address

            host, port = parse_address(host)
        self._address = (host, port)
        self._sock: socket.socket | None = socket.create_connection(
            self._address, timeout=timeout
        )
        self._reader = LineReader(self._sock, max_line_bytes)
        self._next_id = 0

    # ------------------------------------------------------------------
    # Wire plumbing
    # ------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._sock is None

    def _require_open(self) -> socket.socket:
        if self._sock is None:
            raise RuntimeError("client is closed; connect a new DualityClient")
        return self._sock

    def _send(self, request: dict) -> int:
        """Assign an id and put one request on the wire.

        A failed (possibly partial) write closes the client, same as a
        failed read: a half-written frame leaves nothing trustworthy to
        append a next request to.
        """
        sock = self._require_open()
        request_id = self._next_id
        self._next_id += 1
        request["id"] = request_id
        try:
            send_json(sock, request)
        except BaseException:
            self.close()
            raise
        return request_id

    def _receive(self, request_id: int) -> dict:
        """Read one response line and match it to ``request_id``.

        Any failure here — a timeout, a cut connection, a malformed or
        out-of-order response — closes the client: after a missed or
        half-read answer the stream has no trustworthy next frame, and
        a late response would be mis-matched to the next request.
        """
        self._require_open()
        import json

        try:
            line = self._reader.readline()
            if line is None:
                raise ConnectionError(
                    "server closed the connection before answering"
                )
            try:
                response = json.loads(line.decode("utf-8"))
            except (UnicodeDecodeError, ValueError) as exc:
                raise ProtocolError(f"malformed response line: {exc}") from exc
            if not isinstance(response, dict):
                raise ProtocolError(f"response is not an object: {response!r}")
            if response.get("id") != request_id:
                raise ProtocolError(
                    f"response id {response.get('id')!r} does not match "
                    f"request id {request_id} (responses must arrive in order)"
                )
        except BaseException:
            self.close()
            raise
        return response

    def request(self, request: dict) -> dict:
        """One raw request/response round trip (ids handled here)."""
        return self._receive(self._send(request))

    @staticmethod
    def _checked(response: dict) -> dict:
        if not response.get("ok"):
            raise RequestError(response.get("error") or {})
        return response

    # ------------------------------------------------------------------
    # The service API
    # ------------------------------------------------------------------

    def ping(self) -> bool:
        """Liveness probe: True when the server answers."""
        return bool(self._checked(self.request({"op": "ping"})).get("pong"))

    def stats(self) -> dict:
        """The server's health snapshot (pool, cache, counters)."""
        return self._checked(self.request({"op": "stats"}))["stats"]

    def solve(
        self, g: Hypergraph, h: Hypergraph, method: str | None = None
    ) -> dict:
        """Decide one in-memory pair; raises :class:`RequestError` on error."""
        return self._checked(self.request(self._solve_request((g, h), method)))

    def solve_path(self, path: str | Path, method: str | None = None) -> dict:
        """Decide one *client-side* ``.hg`` instance file (shipped inline)."""
        return self._checked(
            self.request(self._solve_request(load_instance(path), method))
        )

    def solve_server_path(
        self, path: str | Path, method: str | None = None
    ) -> dict:
        """Ask the server to load and decide one of *its own* ``.hg`` files."""
        request: dict = {"op": "solve", "path": str(path)}
        if method is not None:
            request["method"] = method
        return self._checked(self.request(request))

    def solve_many(self, instances, method: str | None = None) -> list[dict]:
        """Decide a batch, pipelined: all requests out, then all answers.

        ``instances`` mixes ``(G, H)`` pairs and client-side ``.hg``
        paths.  Responses come back in input order; a per-request error
        is returned as its ``"ok": false`` object instead of raised, so
        the rest of the batch still gets verdicts.
        """
        from collections import deque

        requests = [
            self._solve_request(
                load_instance(item) if isinstance(item, (str, Path)) else item,
                method,
            )
            for item in instances
        ]
        responses: list[dict] = []
        pending: deque[int] = deque()
        for request in requests:
            pending.append(self._send(request))
            if len(pending) >= self.PIPELINE_WINDOW:
                responses.append(self._receive(pending.popleft()))
        while pending:
            responses.append(self._receive(pending.popleft()))
        return responses

    def shutdown_server(self) -> dict:
        """Ask the server to shut down gracefully (drain, flush, close)."""
        return self._checked(self.request({"op": "shutdown"}))

    @staticmethod
    def _solve_request(
        pair: tuple[Hypergraph, Hypergraph], method: str | None
    ) -> dict:
        g, h = pair
        request: dict = {
            "op": "solve",
            "g": encode_hypergraph(g),
            "h": encode_hypergraph(h),
        }
        if method is not None:
            request["method"] = method
        return request

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Close the connection (idempotent)."""
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "DualityClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
