"""A small library of *honest* streaming logspace transducers.

Unlike :class:`repro.machine.transducer.FunctionTransducer` (which lifts
an arbitrary Python function and charges a declared register budget),
the transducers here read their input strictly through ``view.char`` and
hold state only in metered registers — they are real logspace machines
over the rendered model.  Experiments use them where the *mechanism*
itself is under test (E5); they also serve as executable documentation
of the transducer protocol.
"""

from __future__ import annotations

from repro.machine.meter import RegisterFile
from repro.machine.transducer import InputView, LogspaceTransducer


class CopyTransducer(LogspaceTransducer):
    """The identity function — one input head position register."""

    name = "copy"

    def run(self, view: InputView, emit, registers: RegisterFile) -> None:
        head = registers.register("head", max_value=max(1, view.length()))
        while head.value < view.length():
            emit(view.char(head.value))
            head.value = head.value + 1


class RotateTransducer(LogspaceTransducer):
    """Left rotation by one: ``abc → bca`` (two head registers)."""

    name = "rotate"

    def run(self, view: InputView, emit, registers: RegisterFile) -> None:
        n = view.length()
        if n == 0:
            return
        head = registers.register("head", max_value=n)
        head.value = 1 % n
        count = registers.register("count", max_value=n)
        while count.value < n:
            emit(view.char(head.value))
            head.value = (head.value + 1) % n
            count.value = count.value + 1


class DuplicateTransducer(LogspaceTransducer):
    """Each character twice: ``ab → aabb`` (head + phase bit)."""

    name = "duplicate"

    def run(self, view: InputView, emit, registers: RegisterFile) -> None:
        head = registers.register("head", max_value=max(1, view.length()))
        phase = registers.bit("phase")
        while head.value < view.length():
            emit(view.char(head.value))
            if phase.value:
                phase.value = 0
                head.value = head.value + 1
            else:
                phase.value = 1


class BinaryIncrementTransducer(LogspaceTransducer):
    """Add 1 to a big-endian binary string (``0111 → 1000``).

    Two passes over the input with O(log n) state: first locate the
    rightmost ``0`` (one position register), then emit the incremented
    string position by position.  Overflow (all ones) emits ``1`` then
    zeros — the output may be one character longer.
    """

    name = "increment"

    def run(self, view: InputView, emit, registers: RegisterFile) -> None:
        n = view.length()
        if n == 0:
            emit("1")
            return
        bound = n + 2
        pivot = registers.register("pivot", max_value=bound)
        pivot.value = bound - 1  # sentinel: no zero found yet
        scan = registers.register("scan", max_value=bound)
        while scan.value < n:
            if view.char(scan.value) == "0":
                pivot.value = scan.value
            scan.value = scan.value + 1
        if pivot.value == bound - 1:
            # All ones: 111 + 1 = 1000.
            emit("1")
            out = registers.register("out_all1", max_value=bound)
            while out.value < n:
                emit("0")
                out.value = out.value + 1
            return
        out = registers.register("out", max_value=bound)
        while out.value < n:
            if out.value < pivot.value:
                emit(view.char(out.value))
            elif out.value == pivot.value:
                emit("1")
            else:
                emit("0")
            out.value = out.value + 1


class ParityPrefixTransducer(LogspaceTransducer):
    """Prefix each position with the running parity of ``1`` characters.

    Output length doubles; state is one parity bit and a head register.
    A genuinely sequential statistic — useful for testing that the
    pipeline recomputes prefixes correctly.
    """

    name = "parity-prefix"

    def run(self, view: InputView, emit, registers: RegisterFile) -> None:
        head = registers.register("head", max_value=max(1, view.length()))
        parity = registers.bit("parity")
        while head.value < view.length():
            ch = view.char(head.value)
            if ch == "1":
                parity.value = 1 - parity.value
            emit("1" if parity.value else "0")
            emit(ch)
            head.value = head.value + 1


class FilterZerosTransducer(LogspaceTransducer):
    """Drop every ``0`` character (shrinking outputs exercise lengths)."""

    name = "filter-zeros"

    def run(self, view: InputView, emit, registers: RegisterFile) -> None:
        head = registers.register("head", max_value=max(1, view.length()))
        while head.value < view.length():
            ch = view.char(head.value)
            if ch != "0":
                emit(ch)
            head.value = head.value + 1


STREAMING_TRANSDUCERS = (
    CopyTransducer,
    RotateTransducer,
    DuplicateTransducer,
    BinaryIncrementTransducer,
    ParityPrefixTransducer,
    FilterZerosTransducer,
)
