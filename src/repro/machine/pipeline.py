"""The Lemma 3.1 simulator: iterated self-composition without storage.

Lemma 3.1 proves ``[[FDSPACE[log n]_pol]]^log ⊆ FDSPACE[log² n]`` by
building a single machine ``T*`` that simulates a chain
``T_ρ(…T_2(T_1(I))…)`` while **never storing an intermediate output**:
each stage ``i`` owns an index register ``d_i`` and a one-character
output register ``o_i``, and a read by stage ``i+1`` at position ``j``
re-runs stage ``i`` with output suppressed except position ``j``.

:class:`Pipeline` implements exactly that protocol over
:class:`~repro.machine.transducer.LogspaceTransducer` stages.  Reads
nest: while stage ``i``'s probe is live, it drives probes of stage
``i−1``, so the meter's peak equals the sum of per-stage register files —
``O(log n)`` bits × ``ρ`` stages = ``O(log² n)`` when ``ρ = O(log n)``,
which is the lemma's statement and what experiment E5 measures.  The
price is recomputation: :attr:`Pipeline.invocations` counts stage runs,
exposing the time blow-up inherent to the space-efficient construction.
"""

from __future__ import annotations

from repro.machine.meter import SpaceMeter
from repro.machine.transducer import InputView, LogspaceTransducer, StringView


class _LazyStageView(InputView):
    """The virtual output of pipeline stage ``i`` (no materialisation)."""

    def __init__(self, pipeline: "Pipeline", stage_index: int) -> None:
        self._pipeline = pipeline
        self._stage_index = stage_index
        self._length: int | None = None

    def _upstream(self) -> InputView:
        return self._pipeline.view_of_stage(self._stage_index - 1)

    def length(self) -> int:
        if self._length is None:
            stage = self._pipeline.stages[self._stage_index - 1]
            self._pipeline.invocations += 1
            self._length = stage.output_length(
                self._upstream(), self._pipeline.meter
            )
        return self._length

    def char(self, index: int) -> str:
        stage = self._pipeline.stages[self._stage_index - 1]
        self._pipeline.invocations += 1
        return stage.output_char(self._upstream(), index, self._pipeline.meter)


class Pipeline:
    """A chain of logspace stages executed in the ``T*`` discipline.

    Parameters
    ----------
    stages:
        The transducers ``T_1, …, T_ρ`` (applied left to right).
    meter:
        Shared :class:`SpaceMeter`; a fresh one is created if omitted.

    The cached per-view lengths model the paper's freedom to keep a
    counter per stage (an ``O(log n)`` register); nothing else persists.
    """

    def __init__(
        self, stages: list[LogspaceTransducer], meter: SpaceMeter | None = None
    ) -> None:
        self.stages = list(stages)
        self.meter = meter if meter is not None else SpaceMeter()
        self.invocations = 0
        self._input_view: InputView | None = None
        self._views: dict[int, InputView] = {}

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def view_of_stage(self, index: int) -> InputView:
        """The (virtual) output of stage ``index`` (0 = the raw input)."""
        if index == 0:
            if self._input_view is None:
                raise RuntimeError("pipeline has no input bound yet")
            return self._input_view
        view = self._views.get(index)
        if view is None:
            view = _LazyStageView(self, index)
            self._views[index] = view
        return view

    def bind_input(self, text: str) -> None:
        """Attach the read-only input ``I`` and reset cached state."""
        self._input_view = StringView(text)
        self._views = {}
        self.invocations = 0

    # ------------------------------------------------------------------
    # Execution modes
    # ------------------------------------------------------------------

    def compute_recomputed(self, text: str) -> str:
        """``f^ρ(I)`` in the Lemma 3.1 discipline (no intermediates stored).

        The final stage's output is the only string materialised — the
        paper's ``P_ρ`` writes it to the output tape.
        """
        self.bind_input(text)
        top = self.view_of_stage(len(self.stages))
        return "".join(top.char(j) for j in range(top.length()))

    def compute_direct(self, text: str) -> str:
        """Straightforward composition, storing every intermediate string.

        The reference implementation E5 compares against: same function,
        linear-space behaviour.
        """
        current = text
        scratch = SpaceMeter()
        for stage in self.stages:
            current = stage.transduce(StringView(current), scratch)
        return current

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def report(self) -> dict:
        """Space/time counters for the experiment harness."""
        data = self.meter.snapshot()
        data["stage_invocations"] = self.invocations
        data["stages"] = len(self.stages)
        return data


def self_composition(
    stage: LogspaceTransducer, repetitions: int, meter: SpaceMeter | None = None
) -> Pipeline:
    """The pipeline ``f^ρ`` for a single stage function ``f``.

    This is the shape Section 3 actually uses: ``ρ(I)`` copies of one
    logspace function (``ρ ∈ Q_log``), e.g. the duality ``next`` step
    applied ``ℓ(π)`` times in Lemma 4.2.
    """
    if repetitions < 1:
        raise ValueError("need at least one repetition")
    return Pipeline([stage] * repetitions, meter=meter)
