"""Bit-level workspace accounting: the substrate for all space experiments.

A Python process cannot literally run on an ``O(log² n)`` worktape, so
the reproduction *meters the model-relevant state*: every register the
simulated machine is allowed is allocated through a :class:`SpaceMeter`,
which tracks the number of live bits and their peak.  Experiments then
check the peak against the paper's envelopes (``a + b·log² n`` for
Theorem 4.1).

What is counted: registers explicitly allocated by the algorithms —
path-descriptor digits, the pipeline's per-stage index/output registers
(``d_i``, ``o_i`` in Lemma 3.1), loop counters, vertex/edge indices.

What is not counted: the read-only input (a logspace machine receives it
on a read-only tape), the write-only output stream, and CPython's own
object overhead (the model's control is hardware, not tape).  The
convention is stated once here and referenced by DESIGN.md and
EXPERIMENTS.md.
"""

from __future__ import annotations

from repro._util import bits_needed
from repro.errors import SpaceBudgetExceeded


class SpaceMeter:
    """Tracks live and peak workspace bits; optionally enforces a budget.

    Parameters
    ----------
    budget_bits:
        Optional hard bound; exceeding it raises
        :class:`repro.errors.SpaceBudgetExceeded`.  Tests use budgets to
        *prove* an algorithm stays inside a declared envelope.
    """

    def __init__(self, budget_bits: int | None = None) -> None:
        self.budget_bits = budget_bits
        self.live_bits = 0
        self.peak_bits = 0
        self.allocations = 0

    def _charge(self, bits: int) -> None:
        self.live_bits += bits
        if self.live_bits > self.peak_bits:
            self.peak_bits = self.live_bits
        if self.budget_bits is not None and self.live_bits > self.budget_bits:
            raise SpaceBudgetExceeded(self.live_bits, self.budget_bits)

    def _release(self, bits: int) -> None:
        self.live_bits -= bits
        if self.live_bits < 0:
            raise RuntimeError("space meter underflow: double free?")

    def register(self, name: str, max_value: int) -> "Register":
        """Allocate a register able to hold integers in ``[0, max_value]``."""
        self.allocations += 1
        return Register(self, name, max_value)

    def bit(self, name: str) -> "Register":
        """Allocate a single-bit register."""
        return self.register(name, 1)

    def snapshot(self) -> dict:
        """Current counters, for experiment reports."""
        return {
            "live_bits": self.live_bits,
            "peak_bits": self.peak_bits,
            "allocations": self.allocations,
            "budget_bits": self.budget_bits,
        }


class Register:
    """A metered integer register of fixed width.

    The width is ``bits_needed(max_value)`` — the model charges for the
    register's *capacity*, not its momentary content, exactly as a
    worktape segment would be reserved.  Values outside ``[0, max_value]``
    are programming errors and raise ``ValueError``.

    Registers are context managers; leaving the ``with`` block frees the
    bits.  They can also be freed explicitly (idempotent).
    """

    __slots__ = ("_meter", "name", "max_value", "width", "_value", "_freed")

    def __init__(self, meter: SpaceMeter, name: str, max_value: int) -> None:
        if max_value < 0:
            raise ValueError("max_value must be non-negative")
        self._meter = meter
        self.name = name
        self.max_value = max_value
        self.width = bits_needed(max_value)
        self._value = 0
        self._freed = False
        meter._charge(self.width)

    @property
    def value(self) -> int:
        if self._freed:
            raise RuntimeError(f"register {self.name} used after free")
        return self._value

    @value.setter
    def value(self, new_value: int) -> None:
        if self._freed:
            raise RuntimeError(f"register {self.name} used after free")
        if not 0 <= new_value <= self.max_value:
            raise ValueError(
                f"register {self.name} overflow: {new_value} not in "
                f"[0, {self.max_value}]"
            )
        self._value = new_value

    def free(self) -> None:
        """Release the register's bits (idempotent)."""
        if not self._freed:
            self._meter._release(self.width)
            self._freed = True

    def __enter__(self) -> "Register":
        return self

    def __exit__(self, *exc_info) -> None:
        self.free()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "freed" if self._freed else f"value={self._value}"
        return f"Register({self.name}, width={self.width}, {state})"


class RegisterFile:
    """A named group of registers freed together (a stack frame's worth).

    The pipeline simulator allocates one file per stage (holding ``d_i``,
    ``o_i`` and scratch counters) and frees it when the stage retires.
    """

    def __init__(self, meter: SpaceMeter, name: str) -> None:
        self._meter = meter
        self.name = name
        self._registers: dict[str, Register] = {}

    def register(self, name: str, max_value: int) -> Register:
        """Allocate a register inside this file."""
        reg = self._meter.register(f"{self.name}.{name}", max_value)
        self._registers[name] = reg
        return reg

    def bit(self, name: str) -> Register:
        """Allocate a single-bit register inside this file."""
        return self.register(name, 1)

    def __getitem__(self, name: str) -> Register:
        return self._registers[name]

    def total_width(self) -> int:
        """Combined width of the live registers in the file."""
        return sum(r.width for r in self._registers.values() if not r._freed)

    def free(self) -> None:
        """Free every register in the file."""
        for reg in self._registers.values():
            reg.free()

    def __enter__(self) -> "RegisterFile":
        return self

    def __exit__(self, *exc_info) -> None:
        self.free()
