"""Logspace transducers over strings: the stage functions of Lemma 3.1.

A :class:`LogspaceTransducer` models a functional Turing machine ``T``
with a read-only input tape, a write-only output tape, and a worktape
whose registers must be allocated through a :class:`SpaceMeter`.  Two
execution modes exist:

* :meth:`LogspaceTransducer.transduce` — run normally, collecting the
  whole output (used when the output may be stored);
* :meth:`LogspaceTransducer.output_char` — the paper's ``P_i``
  modification: run with *all output suppressed except position ``j``*,
  tracked by a metered index register (``d_i``) and returned through a
  one-character register (``o_i``).  This is what lets compositions run
  without storing intermediate strings.

Inputs are accessed through an :class:`InputView`, so a transducer can
read either a real string or the *virtual* output of a previous stage
(see :mod:`repro.machine.pipeline`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable

from repro.machine.meter import RegisterFile, SpaceMeter


class InputView(ABC):
    """Read-only, position-addressable view of a string."""

    @abstractmethod
    def length(self) -> int:
        """Number of characters available."""

    @abstractmethod
    def char(self, index: int) -> str:
        """The character at ``index`` (0-based)."""

    def text(self) -> str:
        """Materialise the whole view (testing/debugging only)."""
        return "".join(self.char(i) for i in range(self.length()))


class StringView(InputView):
    """A view over an in-memory string (the pipeline's stage-0 input)."""

    def __init__(self, text: str) -> None:
        self._text = text

    def length(self) -> int:
        return len(self._text)

    def char(self, index: int) -> str:
        return self._text[index]


class LogspaceTransducer(ABC):
    """A stage function ``f`` in ``FDSPACE[log n]`` (Section 3).

    Subclasses implement :meth:`run`, reading through ``view`` and
    writing characters through ``emit``; every register they need must
    come from the supplied :class:`RegisterFile` so the meter sees it.
    The contract mirrors the paper's requirements on ``T``:

    * reads are by explicit position (the input head);
    * output is emitted strictly left-to-right and never re-read;
    * workspace is ``O(log n)`` registers for inputs of length ``n``.
    """

    #: Short name used in register labels and experiment reports.
    name: str = "stage"

    @abstractmethod
    def run(
        self,
        view: InputView,
        emit: Callable[[str], None],
        registers: RegisterFile,
    ) -> None:
        """Execute the machine over ``view``, emitting the output."""

    # ------------------------------------------------------------------
    # Execution harness
    # ------------------------------------------------------------------

    def transduce(self, view: InputView, meter: SpaceMeter) -> str:
        """Run and collect the full output string."""
        chunks: list[str] = []
        with RegisterFile(meter, self.name) as registers:
            self.run(view, chunks.append, registers)
        return "".join(chunks)

    def output_length(self, view: InputView, meter: SpaceMeter) -> int:
        """``|f(x)|`` computed with a counter only (no output stored)."""
        with RegisterFile(meter, f"{self.name}.lenctr") as registers:
            # Output length of a logspace_pol function is polynomial in
            # the input; a generous fixed polynomial bound sizes the
            # counter register (the model allows any O(log n) width).
            counter = registers.register(
                "count", max_value=max(16, view.length() + 4) ** 3
            )

            def count(_ch: str) -> None:
                counter.value = counter.value + 1

            self.run(view, count, registers)
            return counter.value

    def output_char(self, view: InputView, index: int, meter: SpaceMeter) -> str:
        """The ``P_i`` protocol: compute only the ``index``-th output char.

        Allocates the paper's dedicated registers — the index register
        ``d`` holding the requested position, a running position counter,
        and the one-character output register ``o`` — and suppresses all
        other output.  Raises ``IndexError`` when the output is shorter
        than ``index + 1``.
        """
        with RegisterFile(meter, f"{self.name}.bitprobe") as registers:
            bound = max(16, view.length() + 4) ** 3
            d_reg = registers.register("d", max_value=bound)
            d_reg.value = index
            position = registers.register("pos", max_value=bound)
            o_reg = registers.register("o", max_value=0x10FFFF)
            found = registers.bit("found")

            def sieve(ch: str) -> None:
                if position.value == d_reg.value:
                    o_reg.value = ord(ch)
                    found.value = 1
                position.value = position.value + 1

            self.run(view, sieve, registers)
            if not found.value:
                raise IndexError(
                    f"stage {self.name}: output has {position.value} chars, "
                    f"no index {index}"
                )
            return chr(o_reg.value)


class FunctionTransducer(LogspaceTransducer):
    """Wrap a plain ``str → str`` function as a transducer.

    The wrapped function is treated as the machine's transition logic;
    its internal workspace is charged as a declared number of
    ``O(log n)``-width registers (default 4), per the accounting
    convention.  Used to lift algorithmic steps (like the duality
    ``next`` step) into the pipeline without rewriting them as explicit
    head movements.
    """

    def __init__(
        self, fn: Callable[[str], str], name: str = "fn", charged_registers: int = 4
    ) -> None:
        self._fn = fn
        self.name = name
        self._charged = charged_registers

    def run(self, view, emit, registers) -> None:
        bound = max(16, view.length() + 4)
        for k in range(self._charged):
            registers.register(f"work{k}", max_value=bound)
        for ch in self._fn(view.text()):
            emit(ch)
