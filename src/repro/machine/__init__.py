"""Space-bounded computation substrate (paper, Section 3).

Bit-metered registers (:mod:`repro.machine.meter`), logspace transducers
(:mod:`repro.machine.transducer`), the Lemma 3.1 self-composition
pipeline that never stores intermediate outputs
(:mod:`repro.machine.pipeline`), and the ``Q_log`` repetition counts
(:mod:`repro.machine.qlog`).
"""

from repro.machine.library import (
    STREAMING_TRANSDUCERS,
    BinaryIncrementTransducer,
    CopyTransducer,
    DuplicateTransducer,
    FilterZerosTransducer,
    ParityPrefixTransducer,
    RotateTransducer,
)
from repro.machine.meter import Register, RegisterFile, SpaceMeter
from repro.machine.pipeline import Pipeline, self_composition
from repro.machine.qlog import (
    QlogFunction,
    constant,
    floor_log_length,
    path_descriptor_length,
)
from repro.machine.transducer import (
    FunctionTransducer,
    InputView,
    LogspaceTransducer,
    StringView,
)

__all__ = [
    "STREAMING_TRANSDUCERS",
    "BinaryIncrementTransducer",
    "CopyTransducer",
    "DuplicateTransducer",
    "FilterZerosTransducer",
    "FunctionTransducer",
    "ParityPrefixTransducer",
    "RotateTransducer",
    "InputView",
    "LogspaceTransducer",
    "Pipeline",
    "QlogFunction",
    "Register",
    "RegisterFile",
    "SpaceMeter",
    "StringView",
    "constant",
    "floor_log_length",
    "path_descriptor_length",
    "self_composition",
]
