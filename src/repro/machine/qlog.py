"""The class ``Q_log`` of logspace-computable ``O(log n)`` repetition counts.

Section 3 defines ``Q_log`` as the set of functions ρ from input strings
to naturals with ``ρ(I) = O(log |I|)``, computable in logspace, and uses
them to bound the number of self-compositions (``f^ρ(I)``).  The
experiment harness instantiates a handful of concrete members.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class QlogFunction:
    """A member of ``Q_log``: a named ``O(log n)`` repetition count.

    ``bound_factor`` documents the constant ``c`` with
    ``ρ(I) ≤ c·log₂|I| + c`` — asserted on every call, so a function that
    silently grows beyond ``O(log n)`` fails loudly in tests.
    """

    name: str
    fn: Callable[[str], int]
    bound_factor: float = 4.0

    def __call__(self, text: str) -> int:
        value = self.fn(text)
        if value < 0:
            raise ValueError(f"{self.name}: negative repetition count")
        limit = self.bound_factor * (math.log2(len(text) + 2) + 1)
        if value > limit:
            raise ValueError(
                f"{self.name}: ρ(I) = {value} exceeds the declared "
                f"O(log n) bound {limit:.1f} for |I| = {len(text)}"
            )
        return value


def floor_log_length() -> QlogFunction:
    """``ρ(I) = max(1, ⌊log₂ |I|⌋)`` — the generic Lemma 3.1 count."""
    return QlogFunction(
        "floor-log-length",
        lambda text: max(1, (len(text)).bit_length() - 1 if text else 1),
    )


def constant(value: int) -> QlogFunction:
    """A constant repetition count (constants are trivially in ``Q_log``)."""
    return QlogFunction(f"const-{value}", lambda _text: value, bound_factor=float(value) + 1)


def path_descriptor_length() -> QlogFunction:
    """``ρ = ℓ(π)`` for inputs encoding ``(instance, π)`` — Lemma 4.2's count.

    The encoding convention: the descriptor is the text after the last
    ``'#'``, entries separated by ``','`` (empty means the root).  Its
    length is ≤ ``⌊log |H|⌋ ≤ log |I|``, so this is in ``Q_log``.
    """

    def measure(text: str) -> int:
        _, _, tail = text.rpartition("#")
        tail = tail.strip()
        if not tail:
            return 1
        return max(1, tail.count(",") + 1)

    return QlogFunction("path-descriptor-length", measure)
