"""Parser for the textual monotone-DNF syntax.

Grammar (whitespace-insensitive)::

    formula  := "FALSE" | term ("|" term)*
    term     := "TRUE"  | var+
    var      := [A-Za-z0-9_]+

Examples::

    "x1 x2 | x3"        →  (x1 ∧ x2) ∨ x3
    "a b | a c | b c"   →  the 2-out-of-3 majority function
    "TRUE"              →  constant true
    "FALSE"             →  constant false

``&`` and ``∧`` are accepted as optional conjunction separators inside a
term; ``∨`` is accepted for ``|``.  Variables that look like integers are
parsed as ints so formulas and generated hypergraphs share vertex types.
"""

from __future__ import annotations

import re

from repro.errors import ParseError
from repro.dnf.formula import MonotoneDNF

_VAR_RE = re.compile(r"^[A-Za-z0-9_]+$")


def _parse_var(token: str):
    if not _VAR_RE.match(token):
        raise ParseError(f"invalid variable name: {token!r}")
    try:
        return int(token)
    except ValueError:
        return token


def parse_dnf(text: str, variables=None) -> MonotoneDNF:
    """Parse a monotone DNF from text (see module docstring for the syntax).

    Parameters
    ----------
    text:
        The formula source.
    variables:
        Optional explicit variable universe (a superset of the mentioned
        variables).
    """
    cleaned = text.replace("∨", "|").replace("∧", " ").replace("&", " ")
    cleaned = cleaned.replace("(", " ").replace(")", " ").strip()
    if not cleaned:
        raise ParseError("empty formula text")
    if cleaned.upper() == "FALSE":
        return MonotoneDNF((), variables=variables)

    terms: list[frozenset] = []
    for chunk in cleaned.split("|"):
        chunk = chunk.strip()
        if not chunk:
            raise ParseError(f"empty term in formula: {text!r}")
        if chunk.upper() == "TRUE":
            terms.append(frozenset())
            continue
        terms.append(frozenset(_parse_var(tok) for tok in chunk.split()))
    return MonotoneDNF(terms, variables=variables)


def dnf_to_text(formula: MonotoneDNF) -> str:
    """Inverse of :func:`parse_dnf` (round-trips modulo term order)."""
    return formula.to_text()
