"""Monotone DNF formulas: the Boolean-function face of hypergraph duality."""

from repro.dnf.formula import MonotoneDNF
from repro.dnf.parser import dnf_to_text, parse_dnf

__all__ = ["MonotoneDNF", "dnf_to_text", "parse_dnf"]
