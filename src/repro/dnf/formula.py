"""Monotone DNF formulas and the DNF ↔ hypergraph correspondence.

The paper (Section 1) treats monotone-DNF duality and hypergraph duality
as literally the same problem:

* a monotone DNF ``f = t₁ ∨ … ∨ t_m`` maps to the hypergraph with one
  hyperedge per disjunct (the set of variables of that disjunct);
* ``f`` is *irredundant* iff no disjunct's variable set covers another's,
  i.e. iff the hypergraph is simple;
* ``f`` and ``g`` are *dual* iff ``f(x₁,…,x_n) ≡ ¬g(¬x₁,…,¬x_n)``.

:class:`MonotoneDNF` keeps the formula view (evaluation, semantic checks,
pretty-printing) and hands all heavy lifting to the hypergraph layer.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro._util import format_set, powerset, vertex_key
from repro.errors import NotIrredundantError
from repro.hypergraph.hypergraph import Hypergraph


class MonotoneDNF:
    """An immutable monotone DNF: a set of terms, each a set of variables.

    Terms are ``frozenset``s of variable names (strings or ints).  The
    constant *false* is the DNF with no terms; the constant *true* is the
    DNF containing the empty term.

    Parameters
    ----------
    terms:
        Iterable of variable-iterables.
    variables:
        Optional explicit variable universe (needed when the formula must
        be read over more variables than it mentions — duality is only
        meaningful over a fixed shared universe).
    """

    __slots__ = ("_hypergraph",)

    def __init__(
        self,
        terms: Iterable[Iterable] = (),
        variables: Iterable | None = None,
    ) -> None:
        self._hypergraph = Hypergraph(terms, vertices=variables)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    @property
    def terms(self) -> tuple[frozenset, ...]:
        """The disjuncts, canonically ordered."""
        return self._hypergraph.edges

    @property
    def variables(self) -> frozenset:
        """The variable universe."""
        return self._hypergraph.vertices

    def hypergraph(self) -> Hypergraph:
        """The associated hypergraph (one edge per disjunct)."""
        return self._hypergraph

    @classmethod
    def from_hypergraph(cls, hg: Hypergraph) -> "MonotoneDNF":
        """The irredundant DNF of a simple hypergraph (trivial reduction)."""
        return cls(hg.edges, variables=hg.vertices)

    def is_irredundant(self) -> bool:
        """True iff no term's variable set is covered by another term's."""
        return self._hypergraph.is_simple()

    def require_irredundant(self) -> "MonotoneDNF":
        """Return self if irredundant, else raise :class:`NotIrredundantError`."""
        if not self.is_irredundant():
            raise NotIrredundantError(f"redundant DNF: {self}")
        return self

    def irredundant(self) -> "MonotoneDNF":
        """The equivalent irredundant DNF (drop covered terms)."""
        return MonotoneDNF.from_hypergraph(self._hypergraph.minimized())

    def is_constant_false(self) -> bool:
        """True iff the DNF has no terms."""
        return self._hypergraph.is_trivial_false()

    def is_constant_true(self) -> bool:
        """True iff the DNF contains the empty term."""
        return self._hypergraph.is_trivial_true()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MonotoneDNF):
            return NotImplemented
        return self._hypergraph == other._hypergraph

    def __hash__(self) -> int:
        return hash(("MonotoneDNF", self._hypergraph))

    def __len__(self) -> int:
        return len(self._hypergraph)

    def __repr__(self) -> str:
        return f"MonotoneDNF({self.to_text()!r})"

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------

    def evaluate(self, assignment: Mapping | Iterable) -> bool:
        """Evaluate under an assignment.

        ``assignment`` is either a mapping ``variable → bool`` (must cover
        all variables) or an iterable of the variables set to *true*.
        """
        if isinstance(assignment, Mapping):
            true_vars = {v for v in self.variables if assignment[v]}
        else:
            true_vars = frozenset(assignment)
        return any(term <= true_vars for term in self.terms)

    def dual_formula(self) -> "MonotoneDNF":
        """The DNF of the dual function ``f^d(x) = ¬f(¬x)``, computed semantically.

        The dual's prime implicants are exactly the minimal transversals
        of this formula's hypergraph, so this delegates to the exact
        transversal routine.  Exponential in the worst case (as it must
        be, since the dual can be exponentially larger).
        """
        from repro.hypergraph.transversal import transversal_hypergraph

        return MonotoneDNF.from_hypergraph(
            transversal_hypergraph(self._hypergraph)
        )

    def semantically_dual_to(self, other: "MonotoneDNF") -> bool:
        """Truth-table duality check: ``f(x) ≡ ¬g(¬x)`` on all ``2^n`` points.

        The definitional decider — exponential, used as ground truth for
        small instances.  Both formulas are evaluated over the *union* of
        their variable universes.
        """
        universe = self.variables | other.variables
        for true_vars in powerset(universe):
            flipped = universe - true_vars
            if self.evaluate(true_vars) != (not other.evaluate(flipped)):
                return False
        return True

    def implies(self, other: "MonotoneDNF") -> bool:
        """Monotone implication ``f ≤ g``: every term of f covers a term of g.

        For monotone formulas, ``f → g`` holds iff each prime implicant
        of ``f`` contains some implicant of ``g``.
        """
        return all(
            any(g_term <= f_term for g_term in other.terms)
            for f_term in self.terms
        )

    def equivalent(self, other: "MonotoneDNF") -> bool:
        """Semantic equivalence of two monotone DNFs (via double implication)."""
        return self.implies(other) and other.implies(self)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def to_text(self) -> str:
        """Render as ``x1 x2 | x3 x4`` (terms joined by '|', vars by spaces)."""
        if self.is_constant_false():
            return "FALSE"
        if self.is_constant_true() and len(self.terms) == 1:
            return "TRUE"
        parts = []
        for term in self.terms:
            if not term:
                parts.append("TRUE")
            else:
                parts.append(
                    " ".join(str(v) for v in sorted(term, key=vertex_key))
                )
        return " | ".join(parts)

    def pretty(self) -> str:
        """Mathematical rendering with ∧ and ∨."""
        if self.is_constant_false():
            return "⊥"
        rendered = []
        for term in self.terms:
            if not term:
                rendered.append("⊤")
            else:
                rendered.append(
                    " ∧ ".join(str(v) for v in sorted(term, key=vertex_key))
                )
        return " ∨ ".join(f"({t})" if " " in t else t for t in rendered)

    def term_sets_pretty(self) -> str:
        """Render the term family as sets, e.g. ``{{x1, x2}, {x3}}``."""
        return "{" + ", ".join(format_set(t) for t in self.terms) + "}"
