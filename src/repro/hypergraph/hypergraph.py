"""The :class:`Hypergraph` type: an immutable finite family of finite sets.

Terminology follows the paper (Gottlob, PODS 2013, Section 1):

* A *hypergraph* ``H`` is a finite family of finite sets (*hyperedges*)
  over a vertex set ``V(H)``.
* ``H`` is *simple* if no hyperedge is contained in another one.
* By default, if the vertex set is not explicitly specified, it is the
  union of the hyperedges.

Two degenerate hypergraphs play the role of Boolean constants when a
hypergraph is read as a monotone DNF (one term per edge):

* the **empty hypergraph** (no edges) corresponds to constant *false*;
* the hypergraph containing only the **empty edge** corresponds to
  constant *true*.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro._util import (
    canonical_edges,
    format_family,
    sort_key,
    vertex_key,
)
from repro.core import BitsetFamily, VertexIndex
from repro.errors import NotSimpleError, VertexError


class Hypergraph:
    """An immutable hypergraph: a family of ``frozenset`` hyperedges.

    Parameters
    ----------
    edges:
        Any iterable of vertex-iterables.  Duplicate edges collapse.
    vertices:
        Optional explicit vertex universe.  Must contain every vertex
        that occurs in an edge; may be larger (isolated vertices are
        meaningful for restrictions and for duality over a fixed
        universe).  When omitted, the universe is the union of the edges.

    The class is hashable and usable as a dict key / set member.  Edges
    are stored in a canonical deterministic order (by size, then
    lexicographically), so iteration order, ``repr`` and serialisations
    are reproducible across runs.
    """

    __slots__ = ("_edges", "_vertices", "_hash", "_bits")

    def __init__(
        self,
        edges: Iterable[Iterable] = (),
        vertices: Iterable | None = None,
    ) -> None:
        frozen = canonical_edges(frozenset(e) for e in edges)
        union: set = set()
        for edge in frozen:
            union |= edge
        if vertices is None:
            universe = frozenset(union)
        else:
            universe = frozenset(vertices)
            if not union <= universe:
                missing = union - universe
                raise VertexError(
                    f"edges use vertices outside the declared universe: "
                    f"{sorted(missing, key=vertex_key)}"
                )
        self._edges: tuple[frozenset, ...] = frozen
        self._vertices: frozenset = universe
        self._hash: int | None = None
        self._bits = None

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------

    @property
    def edges(self) -> tuple[frozenset, ...]:
        """The hyperedges in canonical order."""
        return self._edges

    @property
    def vertices(self) -> frozenset:
        """The vertex universe ``V(H)``."""
        return self._vertices

    def __iter__(self) -> Iterator[frozenset]:
        return iter(self._edges)

    def __len__(self) -> int:
        return len(self._edges)

    def __contains__(self, edge: Iterable) -> bool:
        return frozenset(edge) in set(self._edges)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Hypergraph):
            return NotImplemented
        return self._edges == other._edges and self._vertices == other._vertices

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self._edges, self._vertices))
        return self._hash

    def __repr__(self) -> str:
        return f"Hypergraph({format_family(self._edges)}, V={len(self._vertices)})"

    # ------------------------------------------------------------------
    # Structural predicates
    # ------------------------------------------------------------------

    def is_simple(self) -> bool:
        """True iff no hyperedge contains another (the family is an antichain).

        Checked on the bitset view (one ``&``-compare per edge pair); the
        view is cached, so deciders that call :meth:`require_simple` and
        then run mask kernels pay for the encoding once.
        """
        return self.bits().is_antichain()

    def require_simple(self, what: str = "hypergraph") -> "Hypergraph":
        """Return ``self`` if simple, else raise :class:`NotSimpleError`."""
        if not self.is_simple():
            raise NotSimpleError(f"{what} must be simple: {self!r}")
        return self

    def is_trivial_true(self) -> bool:
        """True iff this hypergraph contains the empty edge (constant true DNF)."""
        return frozenset() in set(self._edges)

    def is_trivial_false(self) -> bool:
        """True iff this hypergraph has no edges (constant false DNF)."""
        return not self._edges

    def has_isolated_vertices(self) -> bool:
        """True iff some universe vertex occurs in no edge."""
        covered: set = set()
        for edge in self._edges:
            covered |= edge
        return covered != set(self._vertices)

    def edge_sizes(self) -> tuple[int, ...]:
        """Sizes of the hyperedges, in canonical edge order."""
        return tuple(len(e) for e in self._edges)

    def rank(self) -> int:
        """The maximum edge size (0 for the empty hypergraph)."""
        return max((len(e) for e in self._edges), default=0)

    def degree(self, vertex) -> int:
        """Number of edges containing ``vertex``."""
        if vertex not in self._vertices:
            raise VertexError(f"{vertex!r} is not a vertex of this hypergraph")
        return sum(1 for e in self._edges if vertex in e)

    def degrees(self) -> dict:
        """Degree of every universe vertex (isolated vertices map to 0)."""
        counts = {v: 0 for v in self._vertices}
        for edge in self._edges:
            for v in edge:
                counts[v] += 1
        return counts

    def volume(self, other: "Hypergraph") -> int:
        """The Fredman–Khachiyan instance volume ``|G|·|H|``."""
        return len(self) * len(other)

    # ------------------------------------------------------------------
    # Bitset view
    # ------------------------------------------------------------------

    def bits(self) -> BitsetFamily:
        """The lazily-built bitset view of this hypergraph.

        A :class:`repro.core.BitsetFamily` over a :class:`VertexIndex`
        covering (at least) the universe, built once and cached.
        Because the canonical edge order equals the canonical mask
        order, ``bits().masks[i]`` encodes ``edges[i]``.  The view is a
        derived cache — the ``frozenset`` edges remain the source of
        truth.

        Restriction operators attach views that share the *parent*
        hypergraph's index, so a decomposition node never rebuilds an
        index; consumers must therefore treat the index as a superset of
        the universe (extra bits simply never occur in any mask).
        """
        if self._bits is None:
            index = VertexIndex(self._vertices)
            self._bits = BitsetFamily(
                index,
                tuple(index.encode(edge) for edge in self._edges),
                canonical=True,
            )
        return self._bits

    @classmethod
    def _from_canonical(
        cls, edges: tuple[frozenset, ...], vertices: frozenset
    ) -> "Hypergraph":
        """Internal fast constructor: edges already deduplicated, in
        canonical order, and within ``vertices``.  Callers (the bitset
        fast paths) guarantee the invariants the public constructor
        re-establishes by sorting."""
        hg = cls.__new__(cls)
        hg._edges = edges
        hg._vertices = vertices
        hg._hash = None
        hg._bits = None
        return hg

    # ------------------------------------------------------------------
    # Derivations
    # ------------------------------------------------------------------

    def minimized(self) -> "Hypergraph":
        """The simple hypergraph ``min(H)`` of inclusion-minimal edges.

        The vertex universe is preserved.  Runs in the mask domain via
        the bitset view; the result is identical to minimising the
        ``frozenset`` family directly.
        """
        family = self.bits().minimized()
        out = Hypergraph._from_canonical(family.decode(), self._vertices)
        out._bits = family
        return out

    def with_vertices(self, vertices: Iterable) -> "Hypergraph":
        """Same edges over an explicitly supplied (super-)universe."""
        return Hypergraph(self._edges, vertices=vertices)

    def without_isolated_vertices(self) -> "Hypergraph":
        """Shrink the universe to the union of the edges."""
        return Hypergraph(self._edges)

    def sorted_edges(self) -> list[frozenset]:
        """The edges as a list, in canonical order (a copy, safe to mutate)."""
        return list(self._edges)

    def lexicographically_first_edge(self, candidates: Iterable[frozenset]) -> frozenset:
        """The canonically-first edge among ``candidates``.

        Used for the deterministic tie-breaking the paper suggests in the
        ``process`` procedure (Section 2): "the lexicographically first
        edge G ∈ G^{S_α}".
        """
        chosen = sorted(candidates, key=sort_key)
        if not chosen:
            raise ValueError("no candidate edges supplied")
        return chosen[0]

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_edge_lists(
        cls, edge_lists: Iterable[Iterable], vertices: Iterable | None = None
    ) -> "Hypergraph":
        """Build from any iterable of vertex collections (lists, tuples, sets)."""
        return cls(edge_lists, vertices=vertices)

    @classmethod
    def empty(cls, vertices: Iterable = ()) -> "Hypergraph":
        """The hypergraph with no edges (constant-false DNF)."""
        return cls((), vertices=vertices)

    @classmethod
    def trivial_true(cls, vertices: Iterable = ()) -> "Hypergraph":
        """The hypergraph whose only edge is empty (constant-true DNF)."""
        return cls((frozenset(),), vertices=vertices)

    @classmethod
    def singletons(cls, vertices: Iterable) -> "Hypergraph":
        """One singleton edge per vertex: ``{{v} : v ∈ V}``.

        Its unique minimal transversal is the full vertex set, so this
        hypergraph and ``{V}`` form a dual pair.
        """
        universe = frozenset(vertices)
        return cls(({v} for v in universe), vertices=universe)

    @classmethod
    def single_edge(cls, edge: Iterable, vertices: Iterable | None = None) -> "Hypergraph":
        """The hypergraph with exactly one edge."""
        return cls((frozenset(edge),), vertices=vertices)
