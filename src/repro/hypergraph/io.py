"""Plain-text serialisation of hypergraphs (the ``.hg`` format).

Format, one hyperedge per line::

    # comments start with '#'; blank lines are ignored
    % vertices: a b c d        (optional explicit universe)
    a b
    b c d
    -                          (a single '-' denotes the empty edge)

Vertex tokens are whitespace-separated.  Tokens that parse as integers
become ``int`` vertices; everything else stays a string.  The format is
line-oriented so hypergraphs stream through standard UNIX tooling.
"""

from __future__ import annotations

import io
from collections.abc import Iterable
from pathlib import Path

from repro._util import vertex_key
from repro.errors import ParseError
from repro.hypergraph.hypergraph import Hypergraph

_EMPTY_EDGE_TOKEN = "-"
_UNIVERSE_PREFIX = "% vertices:"


def _parse_token(token: str):
    """An integer if it looks like one, otherwise the raw string."""
    try:
        return int(token)
    except ValueError:
        return token


def loads(text: str) -> Hypergraph:
    """Parse a hypergraph from its ``.hg`` text representation."""
    edges: list[frozenset] = []
    universe: frozenset | None = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("%"):
            if not line.startswith(_UNIVERSE_PREFIX):
                raise ParseError(f"line {lineno}: unknown directive {line!r}")
            tokens = line[len(_UNIVERSE_PREFIX):].split()
            universe = frozenset(_parse_token(t) for t in tokens)
            continue
        if line == _EMPTY_EDGE_TOKEN:
            edges.append(frozenset())
            continue
        edges.append(frozenset(_parse_token(t) for t in line.split()))
    try:
        return Hypergraph(edges, vertices=universe)
    except Exception as exc:  # re-raise with file context
        raise ParseError(f"inconsistent hypergraph text: {exc}") from exc


def dumps(hg: Hypergraph, include_universe: bool = True) -> str:
    """Serialise a hypergraph to the ``.hg`` text format.

    ``include_universe`` writes the explicit universe directive, which is
    required to round-trip isolated vertices.
    """
    out = io.StringIO()
    if include_universe:
        tokens = " ".join(str(v) for v in sorted(hg.vertices, key=vertex_key))
        out.write(f"{_UNIVERSE_PREFIX} {tokens}\n".rstrip() + "\n")
    for edge in hg.edges:
        if not edge:
            out.write(_EMPTY_EDGE_TOKEN + "\n")
        else:
            out.write(" ".join(str(v) for v in sorted(edge, key=vertex_key)) + "\n")
    return out.getvalue()


def load(path: str | Path) -> Hypergraph:
    """Read a hypergraph from a ``.hg`` file."""
    return loads(Path(path).read_text(encoding="utf-8"))


def dump(hg: Hypergraph, path: str | Path, include_universe: bool = True) -> None:
    """Write a hypergraph to a ``.hg`` file."""
    Path(path).write_text(dumps(hg, include_universe), encoding="utf-8")


def load_many(path: str | Path, separator: str = "==") -> list[Hypergraph]:
    """Read several hypergraphs from one file, separated by ``separator`` lines."""
    chunks = []
    current: list[str] = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        if line.strip() == separator:
            chunks.append("\n".join(current))
            current = []
        else:
            current.append(line)
    chunks.append("\n".join(current))
    return [loads(chunk) for chunk in chunks if chunk.strip()]


def dump_many(
    hypergraphs: Iterable[Hypergraph], path: str | Path, separator: str = "=="
) -> None:
    """Write several hypergraphs to one file (see :func:`load_many`)."""
    parts = [dumps(hg) for hg in hypergraphs]
    Path(path).write_text(
        ("\n" + separator + "\n").join(parts), encoding="utf-8"
    )
