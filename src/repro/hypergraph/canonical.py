"""Canonical mask payloads and canonical hashing of hypergraphs.

Two facilities the parallel subsystem (:mod:`repro.parallel`) is built
on, both direct consequences of the PR-1 invariant that the canonical
edge order *equals* the canonical mask order over a
:class:`repro.core.VertexIndex`:

* **Mask payloads** — a hypergraph serialised as ``(vertices, masks)``:
  the universe in canonical vertex order plus one integer per edge in
  canonical edge order.  Payloads are tuples of primitives, so they
  pickle in microseconds and cross process boundaries cheaply; several
  hypergraphs over the same universe share one vertex tuple (the shard
  planner ships the header once and one mask family per shard).

* **Canonical hashes** — deterministic digests of the *structure*
  (:func:`canonical_digest`: invariant under order-preserving vertex
  relabellings, since it hashes bit positions, not labels) and of the
  *labelled instance* (:func:`instance_key`: additionally binds the
  vertex labels and the engine, which is what a result cache must key
  on — certificates mention labelled vertices, so a structural key
  alone would serve one labelling's witness to another labelling).
"""

from __future__ import annotations

import hashlib

from repro.core import BitsetFamily, VertexIndex
from repro.hypergraph.hypergraph import Hypergraph

#: A hypergraph as primitives: (vertex tuple in canonical order,
#: mask tuple in canonical edge order).
MaskPayload = tuple[tuple, tuple[int, ...]]


def mask_payload(hg: Hypergraph) -> MaskPayload:
    """Serialise a hypergraph to its canonical ``(vertices, masks)`` pair.

    The inverse is :func:`from_mask_payload`; the round trip is exact
    (universe, edges and edge order all survive).
    """
    family = hg.bits()
    # The view's index may be a superset universe when the hypergraph
    # was produced by a restriction operator; re-encode against the
    # hypergraph's own universe so payloads are self-contained.
    if len(family.index) == len(hg.vertices):
        return family.index.vertices, tuple(family.masks)
    index = VertexIndex(hg.vertices)
    return index.vertices, tuple(index.encode(edge) for edge in hg.edges)


def from_mask_payload(payload: MaskPayload) -> Hypergraph:
    """Rebuild a hypergraph from :func:`mask_payload` output.

    The payload's vertex tuple is already in canonical order and its
    masks in canonical edge order, so the fast constructor applies and
    the bitset view is attached for free (no re-encoding).
    """
    vertices, masks = payload
    index = VertexIndex(vertices)
    hg = Hypergraph._from_canonical(
        tuple(index.decode(mask) for mask in masks), frozenset(vertices)
    )
    hg._bits = BitsetFamily(index, tuple(masks), canonical=True)
    return hg


def _structure_bytes(hg: Hypergraph) -> bytes:
    """A deterministic byte encoding of the mask structure.

    ``n`` (universe size) followed by each edge mask in canonical edge
    order, each as a fixed-width little-endian field.  Labels do not
    participate — only which bit positions co-occur in which edges.
    """
    _vertices, masks = mask_payload(hg)
    n = len(_vertices)
    width = max(1, (n + 7) // 8)
    out = bytearray(b"HG1")
    out += n.to_bytes(4, "little")
    out += len(masks).to_bytes(4, "little")
    for mask in masks:
        out += mask.to_bytes(width, "little")
    return bytes(out)


def canonical_digest(hg: Hypergraph) -> str:
    """A structural digest: sha256 over the canonical mask encoding.

    Invariant under any vertex relabelling that preserves the canonical
    vertex order (e.g. the same family built over ``0..n-1`` or over
    ``"a".."z"``): such relabellings leave every bit position, and hence
    every mask, unchanged.  Distinct mask families give distinct digests
    (up to sha256 collisions).
    """
    return hashlib.sha256(_structure_bytes(hg)).hexdigest()


def pair_digest(g: Hypergraph, h: Hypergraph) -> str:
    """A structural digest of the duality instance ``(G, H)``.

    The pair-level companion of :func:`canonical_digest`: labels and
    engine name do not participate, so two instances that differ only
    by an order-preserving vertex relabelling (applied to both sides)
    share a digest.  The duality *verdict* is invariant under such a
    relabelling, but certificates are not (witnesses are labelled
    sets), which is why this digest can index verdicts — the durable
    store's ``canonical_digest`` column — yet can never stand in for
    :func:`instance_key` on the answer path.
    """
    hasher = hashlib.sha256()
    hasher.update(b"PAIR1")
    hasher.update(_structure_bytes(g))
    hasher.update(_structure_bytes(h))
    return hasher.hexdigest()


def instance_key(g: Hypergraph, h: Hypergraph, method: str = "") -> str:
    """A cache key for the duality instance ``(G, H)`` under ``method``.

    Unlike :func:`canonical_digest` this binds the vertex *labels* too
    (certificates are labelled sets — a structural key would let one
    labelling's cached witness answer for a differently-labelled twin)
    and the engine name (different engines return different, though
    equally valid, certificates).
    """
    hasher = hashlib.sha256()
    hasher.update(method.encode("utf-8"))
    for hg in (g, h):
        vertices, _masks = mask_payload(hg)
        hasher.update(b"|V|")
        for v in vertices:
            hasher.update(repr(v).encode("utf-8"))
            hasher.update(b"\x00")
        hasher.update(_structure_bytes(hg))
    return hasher.hexdigest()
