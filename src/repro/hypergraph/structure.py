"""Structural hypergraph analysis: the §6 tractability landscape.

The paper's concluding discussion (Section 6) maps where ``Dual`` is
easy: it is tractable for hypergraphs of **bounded degeneracy** and in
particular for **acyclic** hypergraphs (= hypertree width 1), while
bounded hypertree width ≥ 2 already leaves it as hard as the general
case.  This module implements the classical structural notions so
instances can be *classified* against that landscape:

* α-acyclicity via the GYO (Graham / Yu–Özsoyoğlu) reduction;
* conformality (every clique of the primal graph lies in an edge) —
  with acyclicity of the primal graph this characterises α-acyclicity;
* degeneracy of the primal graph (the bounded-degeneracy parameter);
* a :func:`tractability_report` summarising which §6 criteria an
  instance meets.

These are exact textbook algorithms (GYO is the standard linear-ish
reduction), used by experiment E13 to classify the workload families.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import vertex_key
from repro.hypergraph.hypergraph import Hypergraph


def primal_graph_edges(hg: Hypergraph) -> set[frozenset]:
    """The primal (2-section) graph: vertices co-occurring in an edge."""
    pairs: set[frozenset] = set()
    for edge in hg.edges:
        ordered = sorted(edge, key=vertex_key)
        for i, u in enumerate(ordered):
            for v in ordered[i + 1:]:
                pairs.add(frozenset({u, v}))
    return pairs


def gyo_reduction(hg: Hypergraph) -> Hypergraph:
    """Run the GYO reduction to a fixed point and return the residue.

    Repeatedly (a) remove vertices occurring in exactly one edge
    (*ears' private vertices*) and (b) remove edges contained in other
    edges.  The hypergraph is α-acyclic iff the residue is empty (no
    edges, or a single empty edge).
    """
    edges = [set(e) for e in hg.edges]
    changed = True
    while changed:
        changed = False
        # (a) vertices in exactly one edge
        occurrence: dict = {}
        for idx, edge in enumerate(edges):
            for v in edge:
                occurrence.setdefault(v, []).append(idx)
        for v, holders in occurrence.items():
            if len(holders) == 1:
                edges[holders[0]].discard(v)
                changed = True
        # (b) edges contained in another edge (keep one copy of equals)
        survivors: list[set] = []
        for idx, edge in enumerate(edges):
            absorbed = False
            for jdx, other in enumerate(edges):
                if idx == jdx:
                    continue
                if edge < other or (edge == other and idx > jdx):
                    absorbed = True
                    break
            if not absorbed:
                survivors.append(edge)
        if len(survivors) != len(edges):
            changed = True
        edges = survivors
    remaining = [e for e in edges if e]
    return Hypergraph(remaining, vertices=hg.vertices)


def is_alpha_acyclic(hg: Hypergraph) -> bool:
    """α-acyclicity via GYO: the reduction empties the hypergraph.

    Degenerate conventions: the empty hypergraph and single-edge
    hypergraphs are acyclic.
    """
    if len(hg) <= 1:
        return True
    return len(gyo_reduction(hg)) == 0


def is_conformal(hg: Hypergraph) -> bool:
    """Conformality: every maximal clique of the primal graph is inside an edge.

    Checked exactly via maximal-clique enumeration of the primal graph
    (Bron–Kerbosch with pivoting; fine at the library's test scale).
    """
    adjacency: dict = {v: set() for v in hg.vertices}
    for pair in primal_graph_edges(hg):
        u, v = tuple(pair)
        adjacency[u].add(v)
        adjacency[v].add(u)

    cliques: list[frozenset] = []

    def bron_kerbosch(r: set, p: set, x: set) -> None:
        if not p and not x:
            cliques.append(frozenset(r))
            return
        pivot_pool = p | x
        pivot = max(pivot_pool, key=lambda w: len(adjacency[w] & p))
        for v in list(p - adjacency[pivot]):
            bron_kerbosch(r | {v}, p & adjacency[v], x & adjacency[v])
            p.discard(v)
            x.add(v)

    active = {v for v in hg.vertices if adjacency[v] or any(v in e for e in hg.edges)}
    bron_kerbosch(set(), set(active), set())
    edge_sets = [set(e) for e in hg.edges]
    return all(
        any(clique <= edge for edge in edge_sets) for clique in cliques if clique
    )


def primal_degeneracy(hg: Hypergraph) -> int:
    """Degeneracy of the primal graph (max min-degree over subgraphs).

    Computed by the standard peeling order: repeatedly remove a vertex
    of minimum degree; the degeneracy is the largest degree seen at
    removal time.  Returns 0 for edgeless hypergraphs.
    """
    adjacency: dict = {v: set() for v in hg.vertices}
    for pair in primal_graph_edges(hg):
        u, v = tuple(pair)
        adjacency[u].add(v)
        adjacency[v].add(u)
    remaining = {v: set(neigh) for v, neigh in adjacency.items()}
    degeneracy = 0
    while remaining:
        v = min(
            remaining,
            key=lambda w: (len(remaining[w]), vertex_key(w)),
        )
        degeneracy = max(degeneracy, len(remaining[v]))
        for u in remaining[v]:
            remaining[u].discard(v)
        del remaining[v]
    return degeneracy


@dataclass(frozen=True)
class TractabilityReport:
    """Which §6 tractability criteria an instance satisfies.

    ``alpha_acyclic`` — hypertree width 1: ``Dual`` tractable ([9]);
    ``degeneracy`` — the bounded-degeneracy parameter;
    ``conformal`` — conformality of the edge family;
    ``rank`` — maximum edge size (bounded rank is another classical
    tractable case for dualization);
    ``verdict`` — a one-line classification for reports.
    """

    alpha_acyclic: bool
    conformal: bool
    degeneracy: int
    rank: int
    verdict: str


def tractability_report(
    hg: Hypergraph, degeneracy_threshold: int = 3, rank_threshold: int = 3
) -> TractabilityReport:
    """Classify a hypergraph against the §6 tractable-case landscape.

    The thresholds delimit "bounded" for the report's verdict; the raw
    parameters are always included so callers can apply their own.
    """
    acyclic = is_alpha_acyclic(hg)
    conformal = is_conformal(hg)
    degeneracy = primal_degeneracy(hg)
    rank = hg.rank()
    if acyclic:
        verdict = "tractable: alpha-acyclic (hypertree width 1, [9])"
    elif degeneracy <= degeneracy_threshold:
        verdict = (
            f"tractable: primal degeneracy {degeneracy} <= "
            f"{degeneracy_threshold} (bounded degeneracy, [9])"
        )
    elif rank <= rank_threshold:
        verdict = (
            f"tractable: rank {rank} <= {rank_threshold} "
            "(bounded edge size)"
        )
    else:
        verdict = (
            "no §6 tractability criterion applies — general-case instance"
        )
    return TractabilityReport(
        alpha_acyclic=acyclic,
        conformal=conformal,
        degeneracy=degeneracy,
        rank=rank,
        verdict=verdict,
    )
