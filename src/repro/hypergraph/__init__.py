"""Hypergraph substrate: families of sets, transversals, and generators.

This package provides everything Section 1 of the paper presupposes:
simple hypergraphs, the restriction operators of the Boros–Makino
decomposition, exact minimal-transversal computation (the ground truth
for all duality deciders), and the instance generators used as
experimental workloads.
"""

from repro.hypergraph.canonical import (
    canonical_digest,
    from_mask_payload,
    instance_key,
    mask_payload,
    pair_digest,
)
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.operations import (
    complement_family,
    contract,
    delete_edges_meeting,
    minimized_union,
    project,
    relabel,
    restrict_to_subsets,
    restriction_instance,
    union,
)
from repro.hypergraph.structure import (
    is_alpha_acyclic,
    is_conformal,
    primal_degeneracy,
    tractability_report,
)
from repro.hypergraph.transversal import (
    berge_peak_intermediate,
    cross_intersecting,
    find_new_transversal_brute_force,
    is_minimal_transversal,
    is_new_transversal,
    is_transversal,
    maximal_independent_sets,
    minimal_transversals,
    minimalize_transversal,
    self_transversal,
    transversal_hypergraph,
    transversal_hypergraph_reference,
    transversals_brute_force,
)

__all__ = [
    "Hypergraph",
    "berge_peak_intermediate",
    "canonical_digest",
    "from_mask_payload",
    "instance_key",
    "mask_payload",
    "pair_digest",
    "complement_family",
    "contract",
    "cross_intersecting",
    "is_alpha_acyclic",
    "is_conformal",
    "primal_degeneracy",
    "tractability_report",
    "delete_edges_meeting",
    "find_new_transversal_brute_force",
    "is_minimal_transversal",
    "is_new_transversal",
    "is_transversal",
    "maximal_independent_sets",
    "minimal_transversals",
    "minimalize_transversal",
    "minimized_union",
    "project",
    "relabel",
    "restrict_to_subsets",
    "restriction_instance",
    "self_transversal",
    "transversal_hypergraph",
    "transversal_hypergraph_reference",
    "transversals_brute_force",
    "union",
]
