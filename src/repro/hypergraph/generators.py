"""Instance generators: the workload families behind every experiment.

Each generator documents the duality status of what it produces, because
the experiments need both *known-dual* pairs (to test the "all leaves
done" direction) and controlled *non-dual* perturbations (to test witness
extraction).  Several families are classical in the dualization
literature:

* **Matching duals** ``M_k``: ``k`` disjoint 2-element edges; the dual has
  ``2^k`` edges.  The classical family on which Fredman–Khachiyan-style
  recursions exhibit their worst behaviour and the standard scaling
  workload (used here by experiments E3, E6, E10).
* **Threshold hypergraphs** ``TH_n``: all ``⌈n/2⌉``-subsets of an
  ``n``-universe; for odd ``n`` this is self-dual, giving dual instances
  whose two sides are equal.
* **Graph-derived pairs**: minimal vertex covers vs. maximal cliques of
  the complement — textbook dual pairs with irregular structure.

All randomness flows through an explicit :class:`random.Random` seed, so
every workload is reproducible.
"""

from __future__ import annotations

import random
from itertools import combinations

from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.operations import relabel
from repro.hypergraph.transversal import transversal_hypergraph


def matching(k: int) -> Hypergraph:
    """``M_k``: the perfect matching ``{{0,1}, {2,3}, …}`` on ``2k`` vertices."""
    if k < 0:
        raise ValueError("k must be non-negative")
    return Hypergraph(
        ({2 * i, 2 * i + 1} for i in range(k)),
        vertices=range(2 * k),
    )


def matching_dual(k: int) -> Hypergraph:
    """``tr(M_k)``: one vertex from each matching edge — ``2^k`` edges.

    Built directly (not via ``tr``) so it stays cheap for the larger
    ``k`` used by scaling experiments.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    edges = []
    for choice in range(2 ** k):
        edges.append(
            frozenset(2 * i + ((choice >> i) & 1) for i in range(k))
        )
    return Hypergraph(edges, vertices=range(2 * k))


def matching_dual_pair(k: int) -> tuple[Hypergraph, Hypergraph]:
    """The dual pair ``(M_k, tr(M_k))`` on a shared universe."""
    return matching(k), matching_dual(k)


def threshold(n: int, k: int | None = None) -> Hypergraph:
    """All ``k``-subsets of ``{0..n-1}`` (default ``k = ⌈(n+1)/2⌉``).

    With the default ``k`` and odd ``n``, the result is *self-dual*:
    ``tr(TH_n) = TH_n`` (a set meets every majority iff it is itself a
    majority).  Used for the self-duality / coterie experiments.
    """
    if n < 1:
        raise ValueError("n must be positive")
    if k is None:
        k = (n + 1) // 2
    if not 0 <= k <= n:
        raise ValueError("k must lie in [0, n]")
    return Hypergraph(
        (frozenset(c) for c in combinations(range(n), k)),
        vertices=range(n),
    )


def threshold_dual(n: int, k: int) -> Hypergraph:
    """``tr`` of :func:`threshold`: all ``(n−k+1)``-subsets.

    A set meets every ``k``-subset iff its complement contains no
    ``k``-subset iff it has at least ``n−k+1`` elements.
    """
    if not 1 <= k <= n:
        raise ValueError("k must lie in [1, n]")
    return threshold(n, n - k + 1)


def threshold_dual_pair(n: int, k: int) -> tuple[Hypergraph, Hypergraph]:
    """The dual pair (all k-subsets, all (n−k+1)-subsets) of ``{0..n-1}``."""
    return threshold(n, k), threshold_dual(n, k)


def self_dual_majority(n: int) -> Hypergraph:
    """The majority hypergraph on odd ``n`` — the canonical self-dual family."""
    if n % 2 == 0:
        raise ValueError("self-dual majority needs odd n")
    return threshold(n, (n + 1) // 2)


def path_graph_edges(n: int) -> Hypergraph:
    """The path ``0−1−…−(n−1)`` as a 2-uniform hypergraph."""
    if n < 2:
        raise ValueError("a path needs at least 2 vertices")
    return Hypergraph(
        ({i, i + 1} for i in range(n - 1)),
        vertices=range(n),
    )


def cycle_graph_edges(n: int) -> Hypergraph:
    """The cycle ``C_n`` as a 2-uniform hypergraph."""
    if n < 3:
        raise ValueError("a cycle needs at least 3 vertices")
    return Hypergraph(
        ({i, (i + 1) % n} for i in range(n)),
        vertices=range(n),
    )


def graph_cover_pair(graph: Hypergraph) -> tuple[Hypergraph, Hypergraph]:
    """Dual pair (graph edges, minimal vertex covers) for a 2-uniform graph.

    The minimal transversals of a graph's edge set are exactly its
    minimal vertex covers, so ``(graph, tr(graph))`` is dual by
    construction.  Covers are computed by the exact Berge routine, so
    keep the graphs moderate.
    """
    if any(len(e) != 2 for e in graph.edges):
        raise ValueError("graph_cover_pair expects a 2-uniform hypergraph")
    return graph, transversal_hypergraph(graph)


def disjoint_union_pair(
    pair_a: tuple[Hypergraph, Hypergraph],
    pair_b: tuple[Hypergraph, Hypergraph],
) -> tuple[Hypergraph, Hypergraph]:
    """Combine two dual pairs into a dual pair on the disjoint union.

    If ``(G₁, H₁)`` and ``(G₂, H₂)`` are dual then
    ``(G₁ ∪ G₂, {h₁ ∪ h₂})`` is dual: a minimal transversal of the union
    is a union of minimal transversals of the parts.  Lets experiments
    grow structured instances multiplicatively.
    """
    def tag(hg: Hypergraph, side: int) -> Hypergraph:
        return relabel(hg, {v: (side, v) for v in hg.vertices})

    g1, h1 = tag(pair_a[0], 0), tag(pair_a[1], 0)
    g2, h2 = tag(pair_b[0], 1), tag(pair_b[1], 1)
    universe = g1.vertices | h1.vertices | g2.vertices | h2.vertices
    g = Hypergraph(tuple(g1.edges) + tuple(g2.edges), vertices=universe)
    h = Hypergraph(
        (e1 | e2 for e1 in h1.edges for e2 in h2.edges), vertices=universe
    )
    return g, h


def random_uniform(
    n_vertices: int, edge_size: int, n_edges: int, seed: int = 0
) -> Hypergraph:
    """A random simple ``edge_size``-uniform hypergraph (deduplicated).

    May return fewer than ``n_edges`` edges if duplicates collide; always
    simple because distinct equal-size sets are incomparable.
    """
    if edge_size > n_vertices:
        raise ValueError("edge size cannot exceed the number of vertices")
    rng = random.Random(seed)
    universe = list(range(n_vertices))
    edges = {
        frozenset(rng.sample(universe, edge_size)) for _ in range(n_edges)
    }
    return Hypergraph(edges, vertices=universe)


def random_simple(
    n_vertices: int,
    n_edges: int,
    min_size: int = 1,
    max_size: int | None = None,
    seed: int = 0,
) -> Hypergraph:
    """A random simple hypergraph with mixed edge sizes.

    Draws random subsets and keeps a growing antichain (new edges that
    are comparable with an existing edge are discarded), so the result is
    always simple but may have fewer than ``n_edges`` edges.
    """
    rng = random.Random(seed)
    if max_size is None:
        max_size = max(min_size, n_vertices // 2 or 1)
    universe = list(range(n_vertices))
    kept: list[frozenset] = []
    attempts = 0
    while len(kept) < n_edges and attempts < 50 * n_edges + 100:
        attempts += 1
        size = rng.randint(min_size, max_size)
        edge = frozenset(rng.sample(universe, size))
        if any(edge <= other or other <= edge for other in kept):
            continue
        kept.append(edge)
    return Hypergraph(kept, vertices=universe)


def random_dual_pair(
    n_vertices: int, n_edges: int, seed: int = 0
) -> tuple[Hypergraph, Hypergraph]:
    """A random simple hypergraph together with its exact dual ``tr(G)``."""
    g = random_simple(n_vertices, n_edges, seed=seed)
    return g, transversal_hypergraph(g)


def perturb_drop_edge(h: Hypergraph, index: int = 0) -> Hypergraph:
    """Remove one edge — if ``(G, H)`` was dual, ``(G, H')`` is not.

    Dropping an edge of ``tr(G)`` leaves a *missing* minimal transversal,
    the situation the paper's ``fail`` leaves witness.  Raises on empty
    hypergraphs.
    """
    if not h.edges:
        raise ValueError("cannot drop an edge from an empty hypergraph")
    edges = list(h.edges)
    del edges[index % len(edges)]
    return Hypergraph(edges, vertices=h.vertices)


def perturb_enlarge_edge(h: Hypergraph, index: int = 0) -> Hypergraph:
    """Add one foreign vertex to one edge (makes a transversal non-minimal).

    If every universe vertex already lies in the chosen edge, a fresh
    vertex is introduced.  Edges absorbed by the enlarged one are dropped
    so the result stays *simple* — the perturbation models a wrong-but-
    well-formed ``H`` (an antichain with a non-minimal transversal in it).
    """
    if not h.edges:
        raise ValueError("cannot enlarge an edge of an empty hypergraph")
    edges = list(h.edges)
    target = edges[index % len(edges)]
    spare = sorted(
        (v for v in h.vertices if v not in target),
        key=lambda x: (type(x).__name__, repr(x)),
    )
    if spare:
        new_vertex = spare[0]
        universe = h.vertices
    else:
        new_vertex = ("fresh", len(h.vertices))
        universe = h.vertices | {new_vertex}
    enlarged = target | {new_vertex}
    kept = [e for e in edges if not e <= enlarged]
    return Hypergraph(kept + [enlarged], vertices=universe)


def perturb_add_foreign_edge(h: Hypergraph, g: Hypergraph) -> Hypergraph:
    """Add a non-minimal-transversal edge to ``h`` (universe of ``g`` assumed shared).

    Adds the full vertex set if it is not already an edge (the full set
    is a transversal of any ``g`` without empty edges but is minimal only
    in degenerate cases); falls back to enlarging an edge otherwise.
    """
    full = frozenset(g.vertices)
    if full not in set(h.edges) and full:
        return Hypergraph(tuple(h.edges) + (full,), vertices=h.vertices | full)
    return perturb_enlarge_edge(h)


def hard_nondual_pair(k: int) -> tuple[Hypergraph, Hypergraph]:
    """A matching-dual pair with one dual edge removed — canonically non-dual.

    The missing edge is a *new minimal transversal*, so witness-finding
    experiments know exactly what certificate to expect.
    """
    g, h = matching_dual_pair(k)
    return g, perturb_drop_edge(h, index=len(h.edges) // 2)


def standard_dual_suite(max_matching: int = 5, max_threshold: int = 7):
    """A list of named dual pairs covering the structural variety used in tests.

    Returns triples ``(name, G, H)`` with ``H = tr(G)`` guaranteed.
    """
    suite: list[tuple[str, Hypergraph, Hypergraph]] = []
    for k in range(0, max_matching + 1):
        g, h = matching_dual_pair(k)
        suite.append((f"matching-{k}", g, h))
    for n in range(1, max_threshold + 1):
        for k in range(1, n + 1):
            g, h = threshold_dual_pair(n, k)
            suite.append((f"threshold-{n}-{k}", g, h))
    for n in (3, 4, 5, 6):
        g, h = graph_cover_pair(path_graph_edges(n))
        suite.append((f"path-{n}", g, h))
    for n in (3, 4, 5):
        g, h = graph_cover_pair(cycle_graph_edges(n))
        suite.append((f"cycle-{n}", g, h))
    for seed in (1, 2, 3):
        g, h = random_dual_pair(6, 4, seed=seed)
        suite.append((f"random-6-4-s{seed}", g, h))
    return suite


def simple_union_workload(k: int, n: int) -> tuple[Hypergraph, Hypergraph]:
    """Dual pair mixing a matching with a threshold block (disjoint universes)."""
    return disjoint_union_pair(matching_dual_pair(k), threshold_dual_pair(n, (n + 1) // 2))


def degenerate_pairs() -> list[tuple[str, Hypergraph, Hypergraph, bool]]:
    """Edge-case duality instances ``(name, G, H, is_dual)``.

    Covers the Boolean-constant conventions: dual of constant false is
    constant true, single-vertex cases, and empty-universe cases.
    """
    empty = Hypergraph.empty()
    true_hg = Hypergraph.trivial_true()
    single = Hypergraph.single_edge({0})
    return [
        ("false/true", empty, true_hg, True),
        ("true/false", true_hg, empty, True),
        ("false/false", empty, empty, False),
        ("true/true", true_hg, true_hg, False),
        ("single/single", single, single, True),
        ("single/true", single, true_hg, False),
        (
            "two-singletons",
            Hypergraph([{0}, {1}]),
            Hypergraph([{0, 1}]),
            True,
        ),
        (
            "one-edge-two-vertices",
            Hypergraph([{0, 1}]),
            Hypergraph([{0}, {1}]),
            True,
        ),
    ]


def acyclic_chain(k: int, prefix: str = "") -> Hypergraph:
    """An α-acyclic chain of ``k`` overlapping triples.

    Edge ``i`` is ``{a_i, b_i, a_{i+1}}`` — consecutive edges share one
    vertex, so the GYO reduction eats the chain ear by ear.  The §6
    tractability experiments use this as the canonical acyclic family;
    ``prefix`` namespaces the vertices when several chains must coexist.
    """
    if k < 1:
        raise ValueError("k must be positive")
    return Hypergraph(
        [
            {f"{prefix}a{i}", f"{prefix}b{i}", f"{prefix}a{i + 1}"}
            for i in range(k)
        ]
    )


def acyclic_dual_pair(k: int) -> tuple[Hypergraph, Hypergraph]:
    """The chain together with its exact transversal hypergraph."""
    from repro.hypergraph.transversal import transversal_hypergraph

    g = acyclic_chain(k)
    return g, transversal_hypergraph(g)
