"""Hypergraph operations used throughout the paper.

The two restriction operators are exactly the ones the Boros–Makino
decomposition applies at every tree node (paper, Section 2, item (iii)):

* projection      ``G^S   = {E ∩ S | E ∈ G}``       (:func:`project`)
* sub-hypergraph  ``H_S   = {E ∈ H | E ⊆ S}``       (:func:`restrict_to_subsets`)

and the complement family from the itemset bridge (Section 1):

* ``A^c = {S − A | A ∈ A}``                          (:func:`complement_family`)
"""

from __future__ import annotations

from collections.abc import Iterable

from repro._util import minimize_family
from repro.core import BitsetFamily, mask_sort_key
from repro.errors import VertexError
from repro.hypergraph.hypergraph import Hypergraph

#: When True (the default), the restriction operators run on the bitset
#: view of the input.  :func:`use_bitset_kernels` flips it — the perf
#: harness uses the switch to measure the frozenset path "before" the
#: refactor without checking out old code.
_USE_BITSET = True


def use_bitset_kernels(enabled: bool) -> bool:
    """Enable/disable the mask fast path of :func:`project`,
    :func:`restrict_to_subsets` and :func:`contract`; returns the
    previous setting.

    Both paths produce identical hypergraphs — this exists for the
    equivalence tests and the before/after benchmark harness only.
    """
    global _USE_BITSET
    previous = _USE_BITSET
    _USE_BITSET = enabled
    return previous


def project(hg: Hypergraph, onto: Iterable) -> Hypergraph:
    """The projection ``G^S = {E ∩ S : E ∈ G}`` over universe ``S``.

    The result may be non-simple and may contain the empty edge even if
    ``hg`` is simple — the Boros–Makino procedures rely on both facts
    (``marksmall`` explicitly tests ``∅ ∈ G^{S_α}``), so *no*
    minimisation is applied here.

    This is the per-node workhorse of the decomposition engines (every
    tree node projects the original ``G`` onto its scope), so the fast
    path intersects masks and sorts by the mask key instead of paying a
    ``frozenset`` intersection plus ``sort_key`` per edge.
    """
    scope = frozenset(onto)
    if not scope <= hg.vertices:
        raise VertexError("projection scope must be a subset of the universe")
    if not _USE_BITSET:
        return Hypergraph((edge & scope for edge in hg.edges), vertices=scope)
    family = hg.bits()
    index = family.index
    scope_mask = index.encode(scope)
    projected = sorted(
        {mask & scope_mask for mask in family.masks}, key=mask_sort_key
    )
    result = Hypergraph._from_canonical(
        tuple(index.decode(mask) for mask in projected), scope
    )
    # Share the parent's index: decomposition nodes restrict the same
    # original hypergraphs thousands of times, and rebuilding a
    # VertexIndex per node would dominate the node's actual work.
    result._bits = BitsetFamily(index, tuple(projected), canonical=True)
    return result


def restrict_to_subsets(hg: Hypergraph, within: Iterable) -> Hypergraph:
    """The sub-hypergraph ``H_S = {E ∈ H : E ⊆ S}`` over universe ``S``.

    The fast path filters with one submask test per edge; the surviving
    edges are reused as-is (already canonical, already deduplicated).
    """
    scope = frozenset(within)
    if not scope <= hg.vertices:
        raise VertexError("restriction scope must be a subset of the universe")
    if not _USE_BITSET:
        return Hypergraph(
            (edge for edge in hg.edges if edge <= scope), vertices=scope
        )
    family = hg.bits()
    scope_mask = family.index.encode(scope)
    kept_pairs = [
        (edge, mask)
        for edge, mask in zip(hg.edges, family.masks)
        if mask & scope_mask == mask
    ]
    result = Hypergraph._from_canonical(
        tuple(edge for edge, _mask in kept_pairs), scope
    )
    result._bits = BitsetFamily(
        family.index, tuple(mask for _edge, mask in kept_pairs), canonical=True
    )
    return result


def complement_family(hg: Hypergraph, universe: Iterable | None = None) -> Hypergraph:
    """The complement family ``A^c = {U − A : A ∈ A}`` over universe ``U``.

    The paper (Section 1) uses this to relate itemset borders:
    ``IS⁻ = tr(IS⁺ᶜ)``.  When ``universe`` is omitted the hypergraph's own
    universe is used.  Complementation is an involution over a fixed
    universe and maps antichains of maximal sets to antichains of minimal
    sets (and vice versa).
    """
    scope = frozenset(universe) if universe is not None else hg.vertices
    if not hg.vertices <= scope:
        raise VertexError("complement universe must contain all vertices")
    return Hypergraph((scope - edge for edge in hg.edges), vertices=scope)


def contract(hg: Hypergraph, removed: Iterable) -> Hypergraph:
    """Delete the vertices in ``removed`` from every edge, then minimise.

    This is the *contraction* ``{min(E − X) : E ∈ H}`` used by the
    Fredman–Khachiyan style decompositions (e.g. forming ``g₀`` with a
    term's variables forced true).  Unlike :func:`project`, the result is
    minimised, because contraction is used where a simple DNF is needed.
    """
    gone = frozenset(removed)
    kept_universe = hg.vertices - gone
    if not _USE_BITSET:
        return Hypergraph(
            minimize_family(edge - gone for edge in hg.edges),
            vertices=kept_universe,
        )
    from repro.core import minimalize_masks

    family = hg.bits()
    index = family.index
    keep_mask = index.full_mask & ~index.encode_within(gone)
    contracted = minimalize_masks(mask & keep_mask for mask in family.masks)
    result = Hypergraph._from_canonical(
        tuple(index.decode(mask) for mask in contracted), kept_universe
    )
    result._bits = BitsetFamily(index, contracted, canonical=True)
    return result


def delete_edges_meeting(hg: Hypergraph, blocker: Iterable) -> Hypergraph:
    """Keep only the edges disjoint from ``blocker`` (universe unchanged)."""
    block = frozenset(blocker)
    return Hypergraph(
        (edge for edge in hg.edges if not edge & block),
        vertices=hg.vertices,
    )


def union(first: Hypergraph, second: Hypergraph) -> Hypergraph:
    """Edge-union over the union of the universes (no minimisation)."""
    return Hypergraph(
        tuple(first.edges) + tuple(second.edges),
        vertices=first.vertices | second.vertices,
    )


def minimized_union(first: Hypergraph, second: Hypergraph) -> Hypergraph:
    """``min(F ∪ G)`` — the simple hypergraph of the combined family.

    This is the hypergraph counterpart of taking the irredundant DNF of
    ``f ∨ g``; the decompositions use it to form ``g₀ ∨ g₁``.
    """
    return union(first, second).minimized()


def restriction_instance(
    g: Hypergraph, h: Hypergraph, scope: frozenset
) -> tuple[Hypergraph, Hypergraph]:
    """The node instance ``inst(α) = (G^{S_α}, H_{S_α})`` of Section 2.

    ``g`` and ``h`` are the *original* input hypergraphs; the instance at
    a decomposition-tree node is fully determined by its scope ``S_α``,
    which is what makes the logspace re-derivation of Section 4 possible.
    """
    return project(g, scope), restrict_to_subsets(h, scope)


def disjoint_relabel(
    hypergraphs: Iterable[Hypergraph],
) -> list[Hypergraph]:
    """Relabel the given hypergraphs so their universes become disjoint.

    Vertex ``v`` of the ``i``-th hypergraph becomes the pair ``(i, v)``.
    Used by generators that combine building blocks (e.g. unions of dual
    pairs stay dual when the blocks live on disjoint universes).
    """
    out: list[Hypergraph] = []
    for index, hg in enumerate(hypergraphs):
        mapping = {v: (index, v) for v in hg.vertices}
        out.append(
            Hypergraph(
                (frozenset(mapping[v] for v in edge) for edge in hg.edges),
                vertices=frozenset(mapping.values()),
            )
        )
    return out


def relabel(hg: Hypergraph, mapping: dict) -> Hypergraph:
    """Apply an injective vertex relabelling given by ``mapping``."""
    missing = hg.vertices - mapping.keys()
    if missing:
        raise VertexError(f"mapping misses vertices: {sorted(map(repr, missing))}")
    values = list(mapping[v] for v in hg.vertices)
    if len(set(values)) != len(values):
        raise VertexError("relabelling must be injective on the universe")
    return Hypergraph(
        (frozenset(mapping[v] for v in edge) for edge in hg.edges),
        vertices=frozenset(values),
    )
