"""Minimal transversals: definitions, checks, and exact computation.

Core notions from the paper (Section 1):

* A *transversal* of ``H`` is a subset of ``V(H)`` meeting every edge.
* A *minimal transversal* contains no other transversal.
* ``tr(H)`` is the simple hypergraph of all minimal transversals.
* Given ``G ⊆ tr(H)``, a **new transversal of H w.r.t. G** is a
  transversal of ``H`` containing **no** edge of ``G`` — the witness
  object produced by every non-duality certificate in the paper.

Degenerate conventions (consistent with reading hypergraphs as monotone
DNFs): ``tr(∅-edge-family) = {∅}`` and ``tr({∅}) = ∅-edge-family`` — the
dual of constant *false* is constant *true* and vice versa.

``tr()`` here is the Berge-multiplication reference implementation with
intermediate minimisation.  It is exponential in the worst case and is
the *ground truth* against which all sophisticated deciders are tested.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro._util import minimize_family, powerset, sort_key
from repro.core import (
    BitsetFamily,
    covers_none,
    is_minimal_transversal_mask,
    iter_bits,
    meets_all,
    transversal_masks,
)
from repro.hypergraph.hypergraph import Hypergraph


def is_transversal(candidate: Iterable, hg: Hypergraph) -> bool:
    """True iff ``candidate`` meets every edge of ``hg``.

    The empty set is a transversal of the empty hypergraph; nothing is a
    transversal of a hypergraph containing the empty edge.  Runs as one
    ``&``-test per edge on the bitset view; candidate vertices outside
    ``V(hg)`` cannot meet an edge and are ignored.
    """
    family = hg.bits()
    return meets_all(family.index.encode_within(candidate), family.masks)


def is_minimal_transversal(candidate: Iterable, hg: Hypergraph) -> bool:
    """True iff ``candidate`` is a transversal and no proper subset is.

    Minimality is checked via the classical *private vertex* criterion:
    a transversal ``T`` is minimal iff every ``v ∈ T`` has a *witness
    edge* ``E`` with ``T ∩ E = {v}``.  This is linear in the instance
    size, unlike testing all subsets.
    """
    cand = frozenset(candidate)
    family = hg.bits()
    index = family.index
    mask = index.encode_within(cand)
    if not meets_all(mask, family.masks):
        return False
    if any(v not in index for v in cand):
        # A vertex outside V(hg) occurs in no edge, so it can have no
        # witness edge — the transversal is not minimal.
        return False
    return is_minimal_transversal_mask(mask, family.masks)


def is_new_transversal(
    candidate: Iterable, hg: Hypergraph, known: Hypergraph
) -> bool:
    """True iff ``candidate`` is a transversal of ``hg`` containing no edge of ``known``.

    This is the witness predicate of the paper: a new transversal of
    ``G`` with respect to ``H`` proves ``H ≠ tr(G)`` (Section 1).
    """
    cand = frozenset(candidate)
    if not is_transversal(cand, hg):
        return False
    known_family = known.bits()
    return covers_none(
        known_family.index.encode_within(cand), known_family.masks
    )


def minimalize_transversal(candidate: Iterable, hg: Hypergraph) -> frozenset:
    """Shrink a transversal to a minimal one by greedy vertex elimination.

    This is the polynomial-time post-processing discussed after
    Corollary 4.1: starting from ``t``, successively remove vertices
    whose removal keeps the set a transversal.  The paper notes this
    pass needs *linear* space in ``|V|`` (to remember removals), which
    is why the quadratic-logspace bound covers the non-minimal witness
    only.  Vertices are scanned in canonical order so the result is
    deterministic (ascending bit position *is* canonical vertex order;
    vertices outside ``V(hg)`` never affect transversality, so the
    greedy scan always removes them).
    """
    family = hg.bits()
    index = family.index
    mask = index.encode_within(candidate)
    if not meets_all(mask, family.masks):
        raise ValueError("minimalize_transversal needs a transversal to start from")
    for bit in iter_bits(mask):
        trial = mask & ~bit
        if meets_all(trial, family.masks):
            mask = trial
    return index.decode(mask)


def transversal_hypergraph(
    hg: Hypergraph, order: str = "canonical", impl: str = "bitset"
) -> Hypergraph:
    """Compute ``tr(hg)`` exactly by Berge multiplication.

    Processes edges one at a time, maintaining the minimal transversals
    of the prefix family; each step "multiplies" the current family by
    the next edge and re-minimises.  Worst-case exponential, but exact —
    this function defines correctness for every other decider in the
    repository.

    ``order`` selects the multiplication order — an ablation knob for
    the intermediate-blow-up experiments (the *result* is always the
    same):

    * ``"canonical"`` — the library's canonical edge order (default);
    * ``"small-first"`` / ``"large-first"`` — by edge size;
    * ``"interleaved"`` — alternate smallest/largest remaining.

    ``impl`` selects the inner-loop representation: ``"bitset"`` runs
    the multiplication on integer masks (the fast path), ``"frozenset"``
    on frozensets (the reference the bitset path is tested against).
    Both produce the identical hypergraph.

    The result's universe equals ``hg``'s universe.
    """
    if impl == "frozenset":
        return transversal_hypergraph_reference(hg, order)
    if impl != "bitset":
        raise ValueError(f"unknown impl {impl!r}; choose bitset or frozenset")
    if hg.is_trivial_true():
        return Hypergraph.empty(hg.vertices)
    index = hg.bits().index
    masks = transversal_masks(
        index.encode(edge) for edge in _multiplication_order(hg, order)
    )
    family = BitsetFamily(index, masks, canonical=True)
    result = Hypergraph._from_canonical(family.decode(), hg.vertices)
    result._bits = family
    return result


def transversal_hypergraph_reference(
    hg: Hypergraph, order: str = "canonical"
) -> Hypergraph:
    """The original frozenset-domain Berge multiplication.

    Kept callable as the equivalence oracle for the bitset kernel (the
    randomized property tests assert both paths agree edge-for-edge) and
    as the "before" side of the performance harness.
    """
    if hg.is_trivial_true():
        return Hypergraph.empty(hg.vertices)
    current: frozenset[frozenset] = frozenset((frozenset(),))
    for edge in _multiplication_order(hg, order):
        expanded: set[frozenset] = set()
        for partial in current:
            if partial & edge:
                expanded.add(partial)
            else:
                for v in edge:
                    expanded.add(partial | {v})
        current = minimize_family(expanded)
    return Hypergraph(current, vertices=hg.vertices)


def _multiplication_order(hg: Hypergraph, order: str) -> list[frozenset]:
    """The Berge processing order for :func:`transversal_hypergraph`."""
    edges = list(hg.edges)
    if order == "canonical":
        return edges
    if order == "small-first":
        return sorted(edges, key=lambda e: (len(e),) + sort_key(e))
    if order == "large-first":
        return sorted(edges, key=lambda e: (-len(e),) + sort_key(e))
    if order == "interleaved":
        by_size = sorted(edges, key=lambda e: (len(e),) + sort_key(e))
        out: list[frozenset] = []
        lo, hi = 0, len(by_size) - 1
        while lo <= hi:
            out.append(by_size[lo])
            lo += 1
            if lo <= hi:
                out.append(by_size[hi])
                hi -= 1
        return out
    raise ValueError(
        f"unknown multiplication order {order!r}; choose canonical, "
        f"small-first, large-first or interleaved"
    )


def berge_peak_intermediate(hg: Hypergraph, order: str = "canonical") -> int:
    """The largest intermediate family during Berge multiplication.

    The quantity the ordering ablation (experiment E14) measures: how
    the multiplication order inflates or contains the intermediate
    transversal families, independent of the (fixed) final result.
    """
    if hg.is_trivial_true():
        return 0
    from repro.core import berge_step

    index = hg.bits().index
    current: tuple[int, ...] = (0,)
    peak = 1
    for edge in _multiplication_order(hg, order):
        current = berge_step(current, index.encode(edge))
        peak = max(peak, len(current))
    return peak


def minimal_transversals(hg: Hypergraph) -> Iterator[frozenset]:
    """Iterate the minimal transversals in canonical order.

    Materialises ``tr(hg)`` (Berge) and yields its edges; exists so that
    callers expressing "enumerate tr(H)" read naturally.
    """
    yield from transversal_hypergraph(hg).edges


def transversals_brute_force(hg: Hypergraph) -> Hypergraph:
    """``tr(hg)`` by scanning the entire powerset of the universe.

    Doubly exponential guardrail used only in tests to validate the
    Berge implementation on tiny instances (``|V| ≤ ~12``).
    """
    minimal = [
        subset
        for subset in powerset(hg.vertices)
        if is_minimal_transversal(subset, hg)
    ]
    return Hypergraph(minimal, vertices=hg.vertices)


def find_new_transversal_brute_force(
    hg: Hypergraph, known: Hypergraph
) -> frozenset | None:
    """Smallest new transversal of ``hg`` w.r.t. ``known`` or ``None``.

    Reference witness-finder (powerset scan, tests only).
    """
    for subset in powerset(hg.vertices):
        if is_new_transversal(subset, hg, known):
            return subset
    return None


def independent_sets_complement(hg: Hypergraph) -> Hypergraph:
    """The complements of maximal independent sets, i.e. ``tr(H)`` restated.

    A set ``T`` is a minimal transversal of ``H`` iff ``V − T`` is a
    *maximal independent set* (contains no edge, maximal with that
    property).  Exposed because the itemset bridge (Section 1) is this
    statement with "independent" read as "frequent".
    """
    return transversal_hypergraph(hg)


def maximal_independent_sets(hg: Hypergraph) -> Hypergraph:
    """All maximal edge-free subsets of the universe.

    Computed as complements of minimal transversals; the pair
    (:func:`maximal_independent_sets`, ``tr``) is the abstract version of
    (maximal frequent itemsets, minimal infrequent itemsets).
    """
    scope = hg.vertices
    return Hypergraph(
        (scope - t for t in transversal_hypergraph(hg).edges),
        vertices=scope,
    )


def self_transversal(hg: Hypergraph) -> bool:
    """True iff ``tr(H) = H`` — the non-dominated coterie criterion (Prop. 1.3)."""
    simple = hg.minimized()
    return transversal_hypergraph(simple) == simple


def cross_intersecting(g: Hypergraph, h: Hypergraph) -> bool:
    """True iff every edge of ``g`` meets every edge of ``h``.

    Necessary for duality: each minimal transversal must meet each edge.
    """
    return all(ge & he for ge in g.edges for he in h.edges)


def ordered_edges_by_canonical(edges: Iterable[frozenset]) -> list[frozenset]:
    """Sort edges by the library-wide canonical key (size, then lex)."""
    return sorted(edges, key=sort_key)
