"""Space-efficient DFS enumeration of minimal transversals (ref [44]).

The paper's research question — "whether Dual can be solved using
sub-polynomial or even polylogarithmic space ... was posed several
times since 1995, for example in [7, 44, 11]" — cites Tamaki's
space-efficient enumeration of ``tr(H)``.  This module builds that
style of enumerator:

Berge multiplication (the library's reference ``tr``) materialises the
whole intermediate family after every edge — worst-case exponential
*working* memory even when the output is consumed one set at a time.
The DFS enumerator below walks the same Berge recurrence as a tree
instead:

* a node at level ``i`` holds a *minimal* hitting set ``T`` of the
  first ``i`` edges;
* its children extend ``T`` to level ``i + 1``: either ``T`` itself
  (when it already hits edge ``e_{i+1}``) or ``T ∪ {v}`` for
  ``v ∈ e_{i+1}``, kept only if still minimal (every vertex retains a
  private edge).

**Each node has a unique parent** — if ``T`` fails to hit
``e_{i+1}``, the added vertex is forced to be the unique element of
``e_{i+1} ∩ T_child``; if it hits it, removing any vertex would break
minimality at the previous level — so the tree enumerates each minimal
transversal exactly once, with *no seen-set and no stored families*:
the live state is one partial transversal plus the recursion stack,
``O(|V| · depth)`` — the space-efficiency contrast experiment E20
measures against Berge's peak.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

from repro._util import vertex_key
from repro.core import BitsetFamily, iter_bits, popcount
from repro.hypergraph.hypergraph import Hypergraph


@dataclass
class DFSStats:
    """Working-set accounting for the space-efficiency experiments.

    ``peak_partial`` — largest partial transversal held; ``peak_depth``
    — deepest recursion (= edge count); ``nodes`` — tree nodes visited
    (the time side of the trade); ``yielded`` — transversals produced.
    """

    peak_partial: int = 0
    peak_depth: int = 0
    nodes: int = 0
    yielded: int = 0

    def peak_live_sets(self) -> int:
        """Live sets held at once: always 1 (the partial) — the point."""
        return 1


def _has_private_edge(vertex, partial: frozenset, edges, upto: int) -> bool:
    """Does ``vertex`` privately cover some edge among the first ``upto``?"""
    for edge in edges[:upto]:
        if partial & edge == {vertex}:
            return True
    return False


def minimal_transversal_masks_dfs(
    family: BitsetFamily, stats: DFSStats | None = None
) -> Iterator[int]:
    """The DFS enumeration entirely in the mask domain.

    Yields the minimal transversals of ``family`` as integer masks, in
    exactly the order the ``frozenset`` reference produces them: edges
    in canonical order, branch vertices in ascending bit position
    (= canonical vertex order, the :class:`~repro.core.VertexIndex`
    invariant).  The whole inner loop is ``&``-and-compare arithmetic —
    the private-edge minimality check is one equality per prefix edge.
    """
    s = stats or DFSStats()
    masks = family.masks
    if 0 in family:
        return  # an empty edge: no transversal exists
    if not masks:
        s.yielded += 1
        yield 0
        return
    n_edges = len(masks)

    def dfs(partial: int, idx: int) -> Iterator[int]:
        s.nodes += 1
        s.peak_partial = max(s.peak_partial, popcount(partial))
        s.peak_depth = max(s.peak_depth, idx)
        if idx == n_edges:
            s.yielded += 1
            yield partial
            return
        edge = masks[idx]
        if partial & edge:
            yield from dfs(partial, idx + 1)
            return
        prefix = masks[: idx + 1]
        for bit in iter_bits(edge):
            child = partial | bit
            # Minimality invariant: every vertex keeps a private edge
            # among the processed prefix (bit's private edge is `edge`).
            if all(
                any(child & e == u for e in prefix)
                for u in iter_bits(child)
            ):
                yield from dfs(child, idx + 1)

    yield from dfs(0, 0)


def minimal_transversals_dfs(
    hg: Hypergraph, stats: DFSStats | None = None, use_bitset: bool = True
) -> Iterator[frozenset]:
    """Yield every minimal transversal of ``hg`` exactly once (DFS order).

    Polynomial working memory: one partial set plus the recursion
    stack.  Pass a :class:`DFSStats` to record the working-set peaks.
    The degenerate conventions match ``transversal_hypergraph``:
    no edges → the single empty transversal; an empty edge → nothing.

    ``use_bitset=True`` (default) runs the mask-domain twin
    (:func:`minimal_transversal_masks_dfs`) and decodes each result;
    ``use_bitset=False`` keeps the original ``frozenset`` recursion —
    the reference the equivalence tests compare against.  Both paths
    yield identical sets in identical order with identical stats.
    """
    s = stats or DFSStats()
    if use_bitset:
        family = hg.bits()
        index = family.index
        for mask in minimal_transversal_masks_dfs(family, s):
            yield index.decode(mask)
        return
    if hg.is_trivial_true():
        return
    edges = list(hg.edges)
    if not edges:
        s.yielded += 1
        yield frozenset()
        return

    def dfs(partial: frozenset, idx: int) -> Iterator[frozenset]:
        s.nodes += 1
        s.peak_partial = max(s.peak_partial, len(partial))
        s.peak_depth = max(s.peak_depth, idx)
        if idx == len(edges):
            s.yielded += 1
            yield partial
            return
        edge = edges[idx]
        if partial & edge:
            yield from dfs(partial, idx + 1)
            return
        for v in sorted(edge, key=vertex_key):
            child = partial | {v}
            # Minimality invariant: every vertex keeps a private edge
            # among the processed prefix (v's private edge is `edge`).
            if all(
                _has_private_edge(u, child, edges, idx + 1)
                for u in child
            ):
                yield from dfs(child, idx + 1)

    yield from dfs(frozenset(), 0)


def transversal_hypergraph_dfs(hg: Hypergraph) -> Hypergraph:
    """``tr(hg)`` via the DFS enumerator (cross-check against Berge)."""
    return Hypergraph(minimal_transversals_dfs(hg), vertices=hg.vertices)


def dfs_enumeration_stats(hg: Hypergraph) -> DFSStats:
    """Run the full enumeration, returning only the accounting."""
    stats = DFSStats()
    for _ in minimal_transversals_dfs(hg, stats):
        pass
    return stats
