"""Propositional-logic substrate for the paper's knowledge-discovery applications.

Section 1 of the paper lists several AI / knowledge-representation
problems equivalent to (or built on) hypergraph dualization: learning
monotone CNFs/DNFs with membership queries [26], model-based diagnosis
[41, 24], Horn approximation of non-Horn theories [33, 19], and minimal
abductive explanations [10].  All of them manipulate propositional
theories; this package provides the shared substrate:

* :class:`HornClause` / :class:`HornTheory` — definite and negative Horn
  clauses, forward-chaining closure, model enumeration, characteristic
  models (:mod:`repro.logic.horn`);
* :class:`MonotoneCNF` — monotone CNFs, the CNF ↔ hypergraph bridge and
  the classic reduction of *monotone CNF–DNF equivalence* to ``Dual``
  (:mod:`repro.logic.cnf`).

Everything is exact and enumeration-based: theories are small enough in
the reproduction workloads that reference semantics beat cleverness.
"""

from repro.logic.horn import (
    HornClause,
    HornTheory,
    characteristic_models,
    intersection_closure,
    is_intersection_closed,
)
from repro.logic.cnf import (
    MonotoneCNF,
    decide_cnf_dnf_equivalence,
    parse_cnf,
)
from repro.logic.parser import (
    loads as parse_horn_theory,
)

__all__ = [
    "HornClause",
    "HornTheory",
    "MonotoneCNF",
    "characteristic_models",
    "decide_cnf_dnf_equivalence",
    "intersection_closure",
    "is_intersection_closed",
    "parse_cnf",
    "parse_horn_theory",
]
