"""Horn clauses, Horn theories, and their model theory.

The paper's Section 1 cites three knowledge-representation applications
of ``Dual`` that live on Horn logic: Horn approximation of a non-Horn
theory (refs [33, 19]), abductive explanations over Horn theories
(ref [10]), and — through the model-intersection property — the
characteristic-model representation used by all of them.

Conventions
-----------
A *Horn clause* has at most one positive literal.  We represent a clause
as ``(body, head)`` where ``body`` is a frozenset of atoms and ``head``
is an atom or ``None``:

* ``head = a``     — the definite clause  ``b₁ ∧ … ∧ b_k → a``;
* ``head = None``  — the negative clause ``b₁ ∧ … ∧ b_k → ⊥``
  (a pure constraint);
* an empty body with a head is the *fact* ``→ a``.

A *model* is the set of atoms assigned true (a subset of the universe).
The classic structural fact this module operationalises: a theory is
expressible in Horn form iff its model set is closed under intersection,
and every Horn theory is determined by its *characteristic models* (the
intersection-irreducible ones) — see :func:`characteristic_models`.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro._util import format_set, powerset, vertex_key
from repro.errors import VertexError


class HornClause:
    """An immutable Horn clause ``body → head`` (``head is None`` = ⊥).

    Atoms are arbitrary hashable, orderable labels (strings or ints),
    matching the vertex convention of :class:`repro.hypergraph.Hypergraph`.
    """

    __slots__ = ("_body", "_head")

    def __init__(self, body: Iterable, head=None) -> None:
        self._body: frozenset = frozenset(body)
        self._head = head

    @property
    def body(self) -> frozenset:
        """The (possibly empty) conjunction of positive body atoms."""
        return self._body

    @property
    def head(self):
        """The head atom, or ``None`` for a negative clause."""
        return self._head

    def is_definite(self) -> bool:
        """True iff the clause has a head (exactly one positive literal)."""
        return self._head is not None

    def is_fact(self) -> bool:
        """True iff the clause is an unconditional fact ``→ a``."""
        return self._head is not None and not self._body

    def atoms(self) -> frozenset:
        """All atoms mentioned by the clause."""
        if self._head is None:
            return self._body
        return self._body | {self._head}

    def satisfied_by(self, model: Iterable) -> bool:
        """Clause truth under the model (set of true atoms)."""
        true_atoms = frozenset(model)
        if not self._body <= true_atoms:
            return True
        return self._head is not None and self._head in true_atoms

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HornClause):
            return NotImplemented
        return self._body == other._body and self._head == other._head

    def __hash__(self) -> int:
        return hash((self._body, self._head))

    def __repr__(self) -> str:
        head = "⊥" if self._head is None else str(self._head)
        if not self._body:
            return f"HornClause(→ {head})"
        return f"HornClause({format_set(self._body)} → {head})"

    def sort_key(self) -> tuple:
        """Deterministic ordering key (definite before negative, then body)."""
        head_key = (
            (1,) if self._head is None else (0, vertex_key(self._head))
        )
        body_key = tuple(sorted((vertex_key(a) for a in self._body)))
        return (len(self._body), body_key, head_key)


class HornTheory:
    """An immutable finite Horn theory over an explicit atom universe.

    Parameters
    ----------
    clauses:
        Iterable of :class:`HornClause` (duplicates collapse).
    atoms:
        Optional explicit universe; must contain every atom used by a
        clause.  Defaults to the union of clause atoms.
    """

    __slots__ = ("_clauses", "_atoms")

    def __init__(
        self,
        clauses: Iterable[HornClause] = (),
        atoms: Iterable | None = None,
    ) -> None:
        unique = tuple(
            sorted(set(clauses), key=HornClause.sort_key)
        )
        used: set = set()
        for clause in unique:
            used |= clause.atoms()
        if atoms is None:
            universe = frozenset(used)
        else:
            universe = frozenset(atoms)
            if not used <= universe:
                missing = sorted(used - universe, key=vertex_key)
                raise VertexError(
                    f"clauses use atoms outside the declared universe: {missing}"
                )
        self._clauses: tuple[HornClause, ...] = unique
        self._atoms: frozenset = universe

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------

    @property
    def clauses(self) -> tuple[HornClause, ...]:
        """The clauses, deterministically ordered."""
        return self._clauses

    @property
    def atoms(self) -> frozenset:
        """The atom universe."""
        return self._atoms

    def __len__(self) -> int:
        return len(self._clauses)

    def __iter__(self) -> Iterator[HornClause]:
        return iter(self._clauses)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HornTheory):
            return NotImplemented
        return self._clauses == other._clauses and self._atoms == other._atoms

    def __hash__(self) -> int:
        return hash((self._clauses, self._atoms))

    def __repr__(self) -> str:
        return (
            f"HornTheory({len(self._clauses)} clauses, "
            f"{len(self._atoms)} atoms)"
        )

    def definite_clauses(self) -> tuple[HornClause, ...]:
        """The clauses with a head."""
        return tuple(c for c in self._clauses if c.is_definite())

    def negative_clauses(self) -> tuple[HornClause, ...]:
        """The headless constraints (``body → ⊥``)."""
        return tuple(c for c in self._clauses if not c.is_definite())

    def is_definite(self) -> bool:
        """True iff every clause has a head (then a least model exists)."""
        return all(c.is_definite() for c in self._clauses)

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------

    def closure(self, facts: Iterable = ()) -> frozenset:
        """Forward-chaining closure of ``facts`` under the definite clauses.

        The least model of the definite part extended with ``facts`` as
        extra unconditional facts.  Negative clauses are ignored here —
        use :func:`closure_consistent` to also check them.  Runs in time
        ``O(|clauses| · |atoms|)`` via a fixpoint sweep.
        """
        true_atoms = set(facts)
        if not true_atoms <= self._atoms:
            extra = sorted(true_atoms - self._atoms, key=vertex_key)
            raise VertexError(f"facts outside the atom universe: {extra}")
        definite = self.definite_clauses()
        changed = True
        while changed:
            changed = False
            for clause in definite:
                if clause.head not in true_atoms and clause.body <= true_atoms:
                    true_atoms.add(clause.head)
                    changed = True
        return frozenset(true_atoms)

    def closure_consistent(self, facts: Iterable = ()) -> bool:
        """True iff the closure of ``facts`` violates no negative clause."""
        closed = self.closure(facts)
        return all(
            not clause.body <= closed for clause in self.negative_clauses()
        )

    def is_model(self, model: Iterable) -> bool:
        """Does the atom set (read as a truth assignment) satisfy the theory?"""
        true_atoms = frozenset(model)
        if not true_atoms <= self._atoms:
            extra = sorted(true_atoms - self._atoms, key=vertex_key)
            raise VertexError(f"model uses atoms outside the universe: {extra}")
        return all(c.satisfied_by(true_atoms) for c in self._clauses)

    def models(self) -> list[frozenset]:
        """All models, smallest-first (exponential — small universes only)."""
        return [m for m in powerset(self._atoms) if self.is_model(m)]

    def entails_atom(self, facts: Iterable, atom) -> bool:
        """Does ``theory ∪ facts ⊨ atom``?  Exact for definite theories.

        For theories with negative clauses, an inconsistent closure
        entails everything (ex falso).
        """
        if atom not in self._atoms:
            raise VertexError(f"{atom!r} is not in the atom universe")
        closed = self.closure(facts)
        if not all(
            not clause.body <= closed for clause in self.negative_clauses()
        ):
            return True
        return atom in closed

    def least_model(self) -> frozenset:
        """The least model of a definite theory (closure of no facts)."""
        if not self.is_definite():
            raise ValueError(
                "least model is only defined for definite Horn theories"
            )
        return self.closure(())

    def is_consistent(self) -> bool:
        """True iff the theory has at least one model."""
        if self.is_definite():
            return True
        return self.closure_consistent(())

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_tuples(
        cls,
        clause_tuples: Iterable[tuple],
        atoms: Iterable | None = None,
    ) -> "HornTheory":
        """Build from ``(body_iterable, head_or_None)`` pairs."""
        return cls(
            (HornClause(body, head) for body, head in clause_tuples),
            atoms=atoms,
        )

    def with_atoms(self, atoms: Iterable) -> "HornTheory":
        """The same clauses over an explicitly supplied (super-)universe."""
        return HornTheory(self._clauses, atoms=atoms)

    def extended(self, clauses: Iterable[HornClause]) -> "HornTheory":
        """A new theory with extra clauses (universe grows as needed)."""
        new_clauses = self._clauses + tuple(clauses)
        used: set = set(self._atoms)
        for clause in new_clauses:
            used |= clause.atoms()
        return HornTheory(new_clauses, atoms=used)


# ----------------------------------------------------------------------
# Model-set structure: intersection closure and characteristic models
# ----------------------------------------------------------------------


def intersection_closure(models: Iterable[Iterable]) -> set[frozenset]:
    """The closure of a family of models under pairwise intersection.

    This is exactly the model set of the *Horn envelope* of a theory
    whose models are ``models`` (plus the empty family convention: the
    closure of an empty family is empty).  Computed by a worklist
    fixpoint; output size can be exponential in the input size, which is
    the blow-up the envelope literature studies.
    """
    closed: set[frozenset] = {frozenset(m) for m in models}
    worklist = list(closed)
    while worklist:
        current = worklist.pop()
        for other in list(closed):
            meet = current & other
            if meet not in closed:
                closed.add(meet)
                worklist.append(meet)
    return closed


def is_intersection_closed(models: Iterable[Iterable]) -> bool:
    """True iff the family of models is closed under intersection.

    Equivalently (for model sets of propositional theories over the full
    universe): the theory is expressible in Horn form.
    """
    family = {frozenset(m) for m in models}
    return all(a & b in family for a in family for b in family)


def characteristic_models(models: Iterable[Iterable]) -> set[frozenset]:
    """The intersection-irreducible members of an intersection-closed family.

    A model is *characteristic* if it is not the intersection of other
    models in the family.  The characteristic models are the unique
    minimal generating set: ``intersection_closure(char(F)) = F`` for
    every intersection-closed ``F``.  They are the compact Horn-theory
    representation that refs [33, 19] trade against clause
    representations via hypergraph transversals.
    """
    family = {frozenset(m) for m in models}
    if not is_intersection_closed(family):
        raise ValueError(
            "characteristic models are defined for intersection-closed "
            "families; close the family first (intersection_closure)"
        )
    result: set[frozenset] = set()
    for candidate in family:
        strict_supersets = [m for m in family if candidate < m]
        if not strict_supersets:
            result.add(candidate)
            continue
        # Intersect all strict supersets; candidate is reducible iff that
        # intersection collapses back onto it.
        meet = strict_supersets[0]
        for m in strict_supersets[1:]:
            meet = meet & m
        if meet != candidate:
            result.add(candidate)
    return result


def horn_theory_models_equal(theory: HornTheory, models: Iterable[Iterable]) -> bool:
    """Exhaustive check that ``theory`` has exactly the given model set."""
    expected = {frozenset(m) for m in models}
    return set(theory.models()) == expected
