"""Monotone CNFs and the CNF–DNF equivalence form of ``Dual``.

A monotone CNF ``c = C₁ ∧ … ∧ C_m`` (each clause a disjunction of
positive variables) maps to the hypergraph with one hyperedge per
clause.  The classical bridge to the paper's problem:

    a monotone CNF ``c`` and a monotone DNF ``f`` are **logically
    equivalent** iff the term hypergraph of ``f`` equals the minimal
    transversals of the clause hypergraph of ``c``

(an assignment satisfies every clause iff its true-set is a transversal
of the clause hypergraph; the minimal such true-sets are the prime
implicants).  So *monotone CNF–DNF equivalence testing* literally **is**
``Dual``, and :func:`decide_cnf_dnf_equivalence` hands the pair to any
engine of :mod:`repro.duality.engine`.

This is the formulation under which the paper's learning application
(ref [26]) reads: a monotone function can be queried as a membership
oracle, and learning both its CNF and DNF is an incremental sequence of
``Dual`` checks — see :mod:`repro.learning`.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro._util import format_family, powerset, vertex_key
from repro.errors import NotIrredundantError, ParseError
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.transversal import transversal_hypergraph
from repro.dnf.formula import MonotoneDNF


class MonotoneCNF:
    """An immutable monotone CNF: a set of clauses of positive variables.

    The constant *true* is the CNF with no clauses; the constant *false*
    is the CNF containing the empty clause.  (Note this is the mirror of
    the DNF convention — the empty clause is an unsatisfiable
    disjunction.)

    Parameters
    ----------
    clauses:
        Iterable of variable-iterables.
    variables:
        Optional explicit variable universe.
    """

    __slots__ = ("_hypergraph",)

    def __init__(
        self,
        clauses: Iterable[Iterable] = (),
        variables: Iterable | None = None,
    ) -> None:
        self._hypergraph = Hypergraph(clauses, vertices=variables)

    @property
    def clauses(self) -> tuple[frozenset, ...]:
        """The clauses in canonical order."""
        return self._hypergraph.edges

    @property
    def variables(self) -> frozenset:
        """The variable universe."""
        return self._hypergraph.vertices

    def hypergraph(self) -> Hypergraph:
        """The clause hypergraph (one hyperedge per clause)."""
        return self._hypergraph

    @classmethod
    def from_hypergraph(cls, hg: Hypergraph) -> "MonotoneCNF":
        """Read a hypergraph as a monotone CNF (edge = clause)."""
        return cls(hg.edges, variables=hg.vertices)

    def is_irredundant(self) -> bool:
        """True iff no clause's variable set covers another's (antichain)."""
        return self._hypergraph.is_simple()

    def require_irredundant(self) -> "MonotoneCNF":
        """Return ``self`` if irredundant, else raise."""
        if not self.is_irredundant():
            raise NotIrredundantError(
                f"CNF has a clause covered by another: {self!r}"
            )
        return self

    def irredundant(self) -> "MonotoneCNF":
        """Drop covered clauses (a clause implies any superset clause)."""
        return MonotoneCNF.from_hypergraph(self._hypergraph.minimized())

    def is_constant_true(self) -> bool:
        """True iff there are no clauses."""
        return self._hypergraph.is_trivial_false()

    def is_constant_false(self) -> bool:
        """True iff the empty clause is present."""
        return self._hypergraph.is_trivial_true()

    def __len__(self) -> int:
        return len(self._hypergraph)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MonotoneCNF):
            return NotImplemented
        return self._hypergraph == other._hypergraph

    def __hash__(self) -> int:
        return hash(("MonotoneCNF", self._hypergraph))

    def __repr__(self) -> str:
        return (
            f"MonotoneCNF({format_family(self.clauses)}, "
            f"V={len(self.variables)})"
        )

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------

    def evaluate(self, assignment: Mapping | Iterable) -> bool:
        """Evaluate under an assignment (mapping var→bool, or true-set)."""
        if isinstance(assignment, Mapping):
            true_vars = {v for v in self.variables if assignment.get(v, False)}
        else:
            true_vars = frozenset(assignment)
        return all(clause & true_vars for clause in self.clauses)

    def prime_implicants_dnf(self) -> MonotoneDNF:
        """The equivalent irredundant monotone DNF.

        The prime implicants of a monotone CNF are exactly the minimal
        transversals of its clause hypergraph — this conversion *is* a
        full dualization (exponential output in the worst case).
        """
        return MonotoneDNF.from_hypergraph(
            transversal_hypergraph(self._hypergraph.minimized())
        )

    def equivalent_brute_force(self, dnf: MonotoneDNF) -> bool:
        """Truth-table equivalence over the shared universe (tests only)."""
        universe = self.variables | dnf.variables
        return all(
            self.evaluate(point) == dnf.evaluate(point)
            for point in powerset(universe)
        )

    def to_text(self) -> str:
        """Round-trippable text form, e.g. ``(a|b)&(b|c)``."""
        if self.is_constant_true():
            return "1"
        if self.is_constant_false():
            return "0"
        parts = []
        for clause in self.clauses:
            names = "|".join(str(v) for v in sorted(clause, key=vertex_key))
            parts.append(f"({names})")
        return "&".join(parts)


def parse_cnf(text: str) -> MonotoneCNF:
    """Parse the ``(a|b)&(b|c)`` textual form produced by ``to_text``.

    ``"1"`` parses to constant true (no clauses) and ``"0"`` to constant
    false (the empty clause), mirroring :func:`repro.dnf.parse_dnf`.
    """
    stripped = "".join(text.split())
    if not stripped:
        raise ParseError("empty CNF text")
    if stripped == "1":
        return MonotoneCNF()
    if stripped == "0":
        return MonotoneCNF([()])
    clauses: list[frozenset] = []
    for chunk in stripped.split("&"):
        if not chunk:
            raise ParseError(f"empty conjunct in CNF text: {text!r}")
        if chunk.startswith("(") and chunk.endswith(")"):
            chunk = chunk[1:-1]
        if not chunk:
            raise ParseError(f"empty clause in CNF text: {text!r}")
        names = chunk.split("|")
        if any(not name for name in names):
            raise ParseError(f"empty variable name in clause: {chunk!r}")
        clauses.append(frozenset(names))
    return MonotoneCNF(clauses)


def decide_cnf_dnf_equivalence(
    cnf: MonotoneCNF, dnf: MonotoneDNF, method: str | None = None
):
    """Decide whether a monotone CNF and DNF compute the same function.

    This is the textbook disguise of ``Dual``: the pair is equivalent iff
    ``hypergraph(dnf) = tr(hypergraph(cnf))``.  Both inputs are first
    made irredundant (covered clauses/terms never change the function).
    Returns the engine's :class:`~repro.duality.result.DualityResult`;
    its witness, when not equivalent, is an assignment point on which the
    two sides disagree (in new-transversal form).
    """
    from repro.duality.engine import DEFAULT_METHOD, decide_duality

    chosen = DEFAULT_METHOD if method is None else method
    universe = cnf.variables | dnf.variables
    g = cnf.irredundant().hypergraph().with_vertices(universe)
    h = dnf.irredundant().hypergraph().with_vertices(universe)
    return decide_duality(g, h, method=chosen)
