"""Plain-text Horn theory format.

One clause per line::

    a b -> c      # definite clause  a ∧ b → c
    -> a          # fact             → a
    a b -> !      # negative clause  a ∧ b → ⊥
    # comment lines and blanks are ignored

Atoms are whitespace-separated names.  ``loads`` parses a string,
``load`` a file path; ``dumps``/``dump`` invert them, so files round-trip.
"""

from __future__ import annotations

from pathlib import Path

from repro._util import vertex_key
from repro.errors import ParseError
from repro.logic.horn import HornClause, HornTheory


def loads(text: str) -> HornTheory:
    """Parse a Horn theory from its text form."""
    clauses: list[HornClause] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if "->" not in line:
            raise ParseError(
                f"line {lineno}: expected 'body -> head', got {raw!r}"
            )
        body_text, head_text = line.split("->", 1)
        body = tuple(body_text.split())
        head_parts = head_text.split()
        if len(head_parts) != 1:
            raise ParseError(
                f"line {lineno}: exactly one head atom (or '!') required"
            )
        head = head_parts[0]
        clauses.append(HornClause(body, None if head == "!" else head))
    return HornTheory(clauses)


def load(path) -> HornTheory:
    """Parse a Horn theory file."""
    return loads(Path(path).read_text(encoding="utf-8"))


def dumps(theory: HornTheory) -> str:
    """The round-trippable text form of a theory."""
    lines = []
    for clause in theory.clauses:
        body = " ".join(
            str(a) for a in sorted(clause.body, key=vertex_key)
        )
        head = "!" if clause.head is None else str(clause.head)
        lines.append(f"{body} -> {head}".strip())
    return "\n".join(lines) + ("\n" if lines else "")


def dump(theory: HornTheory, path) -> None:
    """Write a theory to a file in the text form."""
    Path(path).write_text(dumps(theory), encoding="utf-8")
