"""Exception hierarchy for the ``repro`` library.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while still distinguishing the precise failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by this library."""


class NotSimpleError(ReproError):
    """A hypergraph that must be simple (an antichain) is not.

    Raised by operations that are only defined on simple hypergraphs,
    e.g. building a :class:`~repro.duality.boros_makino` decomposition
    tree or interpreting a family as an irredundant DNF.
    """


class NotIrredundantError(ReproError):
    """A monotone DNF that must be irredundant contains a covered term."""


class InvalidInstanceError(ReproError):
    """A problem instance violates a documented precondition.

    Examples: a duality instance whose hypergraphs fail the
    ``G ⊆ tr(H)`` / ``H ⊆ tr(G)`` entry conditions when the caller
    asserted they hold, a frequency threshold outside ``(0, |M|]``, or a
    claimed subset of minimal keys containing a non-key.
    """


class VertexError(ReproError):
    """A vertex (or item / attribute) is not part of the expected universe."""


class SpaceBudgetExceeded(ReproError):
    """A metered computation used more worktape bits than its budget.

    Raised by :class:`repro.machine.meter.SpaceMeter` when a hard budget
    was configured; used by tests to *prove* an algorithm stays inside a
    declared asymptotic envelope.
    """

    def __init__(self, used_bits: int, budget_bits: int) -> None:
        self.used_bits = used_bits
        self.budget_bits = budget_bits
        super().__init__(
            f"space budget exceeded: {used_bits} bits used, "
            f"budget is {budget_bits} bits"
        )


class ParseError(ReproError):
    """A textual representation (DNF, hypergraph file, transaction file) is malformed."""


class NotACoterieError(ReproError):
    """A quorum family violates the coterie axioms (intersection or minimality)."""


class InconsistentBorderError(InvalidInstanceError):
    """Claimed partial borders are inconsistent with the relation.

    Raised by MaxFreq–MinInfreq identification when a set claimed to be a
    maximal frequent itemset is not frequent/maximal, or a claimed minimal
    infrequent itemset is not infrequent/minimal.
    """
