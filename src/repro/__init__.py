"""monotone-dual: Gottlob's PODS 2013 quadratic-logspace monotone duality, in Python.

Public surface (stable):

* :mod:`repro.hypergraph` — hypergraphs, minimal transversals, generators.
* :mod:`repro.dnf` — monotone DNFs and the DNF↔hypergraph bridge.
* :mod:`repro.duality` — duality deciders: naive, Berge, Fredman–Khachiyan
  A/B, the Boros–Makino decomposition tree, the paper's quadratic-logspace
  algorithms (``pathnode``/``decompose``), and the guess-and-check model.
* :mod:`repro.machine` — bit-metered space-bounded computation substrate
  (Lemma 3.1 pipeline).
* :mod:`repro.itemsets` — frequent-itemset borders, MaxFreq–MinInfreq
  identification (Prop. 1.1), dualize-and-advance enumeration.
* :mod:`repro.keys` — minimal keys, the additional-key problem
  (Prop. 1.2), FDs and Armstrong relations.
* :mod:`repro.coteries` — coteries and non-domination (Prop. 1.3).
* :mod:`repro.logic` — Horn theories, monotone CNFs, CNF–DNF
  equivalence as ``Dual``.
* :mod:`repro.learning` — membership-query exact learning of monotone
  functions (Section 1, ref [26]).
* :mod:`repro.diagnosis` — model-based diagnosis: conflicts, Reiter's
  HS-tree, ``diagnoses = tr(conflicts)`` (refs [41, 24]).
* :mod:`repro.abduction` — minimal abductive explanations over Horn
  theories (ref [10]).
* :mod:`repro.envelopes` — Horn envelopes via hypergraph transversals
  (refs [33, 19]).
* :mod:`repro.complexity` — the Figure 1 class lattice and χ(n) bounds.
"""

from repro.hypergraph import Hypergraph, transversal_hypergraph
from repro.dnf import MonotoneDNF, parse_dnf

__version__ = "1.0.0"

__all__ = [
    "Hypergraph",
    "MonotoneDNF",
    "parse_dnf",
    "transversal_hypergraph",
    "__version__",
]
