"""Model-based diagnosis (Reiter [41], Greiner–Smith–Wilkerson [24]).

Section 1 of the paper cites model-based diagnosis as an application of
hypergraph dualization: the *minimal diagnoses* of a system are exactly
the minimal hitting sets — i.e. the minimal transversals — of its
*minimal conflict sets*.  Completeness checking ("are these all the
diagnoses?") is therefore an instance of ``Dual``.

The package builds the whole stack from scratch:

* :mod:`repro.diagnosis.circuits` — a combinational-circuit substrate
  (gates, evaluation, fault models) providing concrete diagnosable
  systems, including Reiter's classic full-adder example;
* :mod:`repro.diagnosis.system` — the abstract diagnosis problem: a
  component set plus a consistency oracle (conflict-ness is a monotone
  predicate, which links diagnosis to :mod:`repro.learning`);
* :mod:`repro.diagnosis.conflicts` — minimal conflict extraction and
  enumeration (greedy shrinking, brute force, and border learning);
* :mod:`repro.diagnosis.hstree` — Reiter's hitting-set tree with the
  pruning rules, plus the Greiner et al. counterexample showing why
  non-minimal conflict labels break the original pruning;
* :mod:`repro.diagnosis.diagnoses` — the user façade: minimal diagnoses
  by three independent routes, and the ``Dual``-based completeness
  check.
"""

from repro.diagnosis.circuits import (
    Circuit,
    Gate,
    full_adder,
    one_bit_comparator,
    two_bit_adder,
)
from repro.diagnosis.system import (
    CircuitDiagnosisProblem,
    DiagnosisProblem,
    OracleDiagnosisProblem,
)
from repro.diagnosis.conflicts import (
    extract_minimal_conflict,
    is_conflict,
    minimal_conflicts,
    minimal_conflicts_brute_force,
)
from repro.diagnosis.hstree import hs_tree_diagnoses, HSTreeStats
from repro.diagnosis.diagnoses import (
    conflict_hypergraph,
    minimal_diagnoses,
    verify_diagnosis_completeness,
)

__all__ = [
    "Circuit",
    "CircuitDiagnosisProblem",
    "DiagnosisProblem",
    "Gate",
    "HSTreeStats",
    "OracleDiagnosisProblem",
    "conflict_hypergraph",
    "extract_minimal_conflict",
    "full_adder",
    "hs_tree_diagnoses",
    "is_conflict",
    "minimal_conflicts",
    "minimal_conflicts_brute_force",
    "minimal_diagnoses",
    "one_bit_comparator",
    "two_bit_adder",
    "verify_diagnosis_completeness",
]
