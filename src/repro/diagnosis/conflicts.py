"""Minimal conflict sets: extraction and enumeration.

A *conflict* of a diagnosis problem is a component set that cannot all
be healthy.  Conflict-ness is monotone (supersets of conflicts are
conflicts), so:

* one minimal conflict is found by greedy shrinking
  (:func:`extract_minimal_conflict` — the classical "minimise the
  theorem prover's conflict" step of Reiter/Greiner);
* *all* minimal conflicts are the minimal true points of the monotone
  conflict predicate, so :func:`minimal_conflicts` simply runs the GKMT
  border learner of :mod:`repro.learning` against the consistency
  oracle — the dualization connection in executable form;
* :func:`minimal_conflicts_brute_force` is the exponential reference.
"""

from __future__ import annotations

from repro._util import minimize_family, powerset
from repro.hypergraph.hypergraph import Hypergraph
from repro.learning.oracle import MembershipOracle
from repro.learning.exact import learn_monotone_function, minimize_true_point
from repro.diagnosis.system import DiagnosisProblem


def is_conflict(problem: DiagnosisProblem, component_set) -> bool:
    """Is the set a conflict (cannot all be healthy)?"""
    return not problem.consistent(component_set)


def conflict_oracle(problem: DiagnosisProblem) -> MembershipOracle:
    """The monotone membership oracle ``f(S) = [S is a conflict]``."""
    return MembershipOracle(
        lambda s: not problem.consistent(s),
        problem.components,
        name=f"conflicts({problem.__class__.__name__})",
    )


def extract_minimal_conflict(
    problem: DiagnosisProblem, within=None
) -> frozenset | None:
    """One minimal conflict inside ``within`` (default: all components).

    Returns ``None`` when ``within`` is conflict-free — the signal that
    its complement is a diagnosis.  Greedy shrinking costs at most
    ``|within|`` consistency calls beyond the initial test.
    """
    scope = frozenset(
        problem.components if within is None else within
    )
    if problem.consistent(scope):
        return None
    oracle = conflict_oracle(problem)
    return minimize_true_point(oracle, scope)


def minimal_conflicts(
    problem: DiagnosisProblem, method: str = "bm"
) -> Hypergraph:
    """All minimal conflicts, via the monotone-border learner.

    Runs :func:`repro.learning.exact.learn_monotone_function` on the
    conflict predicate; the learned minimal true points are exactly the
    minimal conflict sets.  ``method`` picks the duality engine used by
    the learner's completeness checks.
    """
    learned = learn_monotone_function(conflict_oracle(problem), method=method)
    return learned.minimal_true_points


def minimal_conflicts_brute_force(problem: DiagnosisProblem) -> Hypergraph:
    """Exponential reference enumeration (tests and small systems only)."""
    conflicts = [
        s for s in powerset(problem.components) if is_conflict(problem, s)
    ]
    return Hypergraph(
        minimize_family(conflicts), vertices=problem.components
    )
