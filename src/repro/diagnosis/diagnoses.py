"""Minimal diagnoses and the ``Dual``-based completeness check.

Reiter's hitting-set theorem: the minimal diagnoses of a problem are
exactly the minimal hitting sets — the minimal transversals — of its
minimal conflict sets:

    ``diagnoses = tr(conflicts)``.

So three independent routes compute them here (HS-tree, exact
transversal of the learned conflict hypergraph, and brute force), and —
the paper's angle — *verifying that a claimed diagnosis set is
complete* is literally a ``Dual`` instance, solvable by any engine of
:mod:`repro.duality`, including the quadratic-logspace one.
"""

from __future__ import annotations

from repro._util import minimize_family, powerset
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.transversal import transversal_hypergraph
from repro.duality.engine import DEFAULT_METHOD, decide_duality
from repro.duality.result import DualityResult
from repro.diagnosis.conflicts import (
    minimal_conflicts,
    minimal_conflicts_brute_force,
)
from repro.diagnosis.hstree import hs_tree_diagnoses
from repro.diagnosis.system import DiagnosisProblem


def conflict_hypergraph(
    problem: DiagnosisProblem, method: str = "bm"
) -> Hypergraph:
    """The minimal-conflict hypergraph (learned through the oracle)."""
    return minimal_conflicts(problem, method=method)


def minimal_diagnoses(
    problem: DiagnosisProblem, method: str = "hstree"
) -> Hypergraph:
    """All minimal diagnoses, by the selected route.

    ============  ====================================================
    method        route
    ============  ====================================================
    hstree        Reiter's hitting-set tree (sound variant)
    transversal   ``tr`` of the learned minimal-conflict hypergraph
    brute-force   scan all component subsets (reference)
    ============  ====================================================
    """
    if method == "hstree":
        diagnoses, _stats = hs_tree_diagnoses(problem)
        return diagnoses
    if method == "transversal":
        conflicts = minimal_conflicts(problem)
        return transversal_hypergraph(conflicts).with_vertices(
            problem.components
        )
    if method == "brute-force":
        hitting = [
            s
            for s in powerset(problem.components)
            if problem.consistent(problem.components - s)
        ]
        return Hypergraph(
            minimize_family(hitting), vertices=problem.components
        )
    raise ValueError(
        f"unknown diagnosis method {method!r}; "
        "use 'hstree', 'transversal' or 'brute-force'"
    )


def verify_diagnosis_completeness(
    conflicts: Hypergraph,
    claimed_diagnoses: Hypergraph,
    method: str = DEFAULT_METHOD,
) -> DualityResult:
    """Is the claimed diagnosis set complete?  A literal ``Dual`` instance.

    Given the minimal conflicts ``C`` and a claimed set ``D`` of minimal
    diagnoses, completeness means ``D = tr(C)``.  Returns the engine's
    result; a NOT_DUAL witness points at a missing or wrong diagnosis.
    This is the paper's Section 1 story instantiated for diagnosis: the
    check runs in quadratic logspace with ``method="logspace"``.
    """
    universe = conflicts.vertices | claimed_diagnoses.vertices
    return decide_duality(
        conflicts.with_vertices(universe),
        claimed_diagnoses.with_vertices(universe),
        method=method,
    )
