"""Combinational circuits: the concrete systems the diagnosis stack debugs.

Reiter's theory of diagnosis [41] is usually introduced on gate-level
circuits (his running example is a full adder), so this module provides
a small, exact circuit substrate:

* a :class:`Gate` computes one Boolean function of named signals;
* a :class:`Circuit` is a topologically-ordered gate list with declared
  primary inputs and outputs;
* the *weak fault model* of classical diagnosis: a faulty gate's output
  is unconstrained (it may take any value), a healthy gate computes its
  function.  :meth:`Circuit.consistent` asks whether an observation can
  be explained with a given set of gates assumed healthy — the
  consistency oracle that defines conflicts.

Everything is exact: consistency enumerates the ``2^|suspects|``
assignments of faulty-gate outputs, which is the right tool at the
experiment scale (≤ a dozen gates) and keeps the semantics transparent.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from itertools import product

from repro.errors import InvalidInstanceError, VertexError


#: Gate kind → (arity check, evaluation function).
_GATE_KINDS = {
    "and": (None, lambda vals: all(vals)),
    "or": (None, lambda vals: any(vals)),
    "nand": (None, lambda vals: not all(vals)),
    "nor": (None, lambda vals: not any(vals)),
    "xor": (None, lambda vals: (sum(vals) % 2) == 1),
    "not": (1, lambda vals: not vals[0]),
    "buf": (1, lambda vals: vals[0]),
}


class Gate:
    """One logic gate: ``output_name = kind(input_names...)``.

    ``inputs`` name either primary circuit inputs or other gates'
    outputs.  The gate's own name is its output signal.
    """

    __slots__ = ("name", "kind", "inputs")

    def __init__(self, name: str, kind: str, inputs: Iterable[str]) -> None:
        if kind not in _GATE_KINDS:
            raise InvalidInstanceError(
                f"unknown gate kind {kind!r}; known: {sorted(_GATE_KINDS)}"
            )
        arity, _fn = _GATE_KINDS[kind]
        ins = tuple(inputs)
        if arity is not None and len(ins) != arity:
            raise InvalidInstanceError(
                f"gate kind {kind!r} takes exactly {arity} input(s), "
                f"got {len(ins)}"
            )
        if arity is None and len(ins) < 1:
            raise InvalidInstanceError(f"gate {name!r} needs at least one input")
        self.name = name
        self.kind = kind
        self.inputs = ins

    def compute(self, values: Mapping[str, bool]) -> bool:
        """Evaluate the gate's function on resolved input values."""
        _arity, fn = _GATE_KINDS[self.kind]
        return fn([values[i] for i in self.inputs])

    def __repr__(self) -> str:
        return f"Gate({self.name} = {self.kind}({', '.join(self.inputs)}))"


class Circuit:
    """An acyclic gate network with named primary inputs and outputs.

    Parameters
    ----------
    gates:
        Gate list; referenced signals must be primary inputs or gates
        appearing anywhere in the list (a topological order is computed).
    inputs:
        Primary input signal names.
    outputs:
        Observable output signal names (each a gate or input name).
    """

    def __init__(
        self,
        gates: Iterable[Gate],
        inputs: Iterable[str],
        outputs: Iterable[str],
    ) -> None:
        self.gates: tuple[Gate, ...] = tuple(gates)
        self.inputs: tuple[str, ...] = tuple(inputs)
        self.outputs: tuple[str, ...] = tuple(outputs)
        by_name = {g.name: g for g in self.gates}
        if len(by_name) != len(self.gates):
            raise InvalidInstanceError("duplicate gate names")
        clash = set(by_name) & set(self.inputs)
        if clash:
            raise InvalidInstanceError(
                f"signals are both gates and inputs: {sorted(clash)}"
            )
        known = set(by_name) | set(self.inputs)
        for gate in self.gates:
            for signal in gate.inputs:
                if signal not in known:
                    raise VertexError(
                        f"gate {gate.name!r} reads unknown signal {signal!r}"
                    )
        for out in self.outputs:
            if out not in known:
                raise VertexError(f"unknown output signal {out!r}")
        self._by_name = by_name
        self._order = self._topological_order()

    @property
    def components(self) -> frozenset:
        """The diagnosable components: the gate names."""
        return frozenset(g.name for g in self.gates)

    def _topological_order(self) -> tuple[str, ...]:
        resolved: set[str] = set(self.inputs)
        remaining = {g.name for g in self.gates}
        order: list[str] = []
        while remaining:
            progressed = False
            for name in sorted(remaining):
                gate = self._by_name[name]
                if all(s in resolved for s in gate.inputs):
                    order.append(name)
                    resolved.add(name)
                    remaining.discard(name)
                    progressed = True
            if not progressed:
                raise InvalidInstanceError(
                    f"circuit has a combinational cycle through {sorted(remaining)}"
                )
        return tuple(order)

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------

    def evaluate(
        self,
        input_values: Mapping[str, bool],
        fault_overrides: Mapping[str, bool] | None = None,
    ) -> dict[str, bool]:
        """All signal values; gates in ``fault_overrides`` output that value.

        The weak fault model: an overridden gate ignores its function and
        emits the override, modelling an arbitrary fault.
        """
        overrides = dict(fault_overrides or {})
        values: dict[str, bool] = {}
        for name in self.inputs:
            if name not in input_values:
                raise VertexError(f"missing primary input {name!r}")
            values[name] = bool(input_values[name])
        for name in self._order:
            if name in overrides:
                values[name] = bool(overrides[name])
            else:
                values[name] = self._by_name[name].compute(values)
        return values

    def output_values(
        self,
        input_values: Mapping[str, bool],
        fault_overrides: Mapping[str, bool] | None = None,
    ) -> tuple[bool, ...]:
        """The observable outputs under the given inputs and faults."""
        values = self.evaluate(input_values, fault_overrides)
        return tuple(values[o] for o in self.outputs)

    def consistent(
        self,
        input_values: Mapping[str, bool],
        observed_outputs: Mapping[str, bool],
        healthy: Iterable[str],
    ) -> bool:
        """Can the observation be explained with ``healthy`` gates correct?

        True iff there is an assignment of the *suspect* (non-healthy)
        gates' outputs under which every healthy gate computes its
        function and the circuit outputs equal ``observed_outputs``.
        Exhaustive over ``2^|suspects|`` fault assignments.
        """
        healthy_set = frozenset(healthy)
        unknown = healthy_set - self.components
        if unknown:
            raise VertexError(f"unknown components: {sorted(unknown)}")
        for out in observed_outputs:
            if out not in set(self.outputs):
                raise VertexError(f"{out!r} is not an observable output")
        suspects = sorted(self.components - healthy_set)
        expected = {o: bool(v) for o, v in observed_outputs.items()}
        for bits in product((False, True), repeat=len(suspects)):
            overrides = dict(zip(suspects, bits))
            values = self.evaluate(input_values, overrides)
            if all(values[o] == expected[o] for o in expected):
                return True
        return False

    def __repr__(self) -> str:
        return (
            f"Circuit({len(self.gates)} gates, "
            f"in={list(self.inputs)}, out={list(self.outputs)})"
        )


# ----------------------------------------------------------------------
# Standard example circuits
# ----------------------------------------------------------------------


def full_adder() -> Circuit:
    """Reiter's classic diagnosable system: a 1-bit full adder.

    Gates: two XORs (sum chain), two ANDs and one OR (carry chain).
    Inputs ``a, b, cin``; outputs ``sum`` (= x2) and ``cout`` (= o1).
    """
    gates = [
        Gate("x1", "xor", ("a", "b")),
        Gate("x2", "xor", ("x1", "cin")),
        Gate("a1", "and", ("a", "b")),
        Gate("a2", "and", ("x1", "cin")),
        Gate("o1", "or", ("a1", "a2")),
    ]
    return Circuit(gates, inputs=("a", "b", "cin"), outputs=("x2", "o1"))


def one_bit_comparator() -> Circuit:
    """A 1-bit magnitude comparator: ``lt = ¬a ∧ b``, ``eq = ¬(a ⊕ b)``."""
    gates = [
        Gate("na", "not", ("a",)),
        Gate("lt", "and", ("na", "b")),
        Gate("x", "xor", ("a", "b")),
        Gate("eq", "not", ("x",)),
    ]
    return Circuit(gates, inputs=("a", "b"), outputs=("lt", "eq"))


def two_bit_adder() -> Circuit:
    """Two chained full adders: a 2-bit ripple-carry adder (10 gates)."""
    gates = [
        Gate("x1", "xor", ("a0", "b0")),
        Gate("s0", "xor", ("x1", "cin")),
        Gate("a1g", "and", ("a0", "b0")),
        Gate("a2g", "and", ("x1", "cin")),
        Gate("c0", "or", ("a1g", "a2g")),
        Gate("x2", "xor", ("a1", "b1")),
        Gate("s1", "xor", ("x2", "c0")),
        Gate("a3g", "and", ("a1", "b1")),
        Gate("a4g", "and", ("x2", "c0")),
        Gate("c1", "or", ("a3g", "a4g")),
    ]
    return Circuit(
        gates,
        inputs=("a0", "b0", "a1", "b1", "cin"),
        outputs=("s0", "s1", "c1"),
    )
