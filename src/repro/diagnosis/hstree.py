"""Reiter's hitting-set tree, with the Greiner et al. correction story.

Reiter [41] computes the minimal diagnoses as the minimal hitting sets
of conflict sets returned by a theorem prover, explored as a tree: each
node carries the components removed so far (its *path set* ``h``); if
assuming everything outside ``h`` healthy is consistent, ``h`` is a
diagnosis (a ✓ leaf); otherwise the node is labeled with a conflict
disjoint from ``h`` and gets one child per conflict element.

This module implements:

* :func:`hs_tree_diagnoses` — the **sound** algorithm: breadth-first
  exploration with node merging (the "DAG" of Greiner et al. [24]),
  label reuse, and closing of nodes that contain an already-confirmed
  diagnosis.  It is correct for *any* conflict provider, minimal or
  not, because closing only ever discards proper supersets of found
  diagnoses.
* :func:`hs_tree_reiter_subset_rule` — Reiter's original extra pruning
  rule for non-minimal labels (relabel to the smaller conflict and cut
  the subtrees reached via the label difference).  Greiner, Smith and
  Wilkerson [24] showed this rule is **unsound**: with an adversarial
  (non-minimal) conflict provider it can cut a subtree containing the
  only path to a minimal diagnosis.  The failure-injection tests
  exhibit a concrete instance, reproducing the correction paper's
  point.

Both variants accept a ``conflict_provider`` so tests can inject the
adversarial label sequences of [24]; the default provider extracts a
*minimal* conflict greedily, under which the subset rule never fires
and both algorithms coincide.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable
from dataclasses import dataclass, field

from repro._util import minimize_family, sort_key, vertex_key
from repro.hypergraph.hypergraph import Hypergraph
from repro.diagnosis.conflicts import extract_minimal_conflict
from repro.diagnosis.system import DiagnosisProblem

#: A conflict provider maps (problem, path set) to a conflict disjoint
#: from the path set, or ``None`` when none exists (path is a diagnosis).
ConflictProvider = Callable[[DiagnosisProblem, frozenset], "frozenset | None"]


def minimal_conflict_provider(
    problem: DiagnosisProblem, path: frozenset
) -> frozenset | None:
    """The default provider: greedily minimised conflicts (always sound)."""
    return extract_minimal_conflict(problem, within=problem.components - path)


@dataclass
class HSTreeStats:
    """Exploration accounting for the experiments."""

    nodes_expanded: int = 0
    nodes_closed: int = 0
    labels_computed: int = 0
    labels_reused: int = 0
    subset_rule_firings: int = 0
    labels: list[frozenset] = field(default_factory=list)


def hs_tree_diagnoses(
    problem: DiagnosisProblem,
    conflict_provider: ConflictProvider | None = None,
    reuse_labels: bool = True,
    max_nodes: int | None = None,
) -> tuple[Hypergraph, HSTreeStats]:
    """All minimal diagnoses via the (sound) hitting-set tree.

    Breadth-first over path sets, with node merging (each path *set* is
    expanded once — Greiner's DAG view), optional label reuse, and
    closing of paths containing a confirmed diagnosis.  Returns the
    minimal-diagnosis hypergraph and the exploration stats.
    """
    provider = conflict_provider or minimal_conflict_provider
    stats = HSTreeStats()
    diagnoses: list[frozenset] = []
    seen: set[frozenset] = {frozenset()}
    queue: deque[frozenset] = deque([frozenset()])

    while queue:
        if max_nodes is not None and stats.nodes_expanded >= max_nodes:
            raise RuntimeError(f"HS-tree exceeded {max_nodes} nodes")
        path = queue.popleft()
        if any(d <= path for d in diagnoses):
            stats.nodes_closed += 1
            continue
        stats.nodes_expanded += 1

        label: frozenset | None = None
        if reuse_labels:
            for known in stats.labels:
                if not known & path:
                    label = known
                    stats.labels_reused += 1
                    break
        if label is None:
            label = provider(problem, path)
            if label is not None:
                label = frozenset(label)
                if label & path:
                    raise ValueError(
                        "conflict provider returned a label meeting the path"
                    )
                stats.labels_computed += 1
                stats.labels.append(label)

        if label is None:
            diagnoses.append(path)
            continue
        for c in sorted(label, key=vertex_key):
            child = path | {c}
            if child not in seen:
                seen.add(child)
                queue.append(child)

    return (
        Hypergraph(minimize_family(diagnoses), vertices=problem.components),
        stats,
    )


def hs_tree_reiter_subset_rule(
    problem: DiagnosisProblem,
    conflict_provider: ConflictProvider | None = None,
    max_nodes: int | None = None,
) -> tuple[Hypergraph, HSTreeStats]:
    """Reiter's original tree **with the unsound subset-pruning rule**.

    Reiter's original tree prunes in two interacting ways:

    * **duplicate closing**: a node whose path set already occurred is
      closed unexpanded (only the first copy is ever explored);
    * **the subset rule**: when a freshly computed label ``S'`` is a
      proper subset of an earlier label ``S``, the ``S``-node is
      relabeled to ``S'`` and the subtrees reached through the edges in
      ``S − S'`` are removed.

    Greiner et al. proved the combination unsound for non-minimal
    labels: the removed subtree may contain the *only open copy* of a
    path set (its duplicates were closed), discarding a minimal
    diagnosis.  This implementation exists to *exhibit* that bug (see
    the failure-injection tests), not for production use — call
    :func:`hs_tree_diagnoses` instead.

    The tree is materialised explicitly (parent/edge structure) because
    the subset rule operates on subtrees, not path sets.
    """
    provider = conflict_provider or minimal_conflict_provider
    stats = HSTreeStats()
    diagnoses: list[frozenset] = []

    # Node table: id → dict(path, label, children{element: id}, alive)
    nodes: list[dict] = [
        {"path": frozenset(), "label": None, "children": {}, "alive": True}
    ]
    queue: deque[int] = deque([0])
    expanded_paths: set[frozenset] = set()

    def kill_subtree(node_id: int) -> None:
        node = nodes[node_id]
        node["alive"] = False
        for child_id in node["children"].values():
            kill_subtree(child_id)

    while queue:
        if max_nodes is not None and stats.nodes_expanded >= max_nodes:
            raise RuntimeError(f"HS-tree exceeded {max_nodes} nodes")
        node_id = queue.popleft()
        node = nodes[node_id]
        if not node["alive"]:
            continue
        path = node["path"]
        if any(d <= path for d in diagnoses):
            stats.nodes_closed += 1
            continue
        if path in expanded_paths:
            # Reiter's duplicate-closing rule: only the first copy of a
            # path set is explored.  (This is what makes the subset rule
            # unsound: the explored copy can later be cut away.)
            stats.nodes_closed += 1
            continue
        expanded_paths.add(path)
        stats.nodes_expanded += 1

        label = provider(problem, path)
        if label is None:
            diagnoses.append(path)
            continue
        label = frozenset(label)
        stats.labels_computed += 1
        stats.labels.append(label)

        # Reiter's subset rule: a strictly smaller new label rewrites
        # earlier nodes and CUTS the subtrees under the difference edges.
        for other in nodes:
            if (
                other["alive"]
                and other["label"] is not None
                and label < other["label"]
            ):
                stats.subset_rule_firings += 1
                for element in sorted(
                    other["label"] - label, key=vertex_key
                ):
                    child_id = other["children"].pop(element, None)
                    if child_id is not None:
                        kill_subtree(child_id)
                other["label"] = label

        node["label"] = label
        for c in sorted(label, key=vertex_key):
            child = {
                "path": path | {c},
                "label": None,
                "children": {},
                "alive": True,
            }
            nodes.append(child)
            child_id = len(nodes) - 1
            node["children"][c] = child_id
            queue.append(child_id)

    return (
        Hypergraph(minimize_family(diagnoses), vertices=problem.components),
        stats,
    )


def greiner_counterexample() -> tuple:
    """A concrete instance exhibiting the [24] unsoundness.

    Components ``{0,1,2,3}`` with minimal conflicts ``{1,3}, {2},
    {0,3}`` (true minimal diagnoses: ``{2,3}`` and ``{0,1,2}``), and an
    adversarial conflict provider that serves the *non-minimal* labels
    ``{0,2,3}, {1,2}, {2,3}`` first.  Under that provider,
    :func:`hs_tree_reiter_subset_rule` drops the diagnosis ``{0,1,2}``
    (the subset rule cuts the only open copy of its path), while
    :func:`hs_tree_diagnoses` stays exact.

    Returns ``(problem_factory, provider_factory, expected_diagnoses)``
    — factories, because problems memoise oracle calls and each run
    should be fresh.
    """
    components = frozenset(range(4))
    minimal = [frozenset({1, 3}), frozenset({2}), frozenset({0, 3})]
    script = [frozenset({0, 2, 3}), frozenset({1, 2}), frozenset({2, 3})]
    expected = Hypergraph(
        [frozenset({2, 3}), frozenset({0, 1, 2})], vertices=components
    )

    def problem_factory():
        from repro.diagnosis.system import OracleDiagnosisProblem

        return OracleDiagnosisProblem.from_conflicts(components, minimal)

    def provider_factory():
        return make_scripted_provider(list(script))

    return problem_factory, provider_factory, expected


def make_scripted_provider(
    script: list[frozenset],
    fallback: ConflictProvider | None = None,
) -> ConflictProvider:
    """A provider that replays ``script`` labels (when disjoint from the
    path and still genuine conflicts), then falls back.

    This is how the tests stage the adversarial *non-minimal* label
    sequences of Greiner et al.: the script offers deliberately
    inflated conflicts first.
    """
    fb = fallback or minimal_conflict_provider

    def provider(
        problem: DiagnosisProblem, path: frozenset
    ) -> frozenset | None:
        if problem.consistent(problem.components - path):
            return None
        for candidate in sorted(script, key=sort_key):
            # A scripted label is usable when it lives among the still-
            # assumable components and is a genuine conflict.
            if candidate & path:
                continue
            if candidate <= problem.components - path and not problem.consistent(
                candidate
            ):
                return candidate
        return fb(problem, path)

    return provider
