"""The abstract diagnosis problem: components + a consistency oracle.

Reiter's definitions [41], instantiated on any system:

* a set ``COMP`` of components;
* a consistency oracle ``consistent(H)`` — can the observation be
  explained while assuming exactly the components in ``H ⊆ COMP``
  healthy (and the rest unconstrained)?
* a *conflict set* is a ``C ⊆ COMP`` that cannot all be healthy
  (``consistent(C)`` is false);
* a *diagnosis* is a ``Δ ⊆ COMP`` such that assuming everything outside
  ``Δ`` healthy is consistent; minimal diagnoses are the interesting
  ones.

Key structure this module surfaces: **conflict-ness is a monotone
predicate** (adding health assumptions can only make explanation
harder), so the minimal conflicts are the minimal true points of a
monotone function — precisely the setting of :mod:`repro.learning` —
and the minimal diagnoses are their minimal transversals (Reiter's
hitting-set theorem), linking diagnosis to the paper's ``Dual``.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping

from repro.errors import InvalidInstanceError, VertexError
from repro.diagnosis.circuits import Circuit


class DiagnosisProblem:
    """Base class: a component universe and a memoised consistency oracle.

    Subclasses implement :meth:`_consistent`.  All queries go through
    :meth:`consistent`, which validates, memoises and counts — the count
    is the "theorem-prover calls" measure of the diagnosis literature.
    """

    def __init__(self, components: Iterable) -> None:
        self._components = frozenset(components)
        if not self._components:
            raise InvalidInstanceError("a diagnosis problem needs components")
        self._cache: dict[frozenset, bool] = {}
        self._calls = 0

    @property
    def components(self) -> frozenset:
        """The component universe ``COMP``."""
        return self._components

    @property
    def oracle_calls(self) -> int:
        """Distinct consistency queries made so far."""
        return self._calls

    def consistent(self, healthy: Iterable) -> bool:
        """Can the observation be explained with ``healthy`` all correct?"""
        h = frozenset(healthy)
        if not h <= self._components:
            raise VertexError(
                f"unknown components: {sorted(map(str, h - self._components))}"
            )
        if h not in self._cache:
            self._cache[h] = bool(self._consistent(h))
            self._calls += 1
        return self._cache[h]

    def _consistent(self, healthy: frozenset) -> bool:
        raise NotImplementedError

    def is_faulty_observation(self) -> bool:
        """True iff something is wrong at all (all-healthy is inconsistent)."""
        return not self.consistent(self._components)

    def check_antimonotone_exhaustive(self) -> bool:
        """Verify ``H' ⊆ H ∧ consistent(H) ⇒ consistent(H')`` (tests only)."""
        from repro._util import powerset

        subsets = list(powerset(self._components))
        values = {s: self.consistent(s) for s in subsets}
        for h in subsets:
            if not values[h]:
                continue
            for sub in subsets:
                if sub <= h and not values[sub]:
                    return False
        return True


class OracleDiagnosisProblem(DiagnosisProblem):
    """A diagnosis problem given directly by a consistency function.

    Useful for synthetic problems and for injecting the classical
    counterexamples (e.g. the Greiner et al. pruning bug) as fixed
    conflict families.
    """

    def __init__(
        self,
        components: Iterable,
        consistent_fn: Callable[[frozenset], bool],
    ) -> None:
        super().__init__(components)
        self._fn = consistent_fn

    def _consistent(self, healthy: frozenset) -> bool:
        return self._fn(healthy)

    @classmethod
    def from_conflicts(
        cls, components: Iterable, conflicts: Iterable[Iterable]
    ) -> "OracleDiagnosisProblem":
        """The problem whose inconsistent health sets are exactly the
        supersets of the given conflicts."""
        families = [frozenset(c) for c in conflicts]

        def fn(healthy: frozenset) -> bool:
            return not any(c <= healthy for c in families)

        return cls(components, fn)


class CircuitDiagnosisProblem(DiagnosisProblem):
    """Diagnosing a :class:`~repro.diagnosis.circuits.Circuit` observation.

    Parameters
    ----------
    circuit:
        The system description.
    input_values:
        The applied primary inputs.
    observed_outputs:
        The (possibly wrong) measured outputs, by signal name.
    """

    def __init__(
        self,
        circuit: Circuit,
        input_values: Mapping[str, bool],
        observed_outputs: Mapping[str, bool],
    ) -> None:
        super().__init__(circuit.components)
        self.circuit = circuit
        self.input_values = dict(input_values)
        self.observed_outputs = dict(observed_outputs)

    def _consistent(self, healthy: frozenset) -> bool:
        return self.circuit.consistent(
            self.input_values, self.observed_outputs, healthy
        )

    @classmethod
    def observe_fault(
        cls,
        circuit: Circuit,
        input_values: Mapping[str, bool],
        actual_faults: Mapping[str, bool],
    ) -> "CircuitDiagnosisProblem":
        """Build the problem for the observation a real fault produces.

        ``actual_faults`` maps faulty gate names to their stuck output
        values; the observation is what the broken circuit emits.  The
        injected fault set must then appear among (supersets of) the
        minimal diagnoses — a property the failure-injection tests use.
        """
        values = circuit.evaluate(input_values, actual_faults)
        observed = {o: values[o] for o in circuit.outputs}
        return cls(circuit, input_values, observed)
