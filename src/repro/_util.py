"""Internal helpers shared across the library.

These are deliberately tiny, dependency-free functions.  Everything here
is private to the library (the module name is underscore-prefixed); the
public API re-exports nothing from it.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator
from itertools import chain, combinations
from typing import TypeVar

V = TypeVar("V", bound=Hashable)


def sort_key(edge: frozenset) -> tuple:
    """Canonical sort key for a hyperedge: by size, then lexicographically.

    Vertices may be ints or strings; mixed universes are compared by
    ``(type-name, repr)`` so ordering is total and deterministic.
    """
    return (len(edge), tuple(sorted((type(v).__name__, repr(v)) for v in edge)))


def vertex_key(v) -> tuple:
    """Total deterministic order on vertices of possibly mixed types."""
    return (type(v).__name__, repr(v))


def canonical_edges(edges: Iterable[frozenset]) -> tuple[frozenset, ...]:
    """Deduplicate and deterministically order a family of edges."""
    return tuple(sorted(set(edges), key=sort_key))


def powerset(universe: Iterable[V]) -> Iterator[frozenset]:
    """Yield all subsets of ``universe`` as frozensets, smallest first.

    Exponential — reserved for reference implementations and tests on
    small universes.
    """
    items = sorted(set(universe), key=vertex_key)
    subsets = chain.from_iterable(
        combinations(items, r) for r in range(len(items) + 1)
    )
    for subset in subsets:
        yield frozenset(subset)


def minimize_family(edges: Iterable[frozenset]) -> frozenset[frozenset]:
    """Return the minimal sets of a family (its antichain of minima).

    ``min(F) = {E in F : no E' in F with E' a proper subset of E}``.
    Duplicates are collapsed first, so the result is always simple.
    """
    unique = sorted(set(edges), key=len)
    kept: list[frozenset] = []
    for edge in unique:
        if not any(other <= edge for other in kept):
            kept.append(edge)
    return frozenset(kept)


def maximize_family(edges: Iterable[frozenset]) -> frozenset[frozenset]:
    """Return the maximal sets of a family (dual of :func:`minimize_family`)."""
    unique = sorted(set(edges), key=len, reverse=True)
    kept: list[frozenset] = []
    for edge in unique:
        if not any(edge <= other for other in kept):
            kept.append(edge)
    return frozenset(kept)


def is_antichain(edges: Iterable[frozenset]) -> bool:
    """True iff no edge of the family is contained in another edge."""
    edge_list = sorted(set(edges), key=len)
    for i, small in enumerate(edge_list):
        for big in edge_list[i + 1:]:
            if small <= big and small != big:
                return False
    # Equal-size distinct edges can never contain one another; duplicates
    # were collapsed by the set() above.
    return True


def bits_needed(value: int) -> int:
    """Number of bits needed to store a non-negative integer.

    By convention 0 needs 1 bit (a register holding 0 still exists).
    """
    if value < 0:
        raise ValueError("bits_needed is defined for non-negative integers")
    return max(1, value.bit_length())


def int_log2_floor(value: int) -> int:
    """``floor(log2(value))`` for a positive integer, exactly."""
    if value <= 0:
        raise ValueError("int_log2_floor needs a positive integer")
    return value.bit_length() - 1


def format_set(edge: frozenset) -> str:
    """Human-readable rendering of a hyperedge, deterministic order."""
    if not edge:
        return "{}"
    return "{" + ", ".join(str(v) for v in sorted(edge, key=vertex_key)) + "}"


def format_family(edges: Iterable[frozenset]) -> str:
    """Human-readable rendering of a family of hyperedges."""
    ordered = canonical_edges(edges)
    return "{" + ", ".join(format_set(e) for e in ordered) + "}"
