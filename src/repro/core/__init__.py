"""Bitset core: integer-bitmask kernels behind the hot paths.

The paper's algorithms treat hyperedges as characteristic vectors; this
package makes that literal.  A :class:`VertexIndex` fixes a stable
vertex↔bit bijection in canonical vertex order, a :class:`BitsetFamily`
holds an edge family as machine integers, and the kernel functions turn
every subset / intersection / minimalisation inner loop into ``&``-and-
compare arithmetic on ints.

Layering: :mod:`repro.core` depends only on :mod:`repro._util` and
:mod:`repro.errors`; the hypergraph layer builds lazy views on top of it
(:meth:`repro.hypergraph.Hypergraph.bits`), and the duality engines and
itemset counters consume those views.  The ``frozenset`` API everywhere
above remains the public, canonical representation — the masks are a
cache, never a source of truth.
"""

from repro.core.bitset import (
    BitsetFamily,
    antichain_minima,
    berge_step,
    covers_none,
    is_minimal_transversal_mask,
    is_new_transversal_mask,
    is_submask,
    iter_bits,
    iter_positions,
    mask_sort_key,
    masks_are_antichain,
    maximalize_masks,
    meets_all,
    minimalize_masks,
    popcount,
    sorted_masks,
    transversal_masks,
)
from repro.core.vertex_index import VertexIndex

__all__ = [
    "BitsetFamily",
    "VertexIndex",
    "antichain_minima",
    "berge_step",
    "covers_none",
    "is_minimal_transversal_mask",
    "is_new_transversal_mask",
    "is_submask",
    "iter_bits",
    "iter_positions",
    "mask_sort_key",
    "masks_are_antichain",
    "maximalize_masks",
    "meets_all",
    "minimalize_masks",
    "popcount",
    "sorted_masks",
    "transversal_masks",
]
