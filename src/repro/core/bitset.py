"""Integer bitmask kernels: the hot loops of the library in the mask domain.

A hyperedge over an indexed universe is one Python ``int``; a family of
edges is a tuple of ints.  Every kernel here is the mask-domain twin of a
``frozenset`` operation elsewhere in the library, with the *same*
deterministic ordering guarantees:

==============================  =====================================
set domain                      mask domain
==============================  =====================================
``u <= e``                      ``u & e == u``
``u & e`` (non-empty?)          ``u & e`` (non-zero?)
``len(e)``                      ``e.bit_count()``
``sort_key(e)``                 :func:`mask_sort_key`
``minimize_family``             :func:`minimalize_masks`
``is_antichain``                :func:`masks_are_antichain`
``transversal_hypergraph``      :func:`transversal_masks`
==============================  =====================================

The equivalence of the two orderings is exactly the :class:`VertexIndex`
invariant: bit positions ascend with ``vertex_key``, so comparing sorted
bit-position tuples is comparing sorted vertex-key tuples.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.core.vertex_index import VertexIndex


def popcount(mask: int) -> int:
    """Number of set bits (edge cardinality in the mask domain)."""
    return mask.bit_count()


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the single-bit masks of ``mask``, lowest position first."""
    while mask:
        low = mask & -mask
        yield low
        mask ^= low


def iter_positions(mask: int) -> Iterator[int]:
    """Yield the set bit positions of ``mask``, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def mask_sort_key(mask: int) -> tuple[int, tuple[int, ...]]:
    """The canonical edge order, in the mask domain.

    ``(popcount, ascending bit positions)`` — identical to
    :func:`repro._util.sort_key` on the decoded edge whenever all masks
    come from one :class:`VertexIndex`.
    """
    return (mask.bit_count(), tuple(iter_positions(mask)))


def sorted_masks(masks: Iterable[int]) -> tuple[int, ...]:
    """Deduplicate and canonically order a family of masks."""
    return tuple(sorted(set(masks), key=mask_sort_key))


def is_submask(small: int, big: int) -> bool:
    """``small ⊆ big`` as masks."""
    return small & big == small


def antichain_minima(masks: Iterable[int]) -> list[int]:
    """Inclusion-minimal members, in ascending-popcount order.

    A popcount sort suffices for the subset scan (a proper submask has a
    strictly smaller popcount, and equal-popcount distinct masks are
    incomparable); the cheaper key is what keeps the Berge inner loop
    fast, so only the public wrapper pays for full canonical ordering.
    """
    unique = sorted(set(masks), key=int.bit_count)
    kept: list[int] = []
    for mask in unique:
        if not any(other & mask == other for other in kept):
            kept.append(mask)
    return kept


def minimalize_masks(masks: Iterable[int]) -> tuple[int, ...]:
    """The inclusion-minimal members of a family, canonically ordered.

    Mask-domain twin of :func:`repro._util.minimize_family` (which
    returns an unordered ``frozenset``).
    """
    return tuple(sorted(antichain_minima(masks), key=mask_sort_key))


def maximalize_masks(masks: Iterable[int]) -> tuple[int, ...]:
    """The inclusion-maximal members of a family, canonically ordered."""
    unique = sorted(set(masks), key=mask_sort_key, reverse=True)
    kept: list[int] = []
    for mask in unique:
        if not any(mask & other == mask for other in kept):
            kept.append(mask)
    return tuple(sorted(kept, key=mask_sort_key))


def masks_are_antichain(masks: Iterable[int]) -> bool:
    """True iff no mask of the family is contained in another one."""
    unique = sorted(set(masks), key=popcount)
    for i, small in enumerate(unique):
        for big in unique[i + 1:]:
            if small & big == small and small != big:
                return False
    return True


def meets_all(candidate: int, masks: Iterable[int]) -> bool:
    """Transversality: does ``candidate`` intersect every mask?

    Matches the set-domain convention: an empty mask in the family makes
    the answer ``False``, an empty family makes it ``True``.
    """
    return all(candidate & mask for mask in masks)


def covers_none(candidate: int, masks: Iterable[int]) -> bool:
    """True iff no mask of the family is contained in ``candidate``."""
    return not any(mask & candidate == mask for mask in masks)


def is_new_transversal_mask(
    candidate: int, g_masks: Iterable[int], h_masks: Iterable[int]
) -> bool:
    """The paper's witness predicate in the mask domain.

    ``candidate`` meets every edge of ``G`` and covers no edge of ``H``.
    """
    return meets_all(candidate, g_masks) and covers_none(candidate, h_masks)


def is_minimal_transversal_mask(candidate: int, masks: Iterable[int]) -> bool:
    """Private-vertex minimality: every bit of ``candidate`` has a witness
    edge whose intersection with ``candidate`` is exactly that bit."""
    edge_list = tuple(masks)
    if not meets_all(candidate, edge_list):
        return False
    for bit in iter_bits(candidate):
        if not any(candidate & edge == bit for edge in edge_list):
            return False
    return True


def transversal_masks(edge_masks: Iterable[int]) -> tuple[int, ...]:
    """``tr`` by Berge multiplication, entirely in the mask domain.

    Multiplies edges in the given order with intermediate minimalisation;
    the result is the canonical (popcount-then-lex) ordering of the
    minimal transversal masks.  ``tr(∅) = (0,)`` and ``tr({∅}) = ()`` per
    the Boolean-constant conventions.  Intermediate families stay in
    ascending-popcount order; only the final family pays the canonical
    sort.
    """
    current: list[int] = [0]
    for edge in edge_masks:
        if edge == 0:
            return ()
        current = _berge_expand_minimize(current, edge)
    return tuple(sorted(current, key=mask_sort_key))


def _berge_expand_minimize(current: Iterable[int], edge: int) -> list[int]:
    """One Berge step on an antichain ``current`` (ascending popcount).

    Exploits the step's structure instead of re-minimising from scratch:

    * partials already meeting the edge (``keep``) stay minimal — none
      can contain an extended partial ``p|bit`` (that would need
      ``p ⊂ a``, impossible in an antichain);
    * an extended partial has ``cand & edge == bit`` (its parent missed
      the edge), so any member contained in it must itself contain that
      one bit — containment checks split into per-bit buckets.
    """
    bits = tuple(iter_bits(edge))
    keep: list[int] = []
    misses: list[int] = []
    for partial in current:
        (keep if partial & edge else misses).append(partial)
    if not misses:
        return keep
    candidates: set[int] = set()
    for partial in misses:
        for bit in bits:
            candidates.add(partial | bit)
    bucket: dict[int, list[int]] = {
        bit: [a for a in keep if a & bit] for bit in bits
    }
    accepted: list[int] = []
    for cand in sorted(candidates, key=int.bit_count):
        bit = cand & edge
        owners = bucket[bit]
        if any(member & cand == member for member in owners):
            continue
        owners.append(cand)
        accepted.append(cand)
    return sorted(keep + accepted, key=int.bit_count)


def berge_step(current: Iterable[int], edge: int) -> tuple[int, ...]:
    """One Berge multiplication step: ``min(current × edge)``.

    ``current`` must be an antichain in ascending-popcount order — i.e.
    the start family ``(0,)`` or the output of a previous step.  Exposed
    separately so incremental deciders can instrument the intermediate
    family sizes between steps; the returned family is in
    ascending-popcount order (canonical ordering is deferred to whoever
    materialises a hypergraph from the final family).
    """
    return tuple(_berge_expand_minimize(current, edge))


class BitsetFamily:
    """An edge family as canonical masks over a shared :class:`VertexIndex`.

    The masks are stored deduplicated in canonical (popcount-then-lex)
    order, so iteration is popcount-ordered and ``decode()`` reproduces
    the :class:`repro.hypergraph.Hypergraph` canonical edge order
    exactly.
    """

    __slots__ = ("index", "masks", "_mask_set")

    def __init__(
        self,
        index: VertexIndex,
        masks: Iterable[int],
        *,
        canonical: bool = False,
    ) -> None:
        self.index = index
        self.masks: tuple[int, ...] = (
            tuple(masks) if canonical else sorted_masks(masks)
        )
        self._mask_set: frozenset[int] | None = None

    @classmethod
    def from_sets(
        cls, edges: Iterable[Iterable], universe: Iterable | None = None
    ) -> "BitsetFamily":
        """Build from vertex collections (universe defaults to their union)."""
        edge_list = [frozenset(e) for e in edges]
        if universe is None:
            scope: set = set()
            for e in edge_list:
                scope |= e
            universe = scope
        index = VertexIndex(universe)
        return cls(index, (index.encode(e) for e in edge_list))

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.masks)

    def __iter__(self) -> Iterator[int]:
        return iter(self.masks)

    def __contains__(self, mask: int) -> bool:
        if self._mask_set is None:
            self._mask_set = frozenset(self.masks)
        return mask in self._mask_set

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitsetFamily):
            return NotImplemented
        return (
            self.masks == other.masks
            and self.index.vertices == other.index.vertices
        )

    def __hash__(self) -> int:
        return hash((self.masks, self.index.vertices))

    def __repr__(self) -> str:
        return (
            f"BitsetFamily({len(self.masks)} masks over "
            f"{len(self.index)} bits)"
        )

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------

    def decode(self) -> tuple[frozenset, ...]:
        """The family as frozensets, in canonical edge order."""
        return self.index.decode_many(self.masks)

    def minimized(self) -> "BitsetFamily":
        """The antichain of inclusion-minimal masks."""
        return BitsetFamily(
            self.index, minimalize_masks(self.masks), canonical=True
        )

    def is_antichain(self) -> bool:
        """True iff the family is simple (no containments)."""
        return masks_are_antichain(self.masks)

    def is_transversal(self, candidate) -> bool:
        """Does the candidate (mask or vertex collection) meet every edge?"""
        return meets_all(self._as_mask(candidate), self.masks)

    def is_minimal_transversal(self, candidate) -> bool:
        """Private-vertex minimal-transversality test."""
        return is_minimal_transversal_mask(self._as_mask(candidate), self.masks)

    def transversal_family(self) -> "BitsetFamily":
        """``tr`` of this family over the same index (Berge, mask domain)."""
        return BitsetFamily(
            self.index, transversal_masks(self.masks), canonical=True
        )

    def _as_mask(self, candidate) -> int:
        if isinstance(candidate, int):
            return candidate
        return self.index.encode_within(candidate)
