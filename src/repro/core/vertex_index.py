"""Stable vertex↔bit mapping: the dictionary between set and mask domains.

The whole bitset layer rests on one invariant: a :class:`VertexIndex`
enumerates its universe in the library's canonical vertex order
(:func:`repro._util.vertex_key`), so bit ``i`` is the ``i``-th vertex of
that order.  Two consequences keep the fast path bit-for-bit compatible
with the ``frozenset`` implementations:

* ascending bit index  ⇔  ascending ``vertex_key`` — every loop that the
  set-domain code runs "in canonical vertex order" can run over bits in
  ascending position instead;
* the canonical *edge* order ``(len(E), sorted vertex keys)`` coincides
  with the mask order ``(popcount(m), ascending bit positions)`` — see
  :func:`repro.core.bitset.mask_sort_key`.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro._util import vertex_key
from repro.errors import VertexError


class VertexIndex:
    """An immutable bijection between a vertex universe and bit positions.

    Vertices are assigned bits ``0 … n-1`` in canonical (``vertex_key``)
    order.  Encoding turns any vertex collection into an ``int`` mask;
    decoding turns a mask back into a ``frozenset`` of vertices.
    """

    __slots__ = ("_vertices", "_bit_of", "_full")

    def __init__(self, universe: Iterable) -> None:
        self._vertices: tuple = tuple(sorted(set(universe), key=vertex_key))
        self._bit_of: dict = {v: i for i, v in enumerate(self._vertices)}
        self._full: int = (1 << len(self._vertices)) - 1

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------

    @property
    def vertices(self) -> tuple:
        """The universe in canonical order (bit ``i`` ↦ ``vertices[i]``)."""
        return self._vertices

    @property
    def full_mask(self) -> int:
        """The mask of the entire universe."""
        return self._full

    def __len__(self) -> int:
        return len(self._vertices)

    def __iter__(self) -> Iterator:
        return iter(self._vertices)

    def __contains__(self, vertex) -> bool:
        return vertex in self._bit_of

    def __repr__(self) -> str:
        return f"VertexIndex({len(self._vertices)} vertices)"

    # ------------------------------------------------------------------
    # Encoding / decoding
    # ------------------------------------------------------------------

    def position(self, vertex) -> int:
        """The bit position of ``vertex`` (raises :class:`VertexError`)."""
        try:
            return self._bit_of[vertex]
        except KeyError:
            raise VertexError(f"{vertex!r} is not in this index") from None

    def bit(self, vertex) -> int:
        """The single-bit mask ``1 << position(vertex)``."""
        return 1 << self.position(vertex)

    def encode(self, vertices: Iterable) -> int:
        """The mask of a vertex collection (all members must be indexed)."""
        mask = 0
        bit_of = self._bit_of
        try:
            for v in vertices:
                mask |= 1 << bit_of[v]
        except KeyError as exc:
            raise VertexError(f"{exc.args[0]!r} is not in this index") from None
        return mask

    def encode_within(self, vertices: Iterable) -> int:
        """The mask of ``vertices ∩ universe`` — foreign vertices are dropped.

        Used by predicates such as transversality where a candidate set
        may carry vertices outside ``V(H)``; those can never meet an edge,
        so clipping preserves the set-domain semantics.
        """
        mask = 0
        bit_of = self._bit_of
        for v in vertices:
            pos = bit_of.get(v)
            if pos is not None:
                mask |= 1 << pos
        return mask

    def decode(self, mask: int) -> frozenset:
        """The vertex set of a mask."""
        vertices = self._vertices
        out = []
        while mask:
            low = mask & -mask
            out.append(vertices[low.bit_length() - 1])
            mask ^= low
        return frozenset(out)

    def decode_many(self, masks: Iterable[int]) -> tuple[frozenset, ...]:
        """Decode a sequence of masks, preserving order."""
        return tuple(self.decode(m) for m in masks)
