"""The Kavvadias–Papadimitriou–Sideri Horn-envelope construction.

Given the model set ``M`` of an arbitrary propositional theory over
atoms ``V`` (models = sets of true atoms), the *Horn envelope* is the
strongest Horn theory every model of which ``M`` satisfies; its model
set is exactly the intersection closure of ``M``.

The clause-level construction reduces to minimal transversals [33]:

* A definite clause ``B → a`` is *sound* for ``M`` iff no model makes
  the body true and the head false: for every ``m ∈ M`` with ``a ∉ m``,
  ``B ⊄ m``, i.e. ``B`` meets ``(V − {a}) − m``.  The minimal sound
  bodies are therefore ``tr({(V − {a}) − m : m ∈ M, a ∉ m})`` over the
  universe ``V − {a}``.
* A negative clause ``B → ⊥`` is sound iff ``B ⊄ m`` for every model,
  giving ``tr({V − m : m ∈ M})``.

Degenerate conventions fall out of the library's ``tr`` conventions:
when some complement edge is empty (a model already contains
``V − {a}``), the transversal hypergraph is empty — no sound body
exists; when the edge family is empty (``a`` true in all models), the
single minimal body is ``∅`` — the fact ``→ a``.

The envelope can blow up exponentially (that is the point of [33]);
everything here is exact and meant for the experiment scale.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro._util import vertex_key
from repro.errors import InvalidInstanceError, VertexError
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.transversal import transversal_hypergraph
from repro.logic.horn import (
    HornClause,
    HornTheory,
    intersection_closure,
    is_intersection_closed,
)


def _normalise_models(
    models: Iterable[Iterable], atoms: Iterable | None
) -> tuple[frozenset, list[frozenset]]:
    family = [frozenset(m) for m in models]
    used: set = set()
    for m in family:
        used |= m
    if atoms is None:
        universe = frozenset(used)
    else:
        universe = frozenset(atoms)
        if not used <= universe:
            extra = sorted(used - universe, key=vertex_key)
            raise VertexError(f"models use atoms outside the universe: {extra}")
    if not family:
        raise InvalidInstanceError(
            "the Horn envelope of an empty model set is the inconsistent "
            "theory; supply at least one model"
        )
    return universe, family


def envelope_clauses_for_head(
    models: Iterable[Iterable], head, atoms: Iterable | None = None
) -> list[HornClause]:
    """The prime definite clauses ``B → head`` sound for the models.

    Implements the [33] transversal construction for one head atom.
    Bodies are inclusion-minimal; the fact ``→ head`` appears as the
    empty body when the head holds in every model.
    """
    universe, family = _normalise_models(models, atoms)
    if head not in universe:
        raise VertexError(f"head {head!r} is not in the atom universe")
    others = universe - {head}
    refuting = [m for m in family if head not in m]
    complements = Hypergraph(
        (others - m for m in refuting), vertices=others
    )
    bodies = transversal_hypergraph(complements)
    return [HornClause(body, head) for body in bodies.edges]


def envelope_negative_clauses(
    models: Iterable[Iterable], atoms: Iterable | None = None
) -> list[HornClause]:
    """The prime negative clauses ``B → ⊥`` sound for the models.

    ``B`` must meet every model complement; over a universe where some
    atom is false in all models this yields unit constraints, and when
    every atom appears somewhere the constraints grow accordingly.
    """
    universe, family = _normalise_models(models, atoms)
    complements = Hypergraph(
        (universe - m for m in family), vertices=universe
    )
    bodies = transversal_hypergraph(complements)
    return [HornClause(body) for body in bodies.edges]


def horn_envelope(
    models: Iterable[Iterable], atoms: Iterable | None = None
) -> HornTheory:
    """The full Horn envelope (all prime definite + negative clauses).

    The returned theory's model set equals the intersection closure of
    the input models (:func:`models_of_envelope` verifies this
    exhaustively; the property-based tests rely on it).
    """
    universe, family = _normalise_models(models, atoms)
    clauses: list[HornClause] = []
    for head in sorted(universe, key=vertex_key):
        clauses.extend(envelope_clauses_for_head(family, head, atoms=universe))
    clauses.extend(envelope_negative_clauses(family, atoms=universe))
    return HornTheory(clauses, atoms=universe)


def models_of_envelope(
    models: Iterable[Iterable], atoms: Iterable | None = None
) -> set[frozenset]:
    """The envelope's model set, by exhaustive evaluation (small universes)."""
    universe, family = _normalise_models(models, atoms)
    theory = horn_envelope(family, atoms=universe)
    return set(theory.models())


def envelope_is_exact(
    models: Iterable[Iterable], atoms: Iterable | None = None
) -> bool:
    """Is the theory already Horn (envelope loses nothing)?

    True iff the model family is closed under intersection — then the
    envelope's models are exactly the input models.
    """
    _universe, family = _normalise_models(models, atoms)
    return is_intersection_closed(family)


def envelope_blowup(
    models: Iterable[Iterable], atoms: Iterable | None = None
) -> tuple[int, int]:
    """``(input models, envelope models)`` — the measured approximation cost.

    The second component is ``|intersection_closure(models)|``; the gap
    quantifies how non-Horn the input theory is.
    """
    _universe, family = _normalise_models(models, atoms)
    return len(set(family)), len(intersection_closure(family))
