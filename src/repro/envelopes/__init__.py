"""Horn envelopes via hypergraph transversals (paper refs [33, 19]).

Section 1 cites "computing a Horn approximation to a non-Horn theory"
among the ``Dual`` applications, after Kavvadias–Papadimitriou–Sideri's
*On Horn Envelopes and Hypergraph Transversals* [33]: the strongest
Horn theory implied by a set of models has its prime clauses given by
**minimal transversals** of complement hypergraphs built from the
models.  This package implements that construction from scratch:

* per-head clause bodies = ``tr({atoms − {head} − m : m ∈ models, head ∉ m})``;
* negative constraints  = ``tr({atoms − m : m ∈ models})``;
* the envelope's model set is the intersection closure of the input
  models (verified exhaustively by the tests).
"""

from repro.envelopes.horn_envelope import (
    envelope_clauses_for_head,
    envelope_is_exact,
    envelope_negative_clauses,
    horn_envelope,
    models_of_envelope,
)

__all__ = [
    "envelope_clauses_for_head",
    "envelope_is_exact",
    "envelope_negative_clauses",
    "horn_envelope",
    "models_of_envelope",
]
