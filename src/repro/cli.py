"""Command-line interface: ``monotone-dual`` / ``python -m repro``.

Subcommands::

    dual       decide duality of two hypergraph files (.hg)
    batch      solve many duality instance files through a worker pool
    serve      persistent engine service: stream instances, get JSON verdicts
               (--listen HOST:PORT serves them over TCP instead)
    client     send instances to a 'serve --listen' server, verdicts back
    store      inspect / compact / import a durable verdict store
    model      fit / inspect / cross-validate the learned engine selector
    trace      solve one instance with tracing on and print the span tree
    tr         print the minimal transversals of a hypergraph file
    tree       print the Boros–Makino decomposition tree
    pathnode   resolve one path descriptor (Lemma 4.2)
    borders    mine itemset borders from a transaction file
    keys       list the minimal keys of a CSV relation
    coterie    check a quorum file for the coterie axioms and domination
    classify   tractability classification of a hypergraph (paper §6)
    rules      association rules from the frequent itemsets
    selfdual   check tr(H) = H (the coterie-core self-duality test)
    learn      learn a monotone function with membership queries (ref [26])
    diagnose   model-based circuit diagnosis (refs [41, 24])
    abduce     minimal abductive explanations over a Horn theory (ref [10])
    envelope   Horn envelope of a model list (refs [33, 19])
    figure1    print the regenerated Figure 1
    chi        print χ(n) and the FK bound exponent

All subcommands read the plain-text formats of
:mod:`repro.hypergraph.io` and :mod:`repro.itemsets.io` and print
human-readable reports to stdout; exit status is 0 for "yes"-style
answers (dual / non-dominated / complete) and 1 otherwise, so the tool
scripts cleanly.
"""

from __future__ import annotations

import argparse
import csv
import sys
from pathlib import Path

from repro._util import format_set, vertex_key
from repro.hypergraph import io as hgio
from repro.hypergraph import transversal_hypergraph


def _print_family(title: str, edges) -> None:
    print(f"{title} ({len(tuple(edges))} sets):")
    for edge in edges:
        print(f"  {format_set(edge)}")


def _export_model(args: argparse.Namespace) -> None:
    """Make ``--model`` the process-wide default selector artifact.

    ``set_default_model`` loads it eagerly (a broken artifact fails the
    command, not the first solve), and the environment variable lets
    spawned worker processes resolve the same artifact lazily.
    """
    model = getattr(args, "model", None)
    if model is None:
        return
    import os

    from repro.select import MODEL_ENV, set_default_model

    set_default_model(model)
    os.environ[MODEL_ENV] = str(model)


def _cmd_dual(args: argparse.Namespace) -> int:
    from repro.duality import decide_duality, explain

    _export_model(args)
    g = hgio.load(args.g)
    h = hgio.load(args.h)
    jobs = args.jobs
    if args.method == "portfolio" and jobs == 1:
        # The point of the portfolio is the race: default to one worker
        # per engine rather than the run-everything sequential fallback.
        jobs = -1
    result = decide_duality(g, h, method=args.method, n_jobs=jobs)
    print(explain(g, h, result))
    if not result.is_dual and result.certificate.path is not None:
        print(f"certificate path descriptor: {list(result.certificate.path)}")
    auto = result.stats.extra.get("auto")
    if auto is not None:
        print(
            f"auto selection: {auto['engine']} "
            f"(mode={auto['mode']}, confidence={auto['confidence']})"
        )
    portfolio = result.stats.extra.get("portfolio")
    if portfolio is not None:
        timings = ", ".join(
            f"{engine}={t * 1000:.1f}ms" if t is not None else f"{engine}=-"
            for engine, t in portfolio["timings_s"].items()
        )
        print(f"portfolio winner: {portfolio['winner']} ({timings})")
    return 0 if result.is_dual else 1


def _store_path(args: argparse.Namespace) -> Path | None:
    """The durable-store path: ``--store``, or its legacy ``--cache`` alias.

    Since PR 8 both flags open a :class:`~repro.store.VerdictStore` —
    a pre-existing ``cache.json`` at the path is imported automatically
    on first open, so old invocations keep their verdicts.
    """
    store = getattr(args, "store", None)
    cache = getattr(args, "cache", None)
    if store is not None and cache is not None:
        raise SystemExit(
            "pass either --store or --cache (its legacy alias), not both"
        )
    return store if store is not None else cache


def _cmd_batch(args: argparse.Namespace) -> int:
    import time

    from repro.parallel import ResultCache, solve_many
    from repro.store import VerdictStore

    _export_model(args)
    store_path = _store_path(args)
    store = VerdictStore(store_path) if store_path else None
    cache = ResultCache(backend=store) if store is not None else None
    try:
        start = time.perf_counter()
        items = solve_many(
            args.instances,
            method=args.method,
            n_jobs=args.jobs,
            cache=cache,
            timings=args.timings,
        )
        wall = time.perf_counter() - start
        width = max(len(Path(src).name) for src in map(str, args.instances))
        for item in items:
            name = Path(item.source).name if item.source else "<inline>"
            verdict = "dual    " if item.is_dual else "NOT dual"
            suffix = (
                "  [cached]" if item.cached else f"  {item.elapsed_s * 1000:8.1f}ms"
            )
            print(f"  {name:<{width}}  {verdict}{suffix}")
        n_dual = sum(1 for item in items if item.is_dual)
        summary = (
            f"{len(items)} instances ({n_dual} dual, {len(items) - n_dual} not), "
            f"method={args.method}, jobs={args.jobs}, wall {wall:.3f}s"
        )
        if cache is not None:
            summary += f", cache hits/misses {cache.hits}/{cache.misses}"
            summary += f", store holds {len(store)} verdicts"
        print(summary)
    finally:
        if store is not None:
            store.close()
    return 0 if n_dual == len(items) else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    """The ``serve`` mode: the request scheduler over warm workers.

    Instance files given on the command line are scheduled as one
    overlapping batch (verdicts print in input order); with none (or
    ``-``), paths are read line by line from stdin and each is answered
    as soon as it arrives — the workers and the result cache stay warm
    in between, so a long-running client pays the spawn cost once.  One
    JSON verdict per line on stdout.  A missing or malformed instance
    file, or a solver-side error, yields an error line for *that*
    request and the session keeps serving — per-request tickets mean a
    bad instance can never take the rest of a batch down with it.

    With ``--listen HOST:PORT`` the service binds a TCP socket instead:
    any number of ``repro client`` sessions (or raw JSON-lines writers)
    share the one warm pool and the one crash-safe cache until SIGINT
    or a client ``shutdown`` request stops it gracefully.
    """
    import json

    from repro.service import EngineService, response_to_json

    if getattr(args, "auto", False):
        args.method = "auto"
    _export_model(args)
    if args.listen:
        return _serve_listen(args)
    if args.method in ("portfolio", "auto") and _store_path(args) is not None:
        raise SystemExit(
            f"serve --method {args.method} cannot verdict-cache race "
            "outcomes; drop --store/--cache (a --listen server with "
            "--store still records timing rows durably — it just skips "
            "verdict caching for this method)"
        )

    sources = [str(p) for p in args.instances if str(p) != "-"]
    use_stdin = not sources or any(str(p) == "-" for p in args.instances)

    backend = _peer_backend(args)
    exit_status = 0
    with EngineService(
        method=args.method,
        n_jobs=args.jobs,
        store=_store_path(args),
        cache_max_entries=args.cache_max,
        timings=args.timings,
        shard_backend=backend,
    ) as service:
        def emit_error(source: str, exc: Exception) -> None:
            nonlocal exit_status
            print(
                json.dumps({"source": source, "error": str(exc)}),
                flush=True,
            )
            exit_status = 1

        def await_ticket(source: str, ticket) -> None:
            nonlocal exit_status
            try:
                response = ticket.result()
            except Exception as exc:
                emit_error(source, exc)
                return
            print(json.dumps(response_to_json(response)), flush=True)
            if not response.is_dual:
                exit_status = 1

        def serve_one(source: str) -> None:
            # A failure at submit (unreadable file) or at solve time
            # (engine preconditions, not-simple inputs) is this
            # request's error line; the session keeps serving.
            try:
                ticket = service.submit(source, collect=False)
            except Exception as exc:
                emit_error(source, exc)
                return
            await_ticket(source, ticket)

        # Schedule the whole command line first — at n_jobs > 1 the
        # instances overlap on the pool — then emit in input order.
        tickets = []
        for source in sources:
            try:
                tickets.append((source, service.submit(source, collect=False)))
            except Exception as exc:
                emit_error(source, exc)
        for source, ticket in tickets:
            await_ticket(source, ticket)
        if use_stdin:
            # Ctrl-C and a closed stdout pipe are both normal ends of a
            # streaming session, not tracebacks; whatever was answered
            # (and cached) so far stands, and the context manager still
            # flushes the cache and releases the pool.
            try:
                for raw in sys.stdin:
                    line = raw.strip()
                    if not line or line.startswith("#"):
                        continue
                    serve_one(line)
            except KeyboardInterrupt:
                pass
            except BrokenPipeError:
                exit_status = 1
        if args.stats:
            try:
                stats = service.stats()
                if backend is not None:
                    stats["peers"] = backend.stats()
                print(json.dumps({"stats": stats}), flush=True)
            except BrokenPipeError:
                # stdout died mid-session; the stats line goes with it.
                exit_status = 1
    if backend is not None:
        backend.close()
    return exit_status


def _peer_backend(args: argparse.Namespace):
    """The ``--peers`` fleet backend for the stdin serve mode (``None``
    without the flag; ``--listen`` builds its own inside the server)."""
    if not getattr(args, "peers", None):
        return None
    from repro.parallel.backends import PeerBackend

    if args.hedge_ms is None:
        hedge_after = PeerBackend.DEFAULT_HEDGE_AFTER
    else:
        hedge_after = args.hedge_ms / 1000.0 if args.hedge_ms > 0 else None
    return PeerBackend(
        [addr.strip() for addr in args.peers.split(",") if addr.strip()],
        auth_token=args.peer_auth_token,
        hedge_after=hedge_after,
    )


def _serve_listen(args: argparse.Namespace) -> int:
    """The ``serve --listen`` mode: the TCP front end, SIGINT to stop."""
    import json

    from repro.net import DualityServer, parse_address

    if args.instances:
        raise SystemExit(
            "serve --listen takes no instance arguments; "
            "send instances with 'repro client' instead"
        )
    host, port = parse_address(args.listen)
    server = DualityServer(
        host=host,
        port=port,
        method=args.method,
        n_jobs=args.jobs,
        store=_store_path(args),
        cache_max_entries=args.cache_max,
        auth_token=args.auth_token,
        slow_ms=args.slow_ms,
        trace_requests=args.trace,
        timings=args.timings,
        peers=(
            [a.strip() for a in args.peers.split(",") if a.strip()]
            if args.peers
            else None
        ),
        peer_auth_token=args.peer_auth_token,
        hedge_ms=args.hedge_ms,
        **(
            {"max_inflight": args.max_inflight}
            if args.max_inflight is not None
            else {}
        ),
    )
    server.start()
    bound_host, bound_port = server.address
    try:
        print(
            json.dumps({"listening": {"host": bound_host, "port": bound_port}}),
            flush=True,
        )
        server.wait()  # until a client 'shutdown' request …
    except KeyboardInterrupt:
        pass  # … or Ctrl-C; either way shut down gracefully below
    finally:
        server.shutdown()
    if args.stats:
        print(json.dumps({"stats": server.stats()}), flush=True)
    return 0


def _cmd_client(args: argparse.Namespace) -> int:
    """The ``client`` mode: ship instances to a ``serve --listen`` server.

    Instance files are read on *this* machine and sent inline through
    the lossless codec, so the server needs no shared filesystem.
    Command-line files are pipelined as one batch (the server's
    scheduler overlaps them; verdicts print in input order); stdin
    paths are answered one per line as they arrive.  One JSON verdict
    (or error) line per instance on stdout.  Exit status 0 when every
    instance is dual, **nonzero** when any is non-dual or any line is
    an error — a server-side ``{"ok": false}`` response included, so
    scripts can trust the status (the ``repro dual`` convention).
    """
    import json

    from repro.hypergraph import instance_key, pair_digest
    from repro.net import DualityClient, ProtocolError, RequestError
    from repro.parallel.batch import load_instance, result_from_json
    from repro.store import VerdictStore

    store = VerdictStore(args.store) if args.store else None
    paths = [str(p) for p in args.instances if str(p) != "-"]
    use_stdin = not paths or any(str(p) == "-" for p in args.instances)
    if args.metrics and not args.instances:
        # A bare '--metrics' is a scrape, not a solve session: don't
        # sit on stdin waiting for instance paths that never come.
        use_stdin = False
    want_trace = bool(args.trace or args.trace_out)

    exit_status = 0
    try:
        client = DualityClient(
            args.address,
            timeout=args.timeout,
            auth_token=args.auth_token,
            trace=want_trace,
        )
    except (OSError, ValueError, RequestError) as exc:
        # No server (or a bad address, or a rejected token) is an error
        # line and status 1, not a traceback — scripts probe liveness
        # with this.
        if store is not None:
            store.close()
        print(json.dumps({"error": f"connect {args.address}: {exc}"}), flush=True)
        return 1
    with client:
        def emit_error(path: str, detail: str) -> None:
            nonlocal exit_status
            print(json.dumps({"source": path, "error": detail}), flush=True)
            exit_status = 1

        def store_hit(pair) -> dict | None:
            """A local verdict for this exact labelled instance, if the
            side store holds one — engine-bound, so only with an
            explicit --method (the server's default is not known here).
            """
            if store is None or args.method is None:
                return None
            key = instance_key(*pair, args.method)
            entry = store.get_entry(key)
            if entry is None:
                return None
            return {
                "ok": True,
                "key": key,
                "method": entry["method"],
                "verdict": entry["verdict"],
                "dual": entry["verdict"] == "dual",
                "cached": True,
                "origin": "store-local",
                "elapsed_ms": 0.0,
                "kind": entry["kind"],
                "witness": entry["witness"],
                "path": entry["path"],
                "detail": entry.get("detail", ""),
            }

        def store_write_back(response: dict, digest: str | None) -> None:
            """Persist a server verdict into the local side store."""
            if store is None or response.get("origin") == "store-local":
                return
            key = response.get("key")
            if not key:
                return
            entry = {
                "verdict": response.get("verdict"),
                "method": response.get("method"),
                "kind": response.get("kind"),
                "witness": response.get("witness"),
                "detail": response.get("detail", ""),
                "path": response.get("path"),
            }
            try:
                # Only store entries that replay: a witness outside the
                # codec (repr-degraded on the wire) must not poison the
                # store with an undecodable row.
                result_from_json(dict(entry))
            except Exception:  # noqa: BLE001 - best-effort side store
                return
            store.put_entry(key, entry, digest=digest)

        def emit_response(
            path: str, response: dict, digest: str | None = None
        ) -> None:
            nonlocal exit_status
            if not response.get("ok"):
                info = response.get("error") or {}
                emit_error(
                    path,
                    f"{info.get('type', 'Error')}: {info.get('message', '')}",
                )
                return
            store_write_back(response, digest)
            response["source"] = path
            print(json.dumps(response), flush=True)
            if not response.get("dual"):
                exit_status = 1

        def serve_one(path: str) -> None:
            pair = None
            digest = None
            if store is not None:
                try:
                    pair = load_instance(path)
                except (OSError, ValueError) as exc:
                    emit_error(path, str(exc))
                    return
                digest = pair_digest(*pair)
                hit = store_hit(pair)
                if hit is not None:
                    emit_response(path, hit)
                    return
            try:
                response = client.solve_path(path, method=args.method)
            except (RequestError, OSError, ValueError) as exc:
                emit_error(path, str(exc))
                return
            emit_response(path, response, digest)

        def serve_pipelined(batch: list[str]) -> None:
            # One pipelined batch: every loadable file goes out before
            # the first answer is awaited, so the server's scheduler
            # overlaps them; an unreadable file costs only its own
            # error line.  Verdicts print in input order, side-store
            # hits answered locally in place.
            loaded = []
            for path in batch:
                try:
                    loaded.append((path, load_instance(path)))
                except (OSError, ValueError) as exc:
                    emit_error(path, str(exc))
            if not loaded or client.closed:
                return
            results: dict[int, tuple[dict, str | None]] = {}
            to_send = []
            for idx, (path, pair) in enumerate(loaded):
                digest = pair_digest(*pair) if store is not None else None
                hit = store_hit(pair)
                if hit is not None:
                    results[idx] = (hit, None)
                else:
                    to_send.append((idx, pair, digest))
            if to_send:
                responses = client.solve_many(
                    [pair for _idx, pair, _digest in to_send],
                    method=args.method,
                )
                for (idx, _pair, digest), response in zip(to_send, responses):
                    results[idx] = (response, digest)
            for idx, (path, _pair) in enumerate(loaded):
                if idx in results:
                    response, digest = results[idx]
                    emit_response(path, response, digest)

        try:
            # A receive failure closes the client (the stream has no
            # trustworthy next frame); stop asking once that happens.
            serve_pipelined(paths)
            if use_stdin:
                for raw in sys.stdin:
                    line = raw.strip()
                    if not line or line.startswith("#"):
                        continue
                    if client.closed:
                        break
                    serve_one(line)
            if args.stats and not client.closed:
                print(json.dumps({"stats": client.stats()}), flush=True)
            if args.metrics and not client.closed:
                # Prometheus text exposition straight to stdout — pipe
                # it into a file or a pushgateway as-is.
                print(client.metrics(), end="", flush=True)
        except KeyboardInterrupt:
            pass
        except BrokenPipeError:
            exit_status = 1
        except (RequestError, ProtocolError, OSError) as exc:
            # A dead or desynced connection ends the session with an
            # error line, never a traceback.
            print(json.dumps({"error": str(exc)}), flush=True)
            exit_status = 1
        if want_trace and client.trace_sink is not None:
            from repro.obs import dump_chrome, format_tree

            spans = client.trace_sink.spans()
            if args.trace:
                # The tree goes to stderr so stdout stays one JSON
                # verdict per line for scripts.
                print(format_tree(spans), file=sys.stderr)
            if args.trace_out:
                dump_chrome(spans, args.trace_out)
                print(
                    f"wrote {len(spans)} spans to {args.trace_out} "
                    "(chrome://tracing / about:tracing)",
                    file=sys.stderr,
                )
        if args.shutdown and not client.closed:
            try:
                client.shutdown_server()
            except (RequestError, ProtocolError, OSError) as exc:
                # e.g. a second --shutdown racing a server already
                # closing; report it, don't crash over it.
                print(json.dumps({"error": f"shutdown: {exc}"}), flush=True)
                exit_status = 1
    if store is not None:
        store.close()
    return exit_status


def _cmd_store(args: argparse.Namespace) -> int:
    """The ``store`` mode: inspect and maintain a durable verdict store.

    ``stats`` prints the store's JSON health snapshot; ``compact``
    folds the journal into SQLite and truncates it; ``import`` loads a
    legacy ``cache.json`` into the store.  Opening the store already
    auto-imports a legacy JSON file sitting at the store path itself.
    """
    import json

    from repro.store import VerdictStore

    if args.action == "import" and args.legacy is None:
        raise SystemExit("store import needs the legacy cache.json path")
    store = VerdictStore(args.path)
    try:
        if args.action == "stats":
            print(json.dumps(store.stats(), indent=1))
        elif args.action == "compact":
            folded = store.compact()
            print(
                json.dumps(
                    {
                        "compacted": folded,
                        "entries": len(store),
                        "journal_bytes": store.journal_bytes(),
                    }
                )
            )
        elif args.action == "import":
            imported = store.import_json(args.legacy)
            print(json.dumps({"imported": imported, "entries": len(store)}))
    finally:
        store.close()
    return 0


def _model_rows(args: argparse.Namespace) -> list:
    """The training corpus: timing rows from ``--store`` and/or
    ``--timings`` (both TimingLog-shaped; concatenating them is fine)."""
    rows: list = []
    if args.store is not None:
        from repro.store import VerdictStore

        store = VerdictStore(args.store)
        try:
            rows.extend(store.load_timings())
        finally:
            store.close()
    for path in args.timings or ():
        from repro.obs.timings import load_timings

        rows.extend(load_timings(path))
    if not rows:
        raise SystemExit(
            "no timing rows: pass --store STORE.sqlite and/or --timings "
            "FILE.jsonl (run e.g. 'repro batch ... --method portfolio "
            "--timings FILE' first to accumulate them)"
        )
    return rows


def _cmd_model(args: argparse.Namespace) -> int:
    """The ``model`` mode: fit / inspect / cross-validate the selector.

    ``fit`` trains the :class:`~repro.select.EngineModel` (with the
    embedded shard :class:`~repro.select.CostModel`) from recorded
    timing rows and writes the JSON artifact; ``show`` prints an
    artifact's engines, training metadata, and strongest per-engine
    feature weights; ``eval`` runs deterministic k-fold
    cross-validation on the rows and reports held-out accuracy and
    mean regret in seconds.
    """
    import json

    from repro.select import (
        VECTOR_NAMES,
        EngineModel,
        ModelDataError,
        cross_validate,
        fit_engine_model,
    )

    if args.action == "fit":
        rows = _model_rows(args)
        engines = (
            tuple(e.strip() for e in args.engines.split(",") if e.strip())
            if args.engines
            else None
        )
        try:
            model = fit_engine_model(
                rows,
                engines=engines,
                iterations=args.iterations,
                with_cost=not args.no_cost,
            )
        except ModelDataError as exc:
            raise SystemExit(f"model fit: {exc}")
        model.save(args.out)
        print(
            json.dumps(
                {
                    "model": str(args.out),
                    "engines": list(model.engines),
                    "cost_model": model.cost is not None,
                    **model.meta,
                },
                indent=1,
            )
        )
    elif args.action == "show":
        model = EngineModel.load(args.artifact)
        top_weights = {}
        for engine, row in zip(model.engines, model.weights):
            ranked = sorted(
                zip(VECTOR_NAMES, row), key=lambda item: -abs(item[1])
            )
            top_weights[engine] = {
                name: round(weight, 4) for name, weight in ranked[:5]
            }
        print(
            json.dumps(
                {
                    "artifact": str(args.artifact),
                    "engines": list(model.engines),
                    "vector_dim": len(VECTOR_NAMES),
                    "cost_model": model.cost is not None,
                    "meta": model.meta,
                    "top_weights": top_weights,
                },
                indent=1,
            )
        )
    elif args.action == "eval":
        rows = _model_rows(args)
        try:
            report = cross_validate(rows, folds=args.folds)
        except ModelDataError as exc:
            raise SystemExit(f"model eval: {exc}")
        print(json.dumps(report, indent=1))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """The ``trace`` mode: one traced solve, span tree on stdout.

    Runs the instance through the same :class:`EngineService` path as
    ``repro serve`` with a per-request trace context, so the printed
    tree shows the real service phases — parse, cache lookup, queue
    wait, the worker-side solve (with the engine span inside it), and
    for ``--repeat`` runs the cache-hit/dedup shape of the later
    requests.  ``--trace-out`` additionally writes the spans as Chrome
    trace-event JSON for ``chrome://tracing`` / Perfetto.
    """
    from repro.obs import (
        Span,
        SpanContext,
        TraceSink,
        dump_chrome,
        format_tree,
        new_trace_id,
    )
    from repro.parallel import ResultCache
    from repro.service import EngineService

    # An in-memory cache so --repeat actually shows the cache-hit span
    # shape (a portfolio's verdict is timing-dependent, hence uncacheable).
    cache = (
        ResultCache() if args.repeat > 1 and args.method != "portfolio" else None
    )
    sink = TraceSink()
    with EngineService(
        method=args.method, n_jobs=args.jobs, cache=cache
    ) as service:
        for attempt in range(max(1, args.repeat)):
            trace_id = new_trace_id()
            root = Span(trace_id, "trace-request", tags={"request": attempt})
            ctx = SpanContext(trace_id, root.span_id, sink)
            ticket = service.submit(str(args.instance), trace=ctx)
            response = ticket.result()
            root.finish()
            sink.record(root)
            verdict = "dual" if response.is_dual else "NOT dual"
            print(
                f"{args.instance}: {verdict} "
                f"(method={response.result.method}, "
                f"origin={response.origin}, "
                f"{response.elapsed_s * 1000:.1f}ms)"
            )
    print()
    print(format_tree(sink.spans()))
    if args.trace_out:
        dump_chrome(sink.spans(), args.trace_out)
        print(
            f"\nwrote {len(sink)} spans to {args.trace_out} "
            "(chrome://tracing / about:tracing)"
        )
    return 0 if response.is_dual else 1


def _cmd_tr(args: argparse.Namespace) -> int:
    g = hgio.load(args.g)
    tr = transversal_hypergraph(g)
    _print_family("tr(G)", tr.edges)
    return 0


def _cmd_tree(args: argparse.Namespace) -> int:
    from repro.duality.boros_makino import tree_for
    from repro.duality.tree import Mark

    g = hgio.load(args.g)
    h = hgio.load(args.h)
    if len(h) > len(g):
        g, h = h, g
        print("(sides swapped to satisfy |H| <= |G|)")
    tree = tree_for(g, h)
    print(
        f"T(G,H): {tree.node_count()} nodes, depth {tree.depth()}, "
        f"max branching {tree.max_branching()}"
    )
    for node in tree.nodes():
        attrs = node.attrs
        indent = "  " * attrs.depth
        mark = attrs.mark.value
        extra = (
            f"  t={format_set(attrs.witness)}" if attrs.mark is Mark.FAIL else ""
        )
        print(
            f"{indent}{list(attrs.label)} |S|={len(attrs.scope)} [{mark}]{extra}"
        )
    return 0 if tree.all_done() else 1


def _cmd_pathnode(args: argparse.Namespace) -> int:
    from repro.duality.logspace import pathnode

    g = hgio.load(args.g)
    h = hgio.load(args.h)
    if len(h) > len(g):
        g, h = h, g
    pi = tuple(int(x) for x in args.descriptor.split(",")) if args.descriptor else ()
    attrs = pathnode(g, h, pi)
    if attrs is None:
        print("wrongpath")
        return 1
    print(f"label: {list(attrs.label)}")
    print(f"scope: {format_set(attrs.scope)}")
    print(f"mark:  {attrs.mark.value}")
    print(f"t:     {format_set(attrs.witness)}")
    return 0


def _cmd_borders(args: argparse.Namespace) -> int:
    from repro.itemsets import enumerate_borders
    from repro.itemsets import io as txio

    relation = txio.load(args.transactions)
    is_plus, is_minus, trace = enumerate_borders(
        relation, args.threshold, method=args.method
    )
    _print_family("maximal frequent itemsets IS+", is_plus.edges)
    _print_family("minimal infrequent itemsets IS-", is_minus.edges)
    print(f"(dualize-and-advance steps: {trace.additions()})")
    return 0


def _cmd_keys(args: argparse.Namespace) -> int:
    from repro.keys import RelationalInstance, minimal_keys

    with open(args.csv, newline="", encoding="utf-8") as handle:
        rows = list(csv.DictReader(handle))
    if not rows:
        print("empty relation", file=sys.stderr)
        return 1
    instance = RelationalInstance(rows)
    keys = minimal_keys(instance)
    _print_family("minimal keys", keys.edges)
    return 0


def _cmd_coterie(args: argparse.Namespace) -> int:
    from repro.errors import NotACoterieError
    from repro.coteries import Coterie, dominating_coterie

    hg = hgio.load(args.quorums)
    try:
        coterie = Coterie(hg.edges, universe=hg.vertices)
    except NotACoterieError as exc:
        print(f"not a coterie: {exc}")
        return 1
    nd = coterie.is_nondominated(method=args.method)
    print(f"coterie with {len(coterie)} quorums: ", end="")
    if nd:
        print("non-dominated (tr(H) = H)")
        return 0
    print("DOMINATED")
    dom = dominating_coterie(coterie, method=args.method)
    if dom is not None:
        _print_family("a dominating coterie", dom.quorums)
    return 1


def _cmd_classify(args: argparse.Namespace) -> int:
    from repro.hypergraph.structure import tractability_report

    hg = hgio.load(args.g)
    report = tractability_report(hg)
    print(f"alpha-acyclic:      {report.alpha_acyclic}")
    print(f"conformal:          {report.conformal}")
    print(f"primal degeneracy:  {report.degeneracy}")
    print(f"rank (max |E|):     {report.rank}")
    print(f"verdict:            {report.verdict}")
    return 0


def _cmd_rules(args: argparse.Namespace) -> int:
    from repro.itemsets import io as txio
    from repro.itemsets.rules import mine_rules

    relation = txio.load(args.transactions)
    rules = mine_rules(
        relation, args.threshold, min_confidence=args.min_confidence
    )
    print(f"{len(rules)} association rules (confidence >= {args.min_confidence}):")
    for rule in rules:
        print(f"  {rule}")
    return 0


def _cmd_selfdual(args: argparse.Namespace) -> int:
    from repro.duality.self_duality import is_self_dual_hypergraph

    hg = hgio.load(args.g)
    if is_self_dual_hypergraph(hg, method=args.method):
        print(f"self-dual: tr(H) = H ({len(hg)} edges)")
        return 0
    print("NOT self-dual (tr(H) ≠ H)")
    return 1


def _cmd_learn(args: argparse.Namespace) -> int:
    from repro.dnf import parse_dnf
    from repro.learning import MembershipOracle, learn_monotone_function

    dnf = parse_dnf(args.dnf)
    oracle = MembershipOracle.from_dnf(dnf)
    learned = learn_monotone_function(oracle, method=args.method)
    _print_family("minimal true points (the DNF)", learned.minimal_true_points.edges)
    _print_family("maximal false points", learned.maximal_false_points.edges)
    print(f"learned CNF: {learned.cnf().to_text()}")
    print(
        f"(membership queries: {learned.queries}, "
        f"duality checks: {learned.duality_checks})"
    )
    return 0


def _parse_signal_list(text: str) -> dict[str, bool]:
    values: dict[str, bool] = {}
    for chunk in text.split(","):
        if not chunk:
            continue
        if "=" not in chunk:
            raise SystemExit(f"expected name=0/1 pairs, got {chunk!r}")
        name, bit = chunk.split("=", 1)
        values[name.strip()] = bit.strip() not in ("0", "false", "False")
    return values


_CIRCUITS = {
    "full-adder": "full_adder",
    "comparator": "one_bit_comparator",
    "two-bit-adder": "two_bit_adder",
}


def _cmd_diagnose(args: argparse.Namespace) -> int:
    from repro import diagnosis

    circuit = getattr(diagnosis, _CIRCUITS[args.circuit])()
    inputs = _parse_signal_list(args.inputs)
    if args.observe:
        observed = _parse_signal_list(args.observe)
        problem = diagnosis.CircuitDiagnosisProblem(circuit, inputs, observed)
    else:
        faults = _parse_signal_list(args.fault)
        problem = diagnosis.CircuitDiagnosisProblem.observe_fault(
            circuit, inputs, faults
        )
        print(f"simulated observation: {problem.observed_outputs}")
    if not problem.is_faulty_observation():
        print("observation is consistent: nothing to diagnose")
        return 0
    conflicts = diagnosis.minimal_conflicts(problem)
    _print_family("minimal conflict sets", conflicts.edges)
    diagnoses = diagnosis.minimal_diagnoses(problem, method="hstree")
    _print_family("minimal diagnoses", diagnoses.edges)
    check = diagnosis.verify_diagnosis_completeness(
        conflicts, diagnoses, method=args.method
    )
    print(f"completeness re-checked by Dual engine {args.method!r}: {check.is_dual}")
    return 0


def _cmd_abduce(args: argparse.Namespace) -> int:
    from repro.abduction import (
        AbductionProblem,
        minimal_explanations,
        necessary_hypotheses,
        relevant_hypotheses,
    )
    from repro.logic import parser as hornio

    theory = hornio.load(args.theory)
    hypotheses = args.hypotheses.split(",")
    problem = AbductionProblem(theory, hypotheses, args.query)
    explanations = minimal_explanations(problem, method=args.method)
    _print_family(
        f"minimal explanations of {args.query!r}", explanations.edges
    )
    print(f"necessary: {format_set(necessary_hypotheses(explanations))}")
    print(f"relevant:  {format_set(relevant_hypotheses(explanations))}")
    return 0 if len(explanations) else 1


def _cmd_envelope(args: argparse.Namespace) -> int:
    from repro.envelopes import envelope_is_exact, horn_envelope
    from repro.logic import parser as hornio

    models = []
    for raw in Path(args.models).read_text(encoding="utf-8").splitlines():
        line = raw.split("#", 1)[0].strip()
        if line == "-":
            models.append(frozenset())
        elif line:
            models.append(frozenset(line.split()))
    atoms = set().union(*models) if models else set()
    if args.atoms:
        atoms |= set(args.atoms.split(","))
    theory = horn_envelope(models, atoms=atoms)
    print(hornio.dumps(theory), end="")
    exact = envelope_is_exact(models, atoms=atoms)
    print(f"# envelope is {'exact' if exact else 'a strict approximation'}")
    return 0


def _cmd_figure1(_args: argparse.Namespace) -> int:
    from repro.complexity import figure1_report

    print(figure1_report(), end="")
    return 0


def _cmd_chi(args: argparse.Namespace) -> int:
    from repro.complexity import chi, fk_time_bound_log, quasi_polynomial_exponent

    n = float(args.n)
    print(f"chi({args.n}) = {chi(n):.6f}")
    print(f"FK exponent 4*chi+1 = {quasi_polynomial_exponent(n):.6f}")
    print(f"log2 of FK bound n^(4chi+1) = {fk_time_bound_log(n):.2f} bits of work")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for testing and docs generation)."""
    parser = argparse.ArgumentParser(
        prog="monotone-dual",
        description=(
            "Monotone duality in quadratic logspace (Gottlob, PODS 2013) "
            "and its database applications."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("dual", help="decide whether H = tr(G)")
    p.add_argument("g", type=Path, help="G hypergraph file (.hg)")
    p.add_argument("h", type=Path, help="H hypergraph file (.hg)")
    p.add_argument(
        "--method",
        default="bm",
        help=(
            "duality engine (default: bm; 'portfolio' races several, "
            "'auto' picks one with the learned selector)"
        ),
    )
    p.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help=(
            "worker processes for sharded solving (default: 1; "
            "--method portfolio defaults to one racer per engine)"
        ),
    )
    p.add_argument(
        "--model",
        type=Path,
        default=None,
        metavar="FILE",
        help=(
            "selector artifact from 'repro model fit' for --method auto "
            "(default: the REPRO_AUTO_MODEL environment variable)"
        ),
    )
    p.set_defaults(fn=_cmd_dual)

    p = sub.add_parser(
        "batch",
        help="solve many duality instance files (G == H per file)",
        description=(
            "Each instance file holds two hypergraphs in .hg format "
            "separated by a '==' line; instances stream through a worker "
            "pool with an optional canonical-hash result cache."
        ),
    )
    p.add_argument(
        "instances", nargs="+", type=Path, help="instance files (.hg, G == H)"
    )
    p.add_argument("--method", default="fk-b", help="duality engine (default: fk-b)")
    p.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="worker processes (default: 1; -1 = all cores)",
    )
    p.add_argument(
        "--store",
        type=Path,
        default=None,
        help=(
            "durable verdict store (journal + SQLite): verdicts are "
            "read through it and every new one is persisted with an "
            "O(1) fsync'd append; a legacy cache.json at the path is "
            "imported automatically"
        ),
    )
    p.add_argument(
        "--cache",
        type=Path,
        default=None,
        help="legacy alias for --store (old JSON caches are imported)",
    )
    p.add_argument(
        "--timings",
        type=Path,
        default=None,
        metavar="FILE",
        help=(
            "append one JSON line per solved instance to FILE: engine, "
            "elapsed seconds, and cheap structural features (edge "
            "counts, max degree, ...) for offline engine-selection study"
        ),
    )
    p.add_argument(
        "--model",
        type=Path,
        default=None,
        metavar="FILE",
        help=(
            "selector artifact from 'repro model fit' for --method auto "
            "(exported to the workers via REPRO_AUTO_MODEL)"
        ),
    )
    p.set_defaults(fn=_cmd_batch)

    p = sub.add_parser(
        "serve",
        help="persistent engine service: instances in, JSON verdicts out",
        description=(
            "Answer duality instances over a persistent worker pool.  "
            "Instance files (.hg, G == H) given as arguments are solved "
            "as one batch; without arguments (or with '-') instance "
            "paths are read from stdin one per line and answered as "
            "they arrive.  With --listen HOST:PORT the service binds a "
            "TCP socket instead and any number of 'repro client' "
            "sessions share the one warm pool (Ctrl-C or a client "
            "shutdown request stops it gracefully: in-flight requests "
            "drain, the cache flushes, the pool closes).  Workers spawn "
            "once per serve session; the optional cache persists "
            "verdicts across sessions — saved atomically after every "
            "computed verdict, and a damaged cache file degrades to "
            "misses at startup instead of failing.  Output is one JSON "
            "object per verdict."
        ),
    )
    p.add_argument(
        "instances",
        nargs="*",
        type=Path,
        help="instance files (.hg, G == H); none or '-' = read paths from stdin",
    )
    p.add_argument("--method", default="fk-b", help="duality engine (default: fk-b)")
    p.add_argument(
        "--auto",
        action="store_true",
        help=(
            "shorthand for --method auto: per-instance learned engine "
            "selection (cold start degrades to the portfolio race)"
        ),
    )
    p.add_argument(
        "--model",
        type=Path,
        default=None,
        metavar="FILE",
        help=(
            "selector artifact from 'repro model fit' for --auto "
            "(exported to the workers via REPRO_AUTO_MODEL; default: "
            "that environment variable)"
        ),
    )
    p.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="persistent worker processes (default: 1; -1 = all cores)",
    )
    p.add_argument(
        "--store",
        type=Path,
        default=None,
        help=(
            "durable verdict store (journal + SQLite in WAL mode): "
            "every computed verdict is one fsync'd append before it is "
            "reported, several server processes can share one store "
            "file, and per-engine timings land in its timings table; a "
            "legacy cache.json at the path is imported automatically"
        ),
    )
    p.add_argument(
        "--cache",
        type=Path,
        default=None,
        help="legacy alias for --store (old JSON caches are imported)",
    )
    p.add_argument(
        "--cache-max",
        type=int,
        default=None,
        metavar="N",
        help=(
            "cap the result cache at N entries with LRU eviction "
            "(default: unbounded)"
        ),
    )
    p.add_argument(
        "--listen",
        metavar="HOST:PORT",
        default=None,
        help=(
            "serve over TCP instead of stdin/stdout (port 0 = pick a "
            "free port; the bound address is printed as the first line)"
        ),
    )
    p.add_argument(
        "--async",
        dest="async_server",
        action="store_true",
        help=(
            "use the asyncio event-loop server for --listen (the "
            "default — and only — server since the bake-in; the flag "
            "is kept for compatibility)"
        ),
    )
    p.add_argument(
        "--auth-token",
        default=None,
        metavar="TOKEN",
        help=(
            "require every --listen connection to authenticate its "
            "first frame with this shared secret (an 'auth' op); a "
            "wrong or missing token gets one error line and a "
            "disconnect"
        ),
    )
    p.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        metavar="N",
        help=(
            "per-connection backpressure cap for --listen: stop "
            "reading a connection once it has N solves in flight "
            "(default: the server's cap, 64)"
        ),
    )
    p.add_argument(
        "--stats",
        action="store_true",
        help="print a final JSON stats line (requests, hits, pool health)",
    )
    p.add_argument(
        "--slow-ms",
        type=float,
        default=None,
        metavar="MS",
        help=(
            "--listen only: log a structured JSON line to stderr (with "
            "per-phase span timings) for every request slower than MS "
            "milliseconds"
        ),
    )
    p.add_argument(
        "--trace",
        action="store_true",
        help=(
            "--listen only: trace every request server-side (clients "
            "still only get spans back when they ask with a 'trace' "
            "field); mostly useful together with --slow-ms"
        ),
    )
    p.add_argument(
        "--timings",
        type=Path,
        default=None,
        metavar="FILE",
        help=(
            "append one JSON timing line per computed verdict to FILE "
            "(engine, elapsed, structural features)"
        ),
    )
    p.add_argument(
        "--peers",
        default=None,
        metavar="HOST:PORT,...",
        help=(
            "coordinator mode: fan parallel-method shards out to these "
            "worker servers (comma-separated 'repro serve --listen' "
            "addresses) over the solve_shard op, with hedged retries; "
            "merged verdicts stay bit-for-bit serial.  Workers "
            "authenticate with --peer-auth-token"
        ),
    )
    p.add_argument(
        "--peer-auth-token",
        default=None,
        metavar="TOKEN",
        help=(
            "shared secret for the outgoing --peers connections (a "
            "fleet usually shares one token with --auth-token)"
        ),
    )
    p.add_argument(
        "--hedge-ms",
        type=float,
        default=None,
        metavar="MS",
        help=(
            "--peers only: duplicate a shard onto another peer once it "
            "has been in flight MS milliseconds; first resolution wins "
            "(default: 250; 0 disables hedging deadlines)"
        ),
    )
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "client",
        help="send duality instances to a 'repro serve --listen' server",
        description=(
            "Connect to a running 'repro serve --listen HOST:PORT' "
            "server and decide instances over it.  Instance files are "
            "read locally and shipped inline (no shared filesystem "
            "needed); without arguments (or with '-') paths are read "
            "from stdin one per line.  One JSON verdict per line, "
            "exit status 0 iff every instance is dual."
        ),
    )
    p.add_argument("address", help="server address, HOST:PORT")
    p.add_argument(
        "instances",
        nargs="*",
        type=Path,
        help="instance files (.hg, G == H); none or '-' = read paths from stdin",
    )
    p.add_argument(
        "--method",
        default=None,
        help="per-request engine override (default: the server's engine)",
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=60.0,
        help="socket timeout in seconds (default: 60)",
    )
    p.add_argument(
        "--auth-token",
        default=None,
        metavar="TOKEN",
        help="shared secret for a server started with --auth-token",
    )
    p.add_argument(
        "--stats",
        action="store_true",
        help="print the server's JSON stats line after the instances",
    )
    p.add_argument(
        "--shutdown",
        action="store_true",
        help="ask the server to shut down gracefully afterwards",
    )
    p.add_argument(
        "--metrics",
        action="store_true",
        help=(
            "print the server's metrics as Prometheus text exposition "
            "after the instances (with no instance arguments: scrape "
            "and exit instead of reading stdin)"
        ),
    )
    p.add_argument(
        "--trace",
        action="store_true",
        help=(
            "trace every solve end-to-end (client edge + server "
            "phases + worker solve) and print the span trees to "
            "stderr when done"
        ),
    )
    p.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        metavar="FILE",
        help=(
            "write the collected spans as Chrome trace-event JSON to "
            "FILE (implies tracing; open in chrome://tracing or "
            "Perfetto)"
        ),
    )
    p.add_argument(
        "--store",
        type=Path,
        default=None,
        help=(
            "local durable verdict store: server verdicts are written "
            "back to it, and (with an explicit --method) instances it "
            "already holds are answered locally without a round trip "
            "(origin 'store-local')"
        ),
    )
    p.set_defaults(fn=_cmd_client)

    p = sub.add_parser(
        "store",
        help="inspect / compact / import a durable verdict store",
        description=(
            "Maintenance for the journal+SQLite verdict store that "
            "'serve --store', 'batch --store', and 'client --store' "
            "share.  'stats' prints a JSON health snapshot (entries, "
            "timings, journal size, hit counters); 'compact' folds the "
            "append journal into the SQLite tables and truncates it; "
            "'import LEGACY.json' loads a ResultCache-format JSON "
            "cache into the store (opening a store whose path holds a "
            "legacy cache.json already imports it automatically)."
        ),
    )
    p.add_argument("action", choices=("stats", "compact", "import"))
    p.add_argument("path", type=Path, help="store file (SQLite database)")
    p.add_argument(
        "legacy",
        nargs="?",
        type=Path,
        default=None,
        help="legacy cache.json to import (import action only)",
    )
    p.set_defaults(fn=_cmd_store)

    p = sub.add_parser(
        "model",
        help="fit / inspect / cross-validate the learned engine selector",
        description=(
            "Train the transparent logistic engine selector (and its "
            "embedded shard cost model) from the timing rows that "
            "'--timings FILE' and 'serve --store' runs accumulate, "
            "inspect a fitted artifact, or cross-validate the rows.  "
            "The JSON artifact feeds --method auto ('dual', 'batch', "
            "'serve --auto') directly via --model FILE or the "
            "REPRO_AUTO_MODEL environment variable."
        ),
    )
    msub = p.add_subparsers(dest="action", required=True)
    mp = msub.add_parser(
        "fit", help="train a selector artifact from timing rows"
    )
    mp.add_argument(
        "--store",
        type=Path,
        default=None,
        help="durable verdict store whose timings table supplies rows",
    )
    mp.add_argument(
        "--timings",
        type=Path,
        action="append",
        default=None,
        metavar="FILE",
        help="timing JSONL file (repeatable; combined with --store rows)",
    )
    mp.add_argument(
        "--out",
        type=Path,
        default=Path("engine-model.json"),
        metavar="FILE",
        help="artifact path to write (default: engine-model.json)",
    )
    mp.add_argument(
        "--engines",
        default=None,
        metavar="A,B,...",
        help="restrict the selector to these engines (default: all timed)",
    )
    mp.add_argument(
        "--iterations",
        type=int,
        default=300,
        help="gradient-descent iterations (default: 300)",
    )
    mp.add_argument(
        "--no-cost",
        action="store_true",
        help="skip fitting the embedded shard cost model",
    )
    mp.set_defaults(fn=_cmd_model)
    mp = msub.add_parser(
        "show", help="print an artifact's engines, metadata, and weights"
    )
    mp.add_argument("artifact", type=Path, help="model JSON artifact")
    mp.set_defaults(fn=_cmd_model)
    mp = msub.add_parser(
        "eval", help="k-fold cross-validate the selector on timing rows"
    )
    mp.add_argument(
        "--store",
        type=Path,
        default=None,
        help="durable verdict store whose timings table supplies rows",
    )
    mp.add_argument(
        "--timings",
        type=Path,
        action="append",
        default=None,
        metavar="FILE",
        help="timing JSONL file (repeatable; combined with --store rows)",
    )
    mp.add_argument(
        "--folds",
        type=int,
        default=3,
        help="cross-validation folds (default: 3)",
    )
    mp.set_defaults(fn=_cmd_model)

    p = sub.add_parser(
        "trace",
        help="solve one instance with tracing on and print the span tree",
        description=(
            "Decide one instance file (.hg, G == H) through the engine "
            "service with a per-request trace, then print the span "
            "tree: parse, cache lookup, queue wait, the worker-side "
            "solve with its engine span, serialize.  --repeat N solves "
            "the same instance N times so the cache-hit shape of the "
            "later requests is visible next to the computed first one."
        ),
    )
    p.add_argument("instance", type=Path, help="instance file (.hg, G == H)")
    p.add_argument("--method", default="fk-b", help="duality engine (default: fk-b)")
    p.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="worker processes (default: 1)",
    )
    p.add_argument(
        "--repeat",
        type=int,
        default=1,
        metavar="N",
        help="solve the instance N times (N>=2 shows the cache-hit path)",
    )
    p.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        metavar="FILE",
        help="also write Chrome trace-event JSON to FILE",
    )
    p.set_defaults(fn=_cmd_trace)

    p = sub.add_parser("tr", help="print minimal transversals")
    p.add_argument("g", type=Path)
    p.set_defaults(fn=_cmd_tr)

    p = sub.add_parser("tree", help="print the Boros–Makino tree")
    p.add_argument("g", type=Path)
    p.add_argument("h", type=Path)
    p.set_defaults(fn=_cmd_tree)

    p = sub.add_parser("pathnode", help="resolve a path descriptor (Lemma 4.2)")
    p.add_argument("g", type=Path)
    p.add_argument("h", type=Path)
    p.add_argument(
        "descriptor",
        nargs="?",
        default="",
        help="comma-separated child indices, e.g. '2,1' (empty = root)",
    )
    p.set_defaults(fn=_cmd_pathnode)

    p = sub.add_parser("borders", help="mine itemset borders (Prop. 1.1)")
    p.add_argument("transactions", type=Path, help="transaction file")
    p.add_argument("threshold", type=int, help="strict threshold z")
    p.add_argument("--method", default="bm")
    p.set_defaults(fn=_cmd_borders)

    p = sub.add_parser("keys", help="minimal keys of a CSV relation (Prop. 1.2)")
    p.add_argument("csv", type=Path)
    p.set_defaults(fn=_cmd_keys)

    p = sub.add_parser("coterie", help="non-domination check (Prop. 1.3)")
    p.add_argument("quorums", type=Path, help="quorum file (.hg)")
    p.add_argument("--method", default="bm")
    p.set_defaults(fn=_cmd_coterie)

    p = sub.add_parser(
        "classify", help="tractability classification (paper §6)"
    )
    p.add_argument("g", type=Path, help="hypergraph file (.hg)")
    p.set_defaults(fn=_cmd_classify)

    p = sub.add_parser("rules", help="association rules from frequent itemsets")
    p.add_argument("transactions", type=Path)
    p.add_argument("threshold", type=int)
    p.add_argument("--min-confidence", type=float, default=0.6)
    p.set_defaults(fn=_cmd_rules)

    p = sub.add_parser("selfdual", help="is tr(H) = H? (coterie core check)")
    p.add_argument("g", type=Path, help="hypergraph file (.hg)")
    p.add_argument("--method", default="bm")
    p.set_defaults(fn=_cmd_selfdual)

    p = sub.add_parser(
        "learn", help="learn a monotone function with membership queries"
    )
    p.add_argument("dnf", help="hidden function as DNF text, e.g. 'a b | c'")
    p.add_argument("--method", default="bm")
    p.set_defaults(fn=_cmd_learn)

    p = sub.add_parser("diagnose", help="model-based circuit diagnosis")
    p.add_argument("circuit", choices=sorted(_CIRCUITS))
    p.add_argument(
        "--inputs", required=True, help="primary inputs, e.g. a=1,b=0,cin=0"
    )
    group = p.add_mutually_exclusive_group(required=True)
    group.add_argument("--observe", help="observed outputs, e.g. x2=0,o1=0")
    group.add_argument("--fault", help="inject faults, e.g. x1=0")
    p.add_argument("--method", default="bm")
    p.set_defaults(fn=_cmd_diagnose)

    p = sub.add_parser(
        "abduce", help="minimal abductive explanations over a Horn theory"
    )
    p.add_argument("theory", type=Path, help="Horn theory file (body -> head)")
    p.add_argument("query", help="atom to explain")
    p.add_argument(
        "--hypotheses", required=True, help="comma-separated abducible atoms"
    )
    p.add_argument("--method", default="bm")
    p.set_defaults(fn=_cmd_abduce)

    p = sub.add_parser(
        "envelope", help="Horn envelope of a model list (KPS construction)"
    )
    p.add_argument(
        "models",
        type=Path,
        help="file with one model per line ('-' = empty model)",
    )
    p.add_argument("--atoms", default="", help="extra atoms, comma-separated")
    p.set_defaults(fn=_cmd_envelope)

    p = sub.add_parser("figure1", help="regenerate Figure 1")
    p.set_defaults(fn=_cmd_figure1)

    p = sub.add_parser("chi", help="print chi(n) and the FK bound")
    p.add_argument("n", type=float)
    p.set_defaults(fn=_cmd_chi)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
