"""Worker-pool execution of shard plans, with bit-exact merging.

The executor turns a :class:`~repro.parallel.planner.ShardPlan` into a
:class:`~repro.duality.result.DualityResult` that is **identical** to
the serial engine's — verdict, certificate, and (for the tree engines,
and for FK on dual instances) the work counters too:

* shard outcomes are merged in the serial visiting order (the shard's
  ``order``), so the winning certificate is the one the serial engine
  would have returned;
* planning work is pre-accounted by the planner, worker counters are
  summed in, and depth/branching maxima are recombined, reproducing the
  serial stats wherever the serial engine would have visited the same
  nodes.

Workers receive only tuples of primitives (mask payloads) and return
only primitives plus ``frozenset`` witnesses, so the process-boundary
cost is a few pickled ints per shard.  ``n_jobs=1`` bypasses
``multiprocessing`` entirely — the same shard functions run in-process,
which keeps the path deterministic, debuggable, and usable where
subprocesses are unwelcome (tests, notebooks, already-forked servers).
"""

from __future__ import annotations

import os
from collections.abc import Callable, Iterable, Sequence

from repro.duality.fredman_khachiyan import (
    _assignment_to_result,
    _decide_m,
)
from repro.duality.result import (
    DecisionStats,
    DualityResult,
    FailureKind,
    dual_result,
    not_dual_result,
)
from repro.duality.tree import Mark, NodeAttributes, TreeNode
from repro.hypergraph import Hypergraph, from_mask_payload
from repro.parallel.planner import (
    ShardPlan,
    plan_bm,
    plan_fk,
    plan_logspace,
)

#: Engine-façade method names with a sharded parallel path.
PARALLEL_METHODS = ("fk-a", "fk-b", "bm", "logspace")

#: How many FK shards to plan per worker — a little oversharding lets
#: the pool balance branches of uneven volume.
FK_SHARDS_PER_JOB = 4

#: Recursive-plan targets for the tree engines: how many shards to aim
#: for per worker when ``n_jobs > 1``.  Oversharding (×2) lets the pool
#: balance skewed decomposition trees.
TREE_SHARDS_PER_JOB = 2


def resolve_n_jobs(n_jobs: int | None) -> int:
    """Normalise an ``n_jobs`` request: ``None``/1 → 1, ``-1`` → all cores."""
    if n_jobs is None:
        return 1
    if not isinstance(n_jobs, int) or isinstance(n_jobs, bool):
        raise ValueError(f"n_jobs must be an int, got {n_jobs!r}")
    if n_jobs == -1:
        return max(os.cpu_count() or 1, 1)
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1 or -1 (all cores), got {n_jobs}")
    return n_jobs


class WorkerPool:
    """A minimal map-over-processes abstraction.

    ``n_jobs == 1`` (or a single work item) maps in-process — the
    deterministic fallback the tests and the planner's merge logic are
    validated against.  Larger ``n_jobs`` fan out over a
    ``multiprocessing.Pool``; work functions must be module-level (the
    spawn start method re-imports them) and items picklable.
    """

    def __init__(self, n_jobs: int | None = 1) -> None:
        self.n_jobs = resolve_n_jobs(n_jobs)

    def map(self, fn: Callable, items: Iterable) -> list:
        """``[fn(item) for item in items]``, possibly across processes."""
        work = list(items)
        if self.n_jobs == 1 or len(work) <= 1:
            return [fn(item) for item in work]
        import multiprocessing

        processes = min(self.n_jobs, len(work))
        with multiprocessing.get_context().Pool(processes) as pool:
            return pool.map(fn, work, chunksize=1)


# ---------------------------------------------------------------------------
# Shard workers (module-level: they must survive pickling by name)
# ---------------------------------------------------------------------------

def run_fk_shard(payload: tuple) -> tuple:
    """Solve one FK subproblem with the serial mask recursion.

    Returns ``(failing, nodes, max_depth, base_cases)`` where ``failing``
    is the mask-domain failing assignment (or ``None``) — the delta is
    applied at merge time.  ``depth`` seeds the recursion's depth
    counter so the merged ``max_depth`` matches the serial engine's.
    """
    f_masks, g_masks, _delta, depth, use_b = payload
    stats = DecisionStats()
    failing = _decide_m(
        frozenset(f_masks), frozenset(g_masks), stats, depth=depth, use_b=use_b
    )
    return failing, stats.nodes, stats.max_depth, stats.base_cases


def _rebuild_instance(header: tuple) -> tuple[Hypergraph, Hypergraph]:
    """Both sides of the instance from a shared-header mask payload."""
    vertices, g_masks, h_masks = header[0], header[1], header[2]
    return (
        from_mask_payload((vertices, g_masks)),
        from_mask_payload((vertices, h_masks)),
    )


def run_bm_shard(args: tuple) -> tuple:
    """Build one Boros–Makino subtree and report its aggregates.

    Returns ``(nodes, max_depth, max_branching, n_leaves, fails)`` with
    ``fails`` a list of ``(label, witness)`` pairs.  Depths are absolute
    (labels carry the full path from the original root).
    """
    header, label, scope_mask = args
    from repro.duality.boros_makino import expand

    g, h = _rebuild_instance(header)
    policy = header[3]
    index = g.bits().index
    scope = index.decode(scope_mask)
    root = TreeNode(NodeAttributes(tuple(label), scope, Mark.NIL, frozenset()))
    frontier = [root]
    while frontier:
        node = frontier.pop()
        outcome = expand(node.attrs, g, h, policy)
        if isinstance(outcome, NodeAttributes):
            node.attrs = outcome
            continue
        node.children = [TreeNode(child) for child in outcome]
        frontier.extend(node.children)

    nodes = 0
    max_depth = 0
    max_branching = 0
    n_leaves = 0
    fails: list[tuple[tuple[int, ...], frozenset]] = []
    for node in root.walk():
        nodes += 1
        max_depth = max(max_depth, node.attrs.depth)
        max_branching = max(max_branching, len(node.children))
        if not node.children:
            n_leaves += 1
            if node.attrs.mark is Mark.FAIL:
                fails.append((node.attrs.label, node.attrs.witness))
    return nodes, max_depth, max_branching, n_leaves, fails


def run_ls_shard(args: tuple) -> tuple:
    """Continue the logspace DFS from one interior child of the root.

    Returns ``(nodes, max_depth, first_max_label, fail)`` where
    ``first_max_label`` is the first node *in DFS order* attaining the
    subtree's maximum depth (the quantity the serial decider's
    ``deepest`` tracker ends on) and ``fail`` is the minimum-label
    ``fail`` leaf as ``(label, witness)``, or ``None``.
    """
    header, label, scope_mask = args
    from repro.duality.logspace import next_attrs

    g, h = _rebuild_instance(header)
    index = g.bits().index
    scope = index.decode(scope_mask)
    attrs = NodeAttributes(tuple(label), scope, Mark.NIL, frozenset())

    nodes = 1
    max_depth = attrs.depth
    first_max_label = attrs.label
    fail: tuple[tuple[int, ...], frozenset] | None = None
    stack: list[tuple[NodeAttributes, int]] = [(attrs, 1)]
    while stack:
        parent, index_ = stack.pop()
        child = next_attrs(g, h, parent, index_)
        if child is None:
            continue
        stack.append((parent, index_ + 1))
        nodes += 1
        if child.depth > max_depth:
            max_depth = child.depth
            first_max_label = child.label
        if child.mark is Mark.FAIL and (fail is None or child.label < fail[0]):
            fail = (child.label, child.witness)
        if child.mark is Mark.NIL:
            stack.append((child, 1))
    return nodes, max_depth, first_max_label, fail


# ---------------------------------------------------------------------------
# Dispatch: the planned method → worker function mapping
# ---------------------------------------------------------------------------

#: Planned-method name → short shard-kind tag.  The tag is what travels
#: on the ``solve_shard`` wire op and what keys :data:`SHARD_RUNNERS`.
SHARD_KINDS = {
    "fredman-khachiyan-A": "fk",
    "fredman-khachiyan-B": "fk",
    "boros-makino": "bm",
    "logspace": "ls",
}

#: Shard-kind tag → module-level worker function.  Every backend — the
#: in-process map, the warm :class:`repro.service.EnginePool`, and a
#: remote peer's ``solve_shard`` handler — runs exactly these.
SHARD_RUNNERS = {
    "fk": run_fk_shard,
    "bm": run_bm_shard,
    "ls": run_ls_shard,
}


def shard_kind(plan: ShardPlan) -> str:
    """The shard-kind tag (``fk``/``bm``/``ls``) of a plan."""
    try:
        return SHARD_KINDS[plan.method]
    except KeyError:
        raise ValueError(
            f"no shard runner for planned method {plan.method!r}"
        ) from None


def shard_worker_items(plan: ShardPlan) -> list[tuple]:
    """The worker items for a plan's shards, in shard order.

    FK shards are self-contained payloads; the tree engines' shards are
    ``(shared header, *payload)`` tuples — the same shapes
    :data:`SHARD_RUNNERS` expect and the wire codec serialises.
    """
    if shard_kind(plan) == "fk":
        return [shard.payload for shard in plan.shards]
    return [(plan.header, *shard.payload) for shard in plan.shards]


def merge_shard_outcomes(
    plan: ShardPlan, outcomes: Sequence[tuple]
) -> DualityResult:
    """Merge shard outcomes (in shard order) into the serial result.

    ``outcomes[i]`` must be the return value of the plan's shard runner
    on ``shard_worker_items(plan)[i]`` — wherever it actually ran.
    """
    kind = shard_kind(plan)
    if kind == "fk":
        return _merge_fk(plan, outcomes)
    if kind == "bm":
        return _merge_bm(plan, outcomes)
    return _merge_logspace(plan, outcomes)


# ---------------------------------------------------------------------------
# Merges
# ---------------------------------------------------------------------------

def _merge_fk(plan: ShardPlan, outcomes: Sequence[tuple]) -> DualityResult:
    stats = DecisionStats(
        nodes=plan.plan_stats.nodes,
        max_depth=plan.plan_stats.max_depth,
    )
    merged_failing = None
    for shard, (failing, nodes, max_depth, base_cases) in zip(
        plan.shards, outcomes
    ):
        stats.nodes += nodes
        stats.max_depth = max(stats.max_depth, max_depth)
        stats.base_cases += base_cases
        if failing is not None and merged_failing is None:
            kind, true_mask = failing
            delta = shard.payload[2]
            merged_failing = (kind, true_mask | delta)
    stats.extra["n_shards"] = len(plan.shards)
    if merged_failing is None:
        return dual_result(plan.method, stats)
    kind, true_mask = merged_failing
    failing = (kind, plan.index.decode(true_mask))
    return _assignment_to_result(plan.method, plan.g, plan.h, failing, stats)


def _merge_bm(plan: ShardPlan, outcomes: Sequence[tuple]) -> DualityResult:
    stats = DecisionStats(
        # Interior nodes the planner expanded itself (the root, plus any
        # node it re-sharded through on a recursive plan).
        nodes=plan.plan_stats.nodes,
        max_depth=0,
        max_children=plan.plan_stats.max_children,
        base_cases=0,
    )
    fails: list[tuple[tuple[int, ...], frozenset]] = []
    for leaf in plan.extra.get("planned_leaves", ()):
        stats.nodes += 1
        stats.max_depth = max(stats.max_depth, leaf.depth)
        stats.base_cases += 1
        if leaf.mark is Mark.FAIL:
            fails.append((leaf.label, leaf.witness))
    for nodes, max_depth, max_branching, n_leaves, shard_fails in outcomes:
        stats.nodes += nodes
        stats.max_depth = max(stats.max_depth, max_depth)
        stats.max_children = max(stats.max_children, max_branching)
        stats.base_cases += n_leaves
        fails.extend(shard_fails)
    stats.extra["swapped"] = plan.swapped
    stats.extra["n_shards"] = len(plan.shards)
    if not fails:
        return dual_result(plan.method, stats)
    label, witness = min(fails, key=lambda item: item[0])
    direction = "H wrt G" if plan.swapped else "G wrt H"
    return not_dual_result(
        plan.method,
        FailureKind.MISSING_TRANSVERSAL,
        witness=witness,
        detail=f"fail leaf {label}: new transversal of {direction}",
        path=label,
        stats=stats,
    )


def _merge_logspace(plan: ShardPlan, outcomes: Sequence[tuple]) -> DualityResult:
    from repro.duality.logspace import pathnode_metered

    # Accounting units in the serial DFS order.  Lexicographic label
    # order *is* DFS pre-order (a parent's label is a proper prefix of
    # its children's), so sorting planned nodes and shard subtrees by
    # label replays the serial decider's visiting order at any re-shard
    # depth.
    planned_nodes: list[NodeAttributes] = plan.extra["planned_nodes"]
    units: list[tuple[tuple[int, ...], str, object]] = [
        (attrs.label, "node", attrs) for attrs in planned_nodes
    ]
    units += [
        (tuple(shard.payload[0]), "shard", outcome)
        for shard, outcome in zip(plan.shards, outcomes)
    ]
    units.sort(key=lambda unit: unit[0])

    stats = DecisionStats(nodes=0, max_depth=0)
    stats.extra["swapped"] = plan.swapped
    deepest: tuple[int, ...] = ()
    deepest_depth = 0
    first_fail: tuple[tuple[int, ...], frozenset] | None = None

    for _label, kind, payload in units:
        if kind == "node":
            attrs: NodeAttributes = payload
            stats.nodes += 1
            if attrs.depth > deepest_depth:
                deepest_depth = attrs.depth
                deepest = attrs.label
            if attrs.mark is Mark.FAIL and (
                first_fail is None or attrs.label < first_fail[0]
            ):
                first_fail = (attrs.label, attrs.witness)
            continue
        nodes, max_depth, first_max_label, fail = payload
        stats.nodes += nodes
        if max_depth > deepest_depth:
            deepest_depth = max_depth
            deepest = tuple(first_max_label)
        if fail is not None and (first_fail is None or fail[0] < first_fail[0]):
            first_fail = (tuple(fail[0]), fail[1])
    stats.max_depth = deepest_depth
    stats.extra["n_shards"] = len(plan.shards)

    _attrs, meter = pathnode_metered(plan.g, plan.h, deepest)
    stats.peak_space_bits = meter.peak_bits

    if first_fail is None:
        return dual_result(plan.method, stats)
    label, witness = first_fail
    direction = "H wrt G" if plan.swapped else "G wrt H"
    return not_dual_result(
        plan.method,
        FailureKind.MISSING_TRANSVERSAL,
        witness=witness,
        detail=f"fail leaf {label}: new transversal of {direction}",
        path=label,
        stats=stats,
    )


# ---------------------------------------------------------------------------
# Front door
# ---------------------------------------------------------------------------

def solve_shards(
    plan: ShardPlan,
    n_jobs: int | None = 1,
    pool=None,
    backend=None,
    trace=None,
) -> DualityResult:
    """Run a plan's shards through an execution backend and merge.

    Three dispatch paths, one merge:

    * ``backend`` — any :class:`repro.parallel.backends.ShardBackend`
      (local warm pool or a remote peer fleet, with hedged retries);
      ``n_jobs``/``pool`` are ignored and ``trace`` (a ``SpanContext``)
      lets shard spans follow the request;
    * ``pool`` — any object with a ``map(fn, items)`` method, e.g. a
      persistent :class:`repro.service.EnginePool`; the caller keeps
      ownership of its lifecycle;
    * otherwise a transient :class:`WorkerPool` sized by ``n_jobs``.

    The shard list may be empty (all root children were leaves, or the
    root itself was); the merge handles those from the plan.
    """
    if plan.resolved is not None:
        return plan.resolved
    if backend is not None:
        outcomes = backend.map_shards(plan, trace=trace)
        return merge_shard_outcomes(plan, outcomes)
    if pool is None:
        pool = WorkerPool(n_jobs)
    runner = SHARD_RUNNERS[shard_kind(plan)]
    outcomes = pool.map(runner, shard_worker_items(plan))
    return merge_shard_outcomes(plan, outcomes)


def decide_duality_parallel(
    g: Hypergraph,
    h: Hypergraph,
    method: str = "fk-b",
    n_jobs: int | None = 1,
    pool=None,
    backend=None,
    trace=None,
    **options,
) -> DualityResult:
    """Sharded parallel duality decision, equivalent to the serial engines.

    ``method`` must be one of :data:`PARALLEL_METHODS`.  Verdicts and
    certificates are identical to ``decide_duality(g, h, method=method)``
    for every ``n_jobs`` — parallelism changes wall time only.

    ``pool`` reuses a persistent pool (e.g. a
    :class:`repro.service.EnginePool`) for the shard fan-out instead of
    spawning a transient one per call; its ``n_jobs`` then sizes the
    shard plan.  ``backend`` dispatches shards through a
    :class:`repro.parallel.backends.ShardBackend` instead (its ``width``
    sizes the plan; ``trace`` threads a ``SpanContext`` to it).
    """
    if backend is not None:
        jobs = max(1, backend.width)
    else:
        jobs = resolve_n_jobs(n_jobs if pool is None else pool.n_jobs)
    if method in ("fk-a", "fk-b"):
        if options.pop("use_bitset", True) is False:
            raise ValueError(
                "the sharded fk path runs the mask kernels; "
                "use n_jobs=1 for the use_bitset=False reference"
            )
        if options:
            raise ValueError(
                f"unknown option(s) for parallel {method!r}: {sorted(options)}"
            )
        plan = plan_fk(
            g, h, use_b=(method == "fk-b"), target_shards=jobs * FK_SHARDS_PER_JOB
        )
        result = solve_shards(plan, jobs, pool=pool, backend=backend, trace=trace)
    elif method == "bm":
        options.setdefault(
            "target_shards", jobs * TREE_SHARDS_PER_JOB if jobs > 1 else None
        )
        plan = plan_bm(g, h, **options)
        result = solve_shards(plan, jobs, pool=pool, backend=backend, trace=trace)
    elif method == "logspace":
        target = options.pop(
            "target_shards", jobs * TREE_SHARDS_PER_JOB if jobs > 1 else None
        )
        cost_fn = options.pop("cost_fn", None)
        if options:
            raise ValueError(
                f"unknown option(s) for parallel 'logspace': {sorted(options)}"
            )
        plan = plan_logspace(g, h, target_shards=target, cost_fn=cost_fn)
        result = solve_shards(plan, jobs, pool=pool, backend=backend, trace=trace)
    else:
        raise ValueError(
            f"method {method!r} has no sharded parallel path; "
            f"parallelizable methods: {', '.join(PARALLEL_METHODS)}"
        )
    result.stats.extra["n_jobs"] = jobs
    return result
