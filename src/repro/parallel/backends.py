"""Pluggable shard-execution backends: local pool and remote peer fleet.

:func:`repro.parallel.executor.solve_shards` separates *planning* from
*dispatch*: a :class:`~repro.parallel.planner.ShardPlan` names the work
(self-contained mask payloads over one shared ``VertexIndex``) and a
merge replays the serial engine from the outcomes — it never cares
where the shards actually ran.  This module makes "where" a first-class
choice behind one interface:

* :class:`LocalPoolBackend` — shards run on a warm
  :class:`repro.service.EnginePool` (or in-process at ``n_jobs=1``),
  bit-for-bit the behaviour the executor always had;
* :class:`PeerBackend` — shards travel to remote duality servers over
  the ``solve_shard`` wire op (JSON lines, pipelined per connection,
  per-peer windows for backpressure, lazy reconnect), so one
  coordinator fans a single instance out to a fleet.

Both submit through :class:`repro.service.pool.HedgedFuture`: after a
per-shard deadline a duplicate launches on another slot/peer and the
first resolution wins — the classic tail cut, and the recovery path
when a peer drops mid-shard (its in-flight futures resolve with
:class:`ShardRetryableError`, feeding an immediate relaunch elsewhere).
Because every shard runner is a pure decision procedure and the merge
consumes outcomes in shard order, none of this can change a verdict,
certificate, or counter.

The wire codec here is deliberately lossless: labels come back as
tuples, witnesses as ``frozenset``\\ s through the vertex codec, masks
as arbitrary-precision ints — so a merged distributed result is
bit-for-bit the local one.
"""

from __future__ import annotations

import socket
import threading
import time
from collections.abc import Sequence

from repro.duality.policies import TieBreakPolicy, policy_by_name
from repro.obs.metrics import Histogram
from repro.obs.trace import record_span
from repro.parallel.codec import decode_value, decode_vertex_set, encode_value, encode_vertex_set
from repro.parallel.executor import (
    SHARD_RUNNERS,
    resolve_n_jobs,
    shard_kind,
)
class _LazyPool:
    """:mod:`repro.service.pool`, resolved at call time.

    The pool module imports :mod:`repro.parallel` (and the service
    package pulls in the store), so a module-level import here would
    cycle whichever package happens to initialize first.  Every use
    is inside a method, where all packages are long finished.
    """

    def __getattr__(self, name):
        from repro.service import pool

        return getattr(pool, name)


_pool = _LazyPool()


class ShardRetryableError(RuntimeError):
    """A shard attempt failed for a transient reason (peer drop, send
    failure, window timeout) — resubmitting the same shard elsewhere is
    safe and expected.  The hedging layer treats this as "relaunch now"
    rather than a terminal error."""


# ---------------------------------------------------------------------------
# Wire codec for shards and outcomes (the ``solve_shard`` op payloads)
# ---------------------------------------------------------------------------
#
# Request ``shard`` field:
#   {"kind": "fk", "payload": {"f": [...], "g": [...], "delta": D,
#                              "depth": K, "use_b": true}}
#   {"kind": "bm", "header": {"vertices": [...], "g": [...], "h": [...],
#                             "policy": "paper"},
#                  "payload": {"label": [...], "scope": M}}
#   {"kind": "ls", "header": {"vertices": [...], "g": [...], "h": [...]},
#                  "payload": {"label": [...], "scope": M}}
#
# Response ``outcome`` field: the runner's return tuple, field by field,
# with witnesses through the vertex codec.  Masks are plain JSON ints
# (arbitrary precision survives), labels round-trip to tuples.

def encode_shard_request(kind: str, header: tuple, payload: tuple) -> dict:
    """The JSON-safe ``shard`` field for one planned shard."""
    if kind == "fk":
        f_masks, g_masks, delta, depth, use_b = payload
        return {
            "kind": "fk",
            "payload": {
                "f": list(f_masks),
                "g": list(g_masks),
                "delta": delta,
                "depth": depth,
                "use_b": bool(use_b),
            },
        }
    if kind not in ("bm", "ls"):
        raise ValueError(f"unknown shard kind {kind!r}")
    wire_header = {
        "vertices": [encode_value(v) for v in header[0]],
        "g": list(header[1]),
        "h": list(header[2]),
    }
    if kind == "bm":
        policy = header[3]
        if not isinstance(policy, TieBreakPolicy):
            raise ValueError(f"bm header carries no policy: {policy!r}")
        wire_header["policy"] = policy.name
    label, scope_mask = payload
    return {
        "kind": kind,
        "header": wire_header,
        "payload": {"label": list(label), "scope": scope_mask},
    }


def decode_shard_item(wire: dict) -> tuple[str, tuple]:
    """``(kind, worker item)`` from a ``shard`` field — the item feeds
    :data:`repro.parallel.executor.SHARD_RUNNERS` unchanged."""
    if not isinstance(wire, dict):
        raise ValueError("shard must be a JSON object")
    kind = wire.get("kind")
    payload = wire.get("payload")
    if not isinstance(payload, dict):
        raise ValueError("shard payload must be a JSON object")
    if kind == "fk":
        return kind, (
            tuple(int(m) for m in payload["f"]),
            tuple(int(m) for m in payload["g"]),
            int(payload["delta"]),
            int(payload["depth"]),
            bool(payload["use_b"]),
        )
    if kind not in ("bm", "ls"):
        raise ValueError(f"unknown shard kind {kind!r}")
    wire_header = wire.get("header")
    if not isinstance(wire_header, dict):
        raise ValueError("shard header must be a JSON object")
    header: tuple = (
        tuple(decode_value(v) for v in wire_header["vertices"]),
        tuple(int(m) for m in wire_header["g"]),
        tuple(int(m) for m in wire_header["h"]),
    )
    if kind == "bm":
        header += (policy_by_name(str(wire_header["policy"])),)
    item = (header, tuple(int(i) for i in payload["label"]), int(payload["scope"]))
    return kind, item


def encode_shard_outcome(kind: str, outcome: tuple) -> dict:
    """The JSON-safe ``outcome`` field from one shard runner's return."""
    if kind == "fk":
        failing, nodes, max_depth, base_cases = outcome
        return {
            "failing": None if failing is None else [failing[0], failing[1]],
            "nodes": nodes,
            "max_depth": max_depth,
            "base_cases": base_cases,
        }
    if kind == "bm":
        nodes, max_depth, max_branching, n_leaves, fails = outcome
        return {
            "nodes": nodes,
            "max_depth": max_depth,
            "max_branching": max_branching,
            "n_leaves": n_leaves,
            "fails": [
                [list(label), encode_vertex_set(witness)]
                for label, witness in fails
            ],
        }
    if kind == "ls":
        nodes, max_depth, first_max_label, fail = outcome
        return {
            "nodes": nodes,
            "max_depth": max_depth,
            "first_max_label": list(first_max_label),
            "fail": None
            if fail is None
            else [list(fail[0]), encode_vertex_set(fail[1])],
        }
    raise ValueError(f"unknown shard kind {kind!r}")


def decode_shard_outcome(kind: str, wire: dict) -> tuple:
    """The runner's native return tuple back from the wire — exact
    types (tuples, frozensets, ints), so the merges are bit-for-bit."""
    if not isinstance(wire, dict):
        raise ValueError("shard outcome must be a JSON object")
    if kind == "fk":
        failing = wire["failing"]
        if failing is not None:
            failing = (str(failing[0]), int(failing[1]))
        return (
            failing,
            int(wire["nodes"]),
            int(wire["max_depth"]),
            int(wire["base_cases"]),
        )
    if kind == "bm":
        return (
            int(wire["nodes"]),
            int(wire["max_depth"]),
            int(wire["max_branching"]),
            int(wire["n_leaves"]),
            [
                (tuple(int(i) for i in label), decode_vertex_set(witness))
                for label, witness in wire["fails"]
            ],
        )
    if kind == "ls":
        fail = wire["fail"]
        if fail is not None:
            fail = (
                tuple(int(i) for i in fail[0]),
                decode_vertex_set(fail[1]),
            )
        return (
            int(wire["nodes"]),
            int(wire["max_depth"]),
            tuple(int(i) for i in wire["first_max_label"]),
            fail,
        )
    raise ValueError(f"unknown shard kind {kind!r}")


# ---------------------------------------------------------------------------
# The backend interface
# ---------------------------------------------------------------------------

class ShardBackend:
    """Where shards run: submit one, or map a whole plan, hedged.

    Subclasses implement :meth:`submit_shard` (one attempt on one
    execution slot) and :attr:`width` (parallel capacity — it sizes the
    shard plans pointed at this backend).  The base class supplies the
    hedged fan-out: :meth:`map_shards` submits every shard of a plan as
    a :class:`~repro.service.pool.HedgedFuture` and gathers outcomes in
    shard order, which is all
    :func:`repro.parallel.executor.solve_shards` needs.
    """

    name = "backend"

    #: Errors that mean "relaunch this shard elsewhere, now".
    RETRYABLE: tuple = (ShardRetryableError,)

    def __init__(
        self,
        hedge_after: float | None = None,
        max_attempts: int | None = None,
    ) -> None:
        #: Seconds a shard may run before a duplicate launches
        #: (``None`` disables hedging).
        self.hedge_after = hedge_after
        self._max_attempts = max_attempts
        self._counter_lock = threading.Lock()
        #: Duplicate launches fired by per-shard deadlines.
        self.hedges_fired = 0
        #: Hedges whose duplicate won the resolution race.
        self.hedges_won = 0

    # -- subclass surface ----------------------------------------------

    @property
    def width(self) -> int:
        """Parallel capacity: how many shards make sense in flight."""
        raise NotImplementedError

    def submit_shard(
        self, kind: str, header: tuple, payload: tuple, *, exclude=(), trace=None
    ) -> "_pool.Completion":
        """One attempt of one shard on one slot; resolves with the
        runner's outcome tuple.  ``exclude`` lists slots already trying
        this shard (hedges prefer a different one); ``trace`` is an
        optional :class:`~repro.obs.trace.SpanContext`."""
        raise NotImplementedError

    def close(self) -> None:
        """Release owned resources (idempotent)."""

    # -- the hedged fan-out --------------------------------------------

    @property
    def max_attempts(self) -> int:
        if self._max_attempts is not None:
            return self._max_attempts
        return max(2, self.width + 1)

    def submit_hedged(
        self, kind: str, header: tuple, payload: tuple, trace=None
    ) -> HedgedFuture:
        """Submit one shard with deadline hedging and drop retries."""
        used: list = []

        def launch(_attempt: int) -> "_pool.Completion":
            attempt = self.submit_shard(
                kind, header, payload, exclude=tuple(used), trace=trace
            )
            slot = getattr(attempt, "slot", None)
            if slot is not None:
                used.append(slot)
            return attempt

        return _pool.HedgedFuture(
            launch,
            hedge_after=self.hedge_after,
            max_attempts=self.max_attempts,
            retryable=self.RETRYABLE,
            on_hedge=self._count_hedge,
            on_hedge_won=self._count_hedge_won,
        )

    def map_shards(self, plan, trace=None) -> list:
        """Every shard of a plan, hedged; outcomes in shard order."""
        kind = shard_kind(plan)
        futures = [
            self.submit_hedged(kind, plan.header, shard.payload, trace=trace)
            for shard in plan.shards
        ]
        return [future.result() for future in futures]

    def _count_hedge(self) -> None:
        with self._counter_lock:
            self.hedges_fired += 1

    def _count_hedge_won(self) -> None:
        with self._counter_lock:
            self.hedges_won += 1

    def stats(self) -> dict:
        return {
            "backend": self.name,
            "width": self.width,
            "hedge_after_s": self.hedge_after,
            "hedges_fired": self.hedges_fired,
            "hedges_won": self.hedges_won,
        }

    def __enter__(self) -> "ShardBackend":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class LocalPoolBackend(ShardBackend):
    """Today's execution path behind the backend interface.

    Shards run on a warm :class:`repro.service.EnginePool` — in-process
    at ``n_jobs=1``, worker processes above — through exactly the same
    module-level runner functions ``pool.map`` always dispatched, so
    outcomes (and therefore merged results) are bit-for-bit unchanged.
    Hedging is off by default here: the pool already retries
    worker-death per item, and duplicates on the same box only contend;
    pass ``hedge_after`` to enable it anyway (it matters when the pool
    is wide and one shard lands on a descheduled core).
    """

    name = "local-pool"

    def __init__(
        self,
        n_jobs: int | None = 1,
        pool=None,
        hedge_after: float | None = None,
        max_attempts: int | None = None,
    ) -> None:
        super().__init__(hedge_after=hedge_after, max_attempts=max_attempts)
        self._owns_pool = pool is None
        self.pool = pool if pool is not None else _pool.EnginePool(resolve_n_jobs(n_jobs))

    @property
    def width(self) -> int:
        return self.pool.n_jobs

    def submit_shard(
        self, kind: str, header: tuple, payload: tuple, *, exclude=(), trace=None
    ) -> "_pool.Completion":
        item = payload if kind == "fk" else (header, *payload)
        return self.pool.submit(SHARD_RUNNERS[kind], item, collect=False)

    def stats(self) -> dict:
        out = super().stats()
        out["pool_generations"] = self.pool.generations
        out["pool_tasks_completed"] = self.pool.tasks_completed
        return out

    def close(self) -> None:
        if self._owns_pool:
            self.pool.shutdown()


# ---------------------------------------------------------------------------
# The peer fleet
# ---------------------------------------------------------------------------

class _PendingShard:
    """One in-flight ``solve_shard`` request on one peer connection."""

    __slots__ = ("kind", "completion", "trace", "sent_wall", "sent_perf")

    def __init__(self, kind: str, completion: Completion, trace) -> None:
        self.kind = kind
        self.completion = completion
        self.trace = trace
        self.sent_wall = time.time()
        self.sent_perf = time.perf_counter()


class _PeerChannel:
    """One pipelined connection to one peer duality server.

    Requests multiplex over a single socket (sequential ids correlate
    the out-of-order responses, the same contract as the ``solve`` op);
    a dedicated reader thread resolves completions as lines arrive.  A
    bounded in-flight window is the per-peer backpressure: past it,
    submitters block until the peer drains.  Any wire failure *drops*
    the channel: every outstanding completion resolves with
    :class:`ShardRetryableError` — retryable by contract, because pure
    shard runners can always re-run elsewhere — and the next submit
    reconnects lazily.
    """

    #: Seconds between reconnect attempts to a peer that just refused.
    RECONNECT_INTERVAL = 0.5

    def __init__(
        self,
        host: str,
        port: int,
        *,
        auth_token: str | None = None,
        timeout: float = 60.0,
        window: int = 32,
        connect_timeout: float = 5.0,
    ) -> None:
        self.host = host
        self.port = port
        self.auth_token = auth_token
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self.window_size = window
        self._window = threading.BoundedSemaphore(window)
        self._lock = threading.RLock()
        self._sock: socket.socket | None = None
        self._reader_thread: threading.Thread | None = None
        self._next_id = 0
        self._pending: dict[int, _PendingShard] = {}
        self._last_connect_attempt = 0.0
        self._closed = False
        self.connected = False
        #: Sticky: this channel has dropped at least once.
        self.degraded = False
        self.shards_sent = 0
        self.shards_completed = 0
        self.reconnects = 0
        self.drops = 0
        self.latency = Histogram(
            "peer_shard_latency_seconds",
            "Per-shard round trip on this peer connection (seconds)",
            window=1024,
        )

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    @property
    def inflight(self) -> int:
        with self._lock:
            return len(self._pending)

    # -- connection management -----------------------------------------

    def ensure_connected(self) -> bool:
        """Connect if needed; False when the peer is (still) unreachable.

        Failed attempts are rate-limited by :data:`RECONNECT_INTERVAL`
        so a dead peer costs one connect per interval, not per shard.
        """
        with self._lock:
            if self._closed:
                return False
            if self.connected:
                return True
            now = time.monotonic()
            if now - self._last_connect_attempt < self.RECONNECT_INTERVAL:
                return False
            self._last_connect_attempt = now
            try:
                self._connect_locked()
            except (OSError, ValueError) as exc:
                self._abandon_socket_locked()
                self._last_error = exc
                return False
            return True

    def _connect_locked(self) -> None:
        from repro.net.protocol import (
            LineReader,
            MAX_LINE_BYTES,
            parse_response,
            send_json,
        )

        sock = socket.create_connection(
            (self.host, self.port), timeout=self.connect_timeout
        )
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            reader = LineReader(sock, MAX_LINE_BYTES)
            if self.auth_token is not None:
                send_json(sock, {"op": "auth", "token": self.auth_token})
                line = reader.readline()
                if line is None:
                    raise OSError("peer closed during auth handshake")
                reply = parse_response(line)
                if not reply.get("ok", False):
                    # A rejected token is a configuration error, not a
                    # transient one — surface it loudly.
                    error = (reply.get("error") or {}).get("message", "auth failed")
                    raise ValueError(f"peer {self.address} refused auth: {error}")
        except BaseException:
            sock.close()
            raise
        sock.settimeout(None)  # the reader blocks for responses
        self._sock = sock
        self.connected = True
        if self.shards_sent or self.drops:
            self.reconnects += 1  # only re-connects count, not the first
        thread = threading.Thread(
            target=self._read_loop,
            args=(reader, sock),
            name=f"peer-reader-{self.address}",
            daemon=True,
        )
        self._reader_thread = thread
        thread.start()

    def _abandon_socket_locked(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        self._sock = None
        self.connected = False

    # -- submit / complete ---------------------------------------------

    def submit(self, kind: str, header: tuple, payload: tuple, trace=None) -> "_pool.Completion":
        """Ship one shard; resolves with the decoded outcome tuple."""
        from repro.net.protocol import send_json

        if not self._window.acquire(timeout=self.timeout):
            raise ShardRetryableError(
                f"peer {self.address}: in-flight window full for {self.timeout}s"
            )
        completion = _pool.Completion()
        completion.slot = self
        try:
            with self._lock:
                if not self.connected and not self.ensure_connected():
                    raise ShardRetryableError(
                        f"peer {self.address} is unreachable"
                    )
                request_id = self._next_id
                self._next_id += 1
                request = {
                    "op": "solve_shard",
                    "id": request_id,
                    "shard": encode_shard_request(kind, header, payload),
                }
                if trace is not None:
                    request["trace"] = trace.trace_id
                self._pending[request_id] = _PendingShard(kind, completion, trace)
                try:
                    send_json(self._sock, request)
                except OSError as exc:
                    self._pending.pop(request_id, None)
                    self._drop_locked(exc)
                    raise ShardRetryableError(
                        f"peer {self.address} send failed: {exc}"
                    ) from exc
                self.shards_sent += 1
        except BaseException:
            self._window.release()
            raise
        return completion

    def _read_loop(self, reader, sock) -> None:
        from repro.net.protocol import parse_response

        try:
            while True:
                line = reader.readline()
                if line is None:
                    raise ConnectionError("peer closed the connection")
                self._complete(parse_response(line))
        except Exception as exc:  # noqa: BLE001 - any wire failure drops
            with self._lock:
                if self._sock is sock and not self._closed:
                    self._drop_locked(exc)

    def _complete(self, response: dict) -> None:
        with self._lock:
            entry = self._pending.pop(response.get("id"), None)
        if entry is None:
            return  # a response nobody waits for any more
        self._window.release()
        elapsed = time.perf_counter() - entry.sent_perf
        self.latency.observe(elapsed)
        with self._lock:
            self.shards_completed += 1
        if entry.trace is not None:
            self._record_shard_span(entry, response)
        if response.get("ok", False):
            try:
                outcome = decode_shard_outcome(entry.kind, response.get("outcome"))
            except (ValueError, KeyError, TypeError) as exc:
                entry.completion.resolve(
                    error=ValueError(
                        f"peer {self.address} returned a malformed outcome: {exc}"
                    )
                )
                return
            entry.completion.resolve(value=outcome)
            return
        error = response.get("error") or {}
        entry.completion.resolve(
            error=RuntimeError(
                f"peer {self.address} rejected shard: "
                f"{error.get('type', 'Error')}: {error.get('message', '?')}"
            )
        )

    def _record_shard_span(self, entry: _PendingShard, response: dict) -> None:
        """The peer edge span, with the peer's own spans re-parented
        under it (same shape as the client's ``_merge_trace``)."""
        edge = record_span(
            entry.trace,
            "peer-shard",
            entry.sent_wall,
            time.time(),
            peer=self.address,
            kind=entry.kind,
        )
        wire = response.get("trace")
        if isinstance(wire, dict):
            for item in wire.get("spans") or []:
                if isinstance(item, dict):
                    if item.get("parent_id") is None:
                        item["parent_id"] = edge.span_id
                    entry.trace.sink.extend([item])

    def _drop_locked(self, exc: BaseException) -> None:
        """Caller holds the lock: fail every outstanding shard as
        retryable and mark the channel down."""
        self._abandon_socket_locked()
        self.degraded = True
        self.drops += 1
        pending, self._pending = self._pending, {}
        for entry in pending.values():
            self._window.release()
            entry.completion.resolve(
                error=ShardRetryableError(
                    f"peer {self.address} dropped mid-shard "
                    f"({type(exc).__name__}: {exc})"
                )
            )

    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._drop_locked(ConnectionError("channel closed"))

    def stats(self) -> dict:
        with self._lock:
            inflight = len(self._pending)
        return {
            "peer": self.address,
            "connected": self.connected,
            "degraded": self.degraded,
            "inflight": inflight,
            "window": self.window_size,
            "shards_sent": self.shards_sent,
            "shards_completed": self.shards_completed,
            "reconnects": self.reconnects,
            "drops": self.drops,
            "latency": self.latency.snapshot_ms(),
        }


class PeerBackend(ShardBackend):
    """A fleet of duality servers as one shard-execution backend.

    ``peers`` is a list of ``(host, port)`` pairs (or ``"host:port"``
    strings); each gets one pipelined :class:`_PeerChannel`.  Shards go
    to the least-loaded connected peer — hedges and drop retries prefer
    a peer that has not yet tried the shard — so a killed or straggling
    worker costs latency on its in-flight shards only, never the batch.

    Hedging defaults on (:data:`DEFAULT_HEDGE_AFTER`): across a fleet a
    straggler is the common failure mode, and the duplicate runs on
    different hardware instead of contending locally.
    """

    name = "peers"

    #: Default per-shard deadline before a duplicate launches.
    DEFAULT_HEDGE_AFTER = 0.25

    def __init__(
        self,
        peers: Sequence,
        *,
        auth_token: str | None = None,
        timeout: float = 60.0,
        window: int = 32,
        hedge_after: float | None = DEFAULT_HEDGE_AFTER,
        max_attempts: int | None = None,
        connect_timeout: float = 5.0,
    ) -> None:
        super().__init__(hedge_after=hedge_after, max_attempts=max_attempts)
        addresses = [self._coerce_address(peer) for peer in peers]
        if not addresses:
            raise ValueError("PeerBackend needs at least one peer address")
        self.channels = [
            _PeerChannel(
                host,
                port,
                auth_token=auth_token,
                timeout=timeout,
                window=window,
                connect_timeout=connect_timeout,
            )
            for host, port in addresses
        ]

    @staticmethod
    def _coerce_address(peer) -> tuple[str, int]:
        if isinstance(peer, str):
            from repro.net.server import parse_address

            return parse_address(peer)
        host, port = peer
        return str(host), int(port)

    @property
    def width(self) -> int:
        return max(1, len(self.channels))

    def submit_shard(
        self, kind: str, header: tuple, payload: tuple, *, exclude=(), trace=None
    ) -> "_pool.Completion":
        channel = self._pick(exclude)
        return channel.submit(kind, header, payload, trace=trace)

    def _pick(self, exclude=()) -> _PeerChannel:
        """The least-loaded reachable peer, preferring unused ones."""
        fresh = [c for c in self.channels if c not in exclude]
        for pool in (fresh, list(self.channels)):
            for channel in sorted(pool, key=lambda c: (c.inflight, c.address)):
                if channel.ensure_connected():
                    return channel
        raise ShardRetryableError(
            "no peer reachable: "
            + ", ".join(c.address for c in self.channels)
        )

    def stats(self) -> dict:
        out = super().stats()
        out["peers"] = [channel.stats() for channel in self.channels]
        return out

    def register_metrics(self, registry) -> None:
        """Fleet-level callback gauges on a
        :class:`repro.obs.metrics.MetricsRegistry`."""
        registry.gauge_fn(
            "peer_channels",
            "Configured peer connections",
            lambda: len(self.channels),
        )
        registry.gauge_fn(
            "peer_channels_connected",
            "Peer connections currently live",
            lambda: sum(1 for c in self.channels if c.connected),
        )
        registry.gauge_fn(
            "peer_shards_sent_total",
            "Shards shipped to peers",
            lambda: sum(c.shards_sent for c in self.channels),
        )
        registry.gauge_fn(
            "peer_hedges_fired_total",
            "Duplicate shard launches fired by the hedge deadline",
            lambda: self.hedges_fired,
        )
        registry.gauge_fn(
            "peer_hedges_won_total",
            "Hedged duplicates that won the resolution race",
            lambda: self.hedges_won,
        )

    def close(self) -> None:
        for channel in self.channels:
            channel.close()
