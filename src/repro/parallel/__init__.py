"""Parallel execution subsystem: sharding, portfolio racing, batching.

PR 1 made subinstances cheap to *represent* (a handful of machine
integers over a shared :class:`~repro.core.VertexIndex`); this package
makes them cheap to *ship*.  Three independent levers, all returning
results bit-for-bit identical to the serial engines:

* **Sharded solving** — :func:`decide_duality_parallel` splits one
  instance along the engines' own decomposition structure (FK branch
  pairs, Boros–Makino tree children, logspace projections) and merges
  worker verdicts in the serial visiting order.  Reached from the
  facade as ``decide_duality(g, h, method="fk-b", n_jobs=4)``.

* **Portfolio racing** — :func:`race_portfolio` runs several engines on
  the same instance concurrently and keeps the first finisher
  (``decide_duality(g, h, method="portfolio")``).

* **Batch workloads** — :func:`solve_many` streams many ``.hg``
  instances through a worker pool with a canonical-hash
  :class:`ResultCache` (``repro batch`` on the command line).

Layering: this package sits on top of :mod:`repro.duality` and
:mod:`repro.hypergraph`; the engine facade imports it lazily, so plain
serial use never pays for it.  Everything falls back to deterministic
in-process execution at ``n_jobs=1`` — ``multiprocessing`` is touched
only when real parallelism is requested.
"""

from repro.parallel.batch import (
    BatchItem,
    ResultCache,
    load_instance,
    solve_many,
)
from repro.parallel.codec import (
    CodecError,
    decode_value,
    decode_vertex_set,
    encode_value,
    encode_vertex_set,
)
from repro.parallel.executor import (
    FK_SHARDS_PER_JOB,
    PARALLEL_METHODS,
    TREE_SHARDS_PER_JOB,
    WorkerPool,
    decide_duality_parallel,
    resolve_n_jobs,
    solve_shards,
)
from repro.parallel.planner import (
    Shard,
    ShardPlan,
    plan_bm,
    plan_fk,
    plan_logspace,
)
from repro.parallel.portfolio import (
    DEFAULT_PORTFOLIO,
    race_portfolio,
)

# Last: backends closes the import cycle through repro.service (it
# needs the executor's runners and the pool's completion machinery).
from repro.parallel.backends import (  # noqa: E402
    LocalPoolBackend,
    PeerBackend,
    ShardBackend,
    ShardRetryableError,
)

__all__ = [
    "BatchItem",
    "CodecError",
    "DEFAULT_PORTFOLIO",
    "FK_SHARDS_PER_JOB",
    "LocalPoolBackend",
    "PARALLEL_METHODS",
    "PeerBackend",
    "ResultCache",
    "Shard",
    "ShardBackend",
    "ShardPlan",
    "ShardRetryableError",
    "TREE_SHARDS_PER_JOB",
    "WorkerPool",
    "decide_duality_parallel",
    "decode_value",
    "decode_vertex_set",
    "encode_value",
    "encode_vertex_set",
    "load_instance",
    "plan_bm",
    "plan_fk",
    "plan_logspace",
    "race_portfolio",
    "resolve_n_jobs",
    "solve_many",
    "solve_shards",
]
