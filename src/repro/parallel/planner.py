"""Shard planner: split one duality instance into independent subinstances.

Every decomposition engine in :mod:`repro.duality` reduces an instance
to subinstances that can be solved *independently* — the property the
paper's self-reduction arguments (and Eiter–Gottlob–Makino's
"polynomially many subproblems" decompositions) rest on, and exactly
what a worker pool needs.  The planner performs the first few reduction
steps **in the parent process**, mirroring the serial engine's free
choices bit for bit, and emits a :class:`ShardPlan`: a shared header
(the instance as canonical mask payloads over one
:class:`~repro.core.VertexIndex`) plus one compact payload per shard.

Three shard shapes, one per engine family:

* **FK branch pairs** (``fk-a``/``fk-b``) — the planner unrolls the top
  of the Fredman–Khachiyan recursion: each expansion replaces a leaf
  subproblem ``(f, g)`` by its branch children in the serial visiting
  order (the ``x=0`` branch first, then the ``x=1`` branch or the
  per-``u ∈ g₁`` B-subproblems).  A shard is a pair of mask families
  plus the *delta* mask of variables forced true along its path, so the
  merged failing assignment equals the serial one exactly.

* **BM tree children** (``bm``) — the planner expands the decomposition
  tree's root with :func:`repro.duality.boros_makino.expand`; each child
  scope becomes a shard whose worker builds that subtree.

* **Logspace projections** (``logspace``) — the planner resolves the
  root and its children with Section 4's ``next`` procedure; each
  interior child becomes a shard whose worker continues the
  ``iter_tree_nodes`` DFS from that child's attributes.

Shard plans for ``bm`` and ``logspace`` are **recursive**: when asked
for more shards than the root has children (``target_shards``), the
planner keeps expanding the largest-estimated-volume frontier node —
re-sharding a shard — until the target is met or nothing worth
splitting remains.  A skewed decomposition tree (one giant child, many
trivial ones) therefore still yields balanced work, where a one-level
plan would put the whole tree in a single worker.  Every node the
planner expands or discovers is recorded in the plan (the *planned
nodes*), so the merge can reconstruct the serial engine's counters and
visiting order exactly, at any re-shard depth.

Merging (in :mod:`repro.parallel.executor`) re-applies the serial
engine's priority rules — first failing FK branch in DFS order, first
``fail`` leaf in canonical label order (which *is* DFS pre-order:
a parent's label is a proper prefix of its children's, so
lexicographic label order equals the serial visiting order) — so
verdicts *and certificates* are identical to the serial engines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import VertexIndex, antichain_minima, mask_sort_key
from repro.complexity.bounds import chi
from repro.duality.boros_makino import expand
from repro.duality.conditions import prepare_instance
from repro.duality.fredman_khachiyan import (
    _base_case_m,
    _most_frequent_variable_m,
    _split_m,
)
from repro.duality.logspace import initial_attrs, next_attrs
from repro.duality.policies import PAPER_POLICY, TieBreakPolicy
from repro.duality.result import DecisionStats, DualityResult
from repro.duality.tree import Mark, NodeAttributes
from repro.hypergraph import Hypergraph, mask_payload


@dataclass(frozen=True)
class Shard:
    """One independent subinstance, as a picklable payload.

    ``order`` is the shard's position in the serial engine's visiting
    order — the merge priority.  ``payload`` is a tuple of primitives
    whose shape depends on ``kind`` (``"fk"``, ``"bm"``, ``"ls"``).
    """

    kind: str
    order: int
    payload: tuple


@dataclass
class ShardPlan:
    """The output of a planner: shards plus parent-side merge context.

    ``header`` is shipped to every worker (instance mask payloads and
    engine options); ``shards`` are the per-worker payloads.  When the
    instance resolves during planning (entry-condition violation, a
    degenerate pair, or a root that is itself a leaf), ``resolved``
    holds the finished result and ``shards`` is empty.

    The remaining fields are merge context that never leaves the parent:
    the validated sides, the vertex index, whether the sides were
    swapped, and the planning work already accounted (so merged stats
    line up with the serial engines').
    """

    method: str
    header: tuple
    shards: tuple[Shard, ...] = ()
    resolved: DualityResult | None = None
    g: Hypergraph | None = None
    h: Hypergraph | None = None
    index: VertexIndex | None = None
    swapped: bool = False
    plan_stats: DecisionStats = field(default_factory=DecisionStats)
    extra: dict = field(default_factory=dict)


# ---------------------------------------------------------------------------
# Fredman–Khachiyan branch pairs
# ---------------------------------------------------------------------------

#: A planner-side FK leaf: (f masks, g masks, delta mask, depth).
_FkLeaf = tuple[frozenset, frozenset, int, int]


def _fk_children(leaf: _FkLeaf, use_b: bool) -> list[_FkLeaf]:
    """The branch children of an expandable FK leaf, in serial visiting
    order — exactly the subcalls ``_decide_m`` would issue."""
    f, g, delta, depth = leaf
    position, freq = _most_frequent_variable_m(f, g)
    xbit = 1 << position
    f0, _f1, f_at_1 = _split_m(f, xbit)
    g0, g1, g_at_1 = _split_m(g, xbit)

    children: list[_FkLeaf] = [(f0, g_at_1, delta, depth + 1)]
    volume = max(len(f) * len(g), 2)
    if use_b and freq < 1.0 / chi(volume) and g1:
        for u in sorted(g1, key=mask_sort_key):
            f_prime = frozenset(e for e in f_at_1 if not e & u)
            g0_u = frozenset(antichain_minima(e2 & ~u for e2 in g0))
            children.append((f_prime, g0_u, delta | xbit, depth + 1))
    else:
        children.append((f_at_1, g0, delta | xbit, depth + 1))
    return children


def _fk_expandable(leaf: _FkLeaf) -> bool:
    """True iff the serial recursion would split this subproblem (its
    base case does not resolve it)."""
    f, g, _delta, _depth = leaf
    return _base_case_m(f, g, DecisionStats()) is None


def plan_fk(
    g: Hypergraph,
    h: Hypergraph,
    use_b: bool,
    target_shards: int,
) -> ShardPlan:
    """Unroll the top of the FK recursion into ``≈ target_shards`` leaves.

    Expansion replaces, repeatedly, the largest-volume expandable leaf
    by its branch children *in place*, so the leaf list stays in the
    serial DFS order.  Each expansion corresponds to one interior
    ``_decide_m`` call, which the plan's stats pre-account.
    """
    method = "fredman-khachiyan-B" if use_b else "fredman-khachiyan-A"
    g.require_simple("G")
    h.require_simple("H")
    index = VertexIndex(g.vertices | h.vertices)
    root: _FkLeaf = (
        frozenset(index.encode(e) for e in g.edges),
        frozenset(index.encode(e) for e in h.edges),
        0,
        0,
    )

    plan_stats = DecisionStats()
    # Each entry pairs a leaf with its (cached) expandability.
    entries: list[tuple[_FkLeaf, bool]] = [(root, _fk_expandable(root))]
    while len(entries) < target_shards:
        candidates = [
            (len(leaf[0]) * len(leaf[1]), pos)
            for pos, (leaf, can_expand) in enumerate(entries)
            if can_expand
        ]
        if not candidates:
            break
        _volume, pos = max(candidates, key=lambda c: (c[0], -c[1]))
        leaf, _ = entries[pos]
        children = _fk_children(leaf, use_b)
        plan_stats.nodes += 1
        plan_stats.max_depth = max(plan_stats.max_depth, leaf[3])
        entries[pos : pos + 1] = [
            (child, _fk_expandable(child)) for child in children
        ]

    leaves = [leaf for leaf, _ in entries]
    shards = tuple(
        Shard(
            kind="fk",
            order=i,
            payload=(tuple(f), tuple(gm), delta, depth, use_b),
        )
        for i, (f, gm, delta, depth) in enumerate(leaves)
    )
    return ShardPlan(
        method=method,
        header=(),
        shards=shards,
        g=g,
        h=h,
        index=index,
        plan_stats=plan_stats,
    )


# ---------------------------------------------------------------------------
# Boros–Makino tree children (recursive)
# ---------------------------------------------------------------------------

#: Frontier nodes with a restricted volume below this are never worth
#: re-sharding — their subtrees are cheaper than the dispatch overhead.
RESHARD_MIN_VOLUME = 4


def _restricted_volume(
    attrs: NodeAttributes, g: Hypergraph, h: Hypergraph
) -> int:
    """The work estimate for a frontier node: ``|G^S| · |H_S|``."""
    g_s, h_s = attrs.instance(g, h)
    return len(g_s) * len(h_s)


def _grow_frontier(
    children: list[NodeAttributes],
    target_shards: int | None,
    g: Hypergraph,
    h: Hypergraph,
    expand_node,
    cost_fn=None,
) -> list[NodeAttributes]:
    """Shared frontier expansion: split the costliest subtree until
    ``target_shards`` frontier nodes exist (or nothing is worth
    splitting).

    ``expand_node(attrs)`` performs one engine-specific expansion step,
    records the node (and any marked children) in the caller's plan
    bookkeeping, and returns the node's unexpanded interior children —
    or ``None`` when the node turned out to be a leaf.  Cost
    estimates (which materialise restricted sub-instances) are only
    computed when expansion will actually be attempted: with
    ``target_shards=None``, or a frontier already at target, the
    children are returned as-is.

    ``cost_fn(attrs, g, h) -> float`` replaces the default
    ``|G^S|·|H_S|`` volume estimate (e.g. with a learned per-shard cost
    predictor, :func:`repro.select.shard_cost_fn`).  A ``min_cost``
    attribute on it replaces the :data:`RESHARD_MIN_VOLUME` re-shard
    gate — the default 0.0 lets every positive-cost node split.  The
    estimate only steers which node splits next; the executor's merges
    reconstruct the serial result from *any* partition, so verdicts,
    certificates, and stats are unchanged under any cost function.
    """
    if target_shards is None or len(children) >= target_shards:
        return children
    if cost_fn is None:
        estimate = _restricted_volume
        gate = RESHARD_MIN_VOLUME
    else:
        estimate = cost_fn
        gate = getattr(cost_fn, "min_cost", 0.0)
    frontier = [(attrs, estimate(attrs, g, h)) for attrs in children]
    while len(frontier) < target_shards:
        candidates = [
            (cost, pos)
            for pos, (_attrs, cost) in enumerate(frontier)
            if cost >= gate and (cost_fn is None or cost > 0)
        ]
        if not candidates:
            break
        _cost, pos = max(candidates, key=lambda c: (c[0], -c[1]))
        attrs, _ = frontier.pop(pos)
        grandchildren = expand_node(attrs)
        if grandchildren is None:
            continue
        frontier[pos:pos] = [
            (child, estimate(child, g, h)) for child in grandchildren
        ]
    return [attrs for attrs, _cost in frontier]


def plan_bm(
    g: Hypergraph,
    h: Hypergraph,
    enforce_size_order: bool = True,
    policy: TieBreakPolicy = PAPER_POLICY,
    target_shards: int | None = None,
    cost_fn=None,
) -> ShardPlan:
    """Shard the decomposition tree, re-sharding big subtrees on demand.

    Mirrors :func:`repro.duality.boros_makino.decide_boros_makino`'s
    prologue (entry check, side swap) in the parent; a root that is
    itself a leaf is resolved by the executor without any worker.

    ``target_shards=None`` reproduces the one-level plan (one shard per
    root child).  With a target, the planner repeatedly expands the
    frontier node of largest estimated cost — mirroring the serial
    engine's own expansion bit for bit — until the frontier holds
    ``target_shards`` nodes or only trivial subtrees remain.  Leaves
    discovered along the way stay in the plan (``extra["planned_leaves"]``)
    so merged stats and the fail-leaf priority match the serial engine
    at every re-shard depth.

    ``cost_fn(attrs, g, h) -> float`` swaps the default ``|G^S|·|H_S|``
    volume estimate for a pluggable per-shard cost predictor (see
    :func:`_grow_frontier`); the default ``None`` keeps the volume
    estimate bit-for-bit.  Results are identical under any cost
    function — only shard balance changes.
    """
    from repro.duality.result import FailureKind, dual_result, not_dual_result

    method = "boros-makino"
    entry = prepare_instance(g, h)
    if not entry.ok:
        return ShardPlan(
            method=method,
            header=(),
            resolved=not_dual_result(
                method, entry.failure, witness=entry.witness, detail=entry.detail
            ),
        )
    g_v, h_v = entry.g, entry.h
    swapped = enforce_size_order and len(h_v) > len(g_v)
    if swapped:
        g_v, h_v = h_v, g_v

    universe = frozenset(g_v.vertices | h_v.vertices)
    index = VertexIndex(universe)
    root_attrs = NodeAttributes((), universe, Mark.NIL, frozenset())
    outcome = expand(root_attrs, g_v, h_v, policy)

    if isinstance(outcome, NodeAttributes):
        # Single-node tree: resolve exactly as the serial decider would.
        stats = DecisionStats(nodes=1, max_depth=0, max_children=0, base_cases=1)
        stats.extra["swapped"] = swapped
        if outcome.mark is Mark.DONE:
            resolved = dual_result(method, stats)
        else:
            direction = "H wrt G" if swapped else "G wrt H"
            resolved = not_dual_result(
                method,
                FailureKind.MISSING_TRANSVERSAL,
                witness=outcome.witness,
                detail=(
                    f"fail leaf {outcome.label}: new transversal of {direction}"
                ),
                path=outcome.label,
                stats=stats,
            )
        return ShardPlan(method=method, header=(), resolved=resolved)

    # Recursive frontier expansion: plan-state updated by the callback,
    # selection/splicing shared with plan_logspace via _grow_frontier.
    # Expanding a node mirrors the serial builder bit for bit, so
    # plan-time work is pre-accounting, not extra work.
    plan_state = {"interior": 1, "max_children": len(outcome)}  # the root
    planned_leaves: list[NodeAttributes] = []

    def expand_bm_node(attrs: NodeAttributes) -> list[NodeAttributes] | None:
        child_outcome = expand(attrs, g_v, h_v, policy)
        if isinstance(child_outcome, NodeAttributes):
            planned_leaves.append(child_outcome)
            return None
        plan_state["interior"] += 1
        plan_state["max_children"] = max(
            plan_state["max_children"], len(child_outcome)
        )
        return child_outcome

    frontier = _grow_frontier(
        outcome, target_shards, g_v, h_v, expand_bm_node, cost_fn=cost_fn
    )

    g_vertices, g_masks = mask_payload(g_v)
    _h_vertices, h_masks = mask_payload(h_v)
    header = (g_vertices, g_masks, h_masks, policy)
    shards = tuple(
        Shard(
            kind="bm",
            order=i,
            payload=(child.label, index.encode(child.scope)),
        )
        for i, child in enumerate(frontier)
    )
    plan_stats = DecisionStats(
        nodes=plan_state["interior"], max_children=plan_state["max_children"]
    )
    plan = ShardPlan(
        method=method,
        header=header,
        shards=shards,
        g=g_v,
        h=h_v,
        index=index,
        swapped=swapped,
        plan_stats=plan_stats,
    )
    plan.extra["planned_leaves"] = planned_leaves
    return plan


# ---------------------------------------------------------------------------
# Logspace projections
# ---------------------------------------------------------------------------

def _ls_children(
    g: Hypergraph, h: Hypergraph, attrs: NodeAttributes
) -> list[NodeAttributes]:
    """All children of an interior node via Lemma 4.1's ``next``."""
    children: list[NodeAttributes] = []
    i = 1
    while True:
        child = next_attrs(g, h, attrs, i)
        if child is None:
            break
        children.append(child)
        i += 1
    return children


def plan_logspace(
    g: Hypergraph,
    h: Hypergraph,
    target_shards: int | None = None,
    cost_fn=None,
) -> ShardPlan:
    """Shard the Section 4 DFS, re-sharding big projections on demand.

    One shard per unexpanded interior node of the plan frontier.  Nodes
    the planner resolves itself — the root, any interior node it
    re-sharded through, and every ``done``/``fail`` leaf the Lemma 4.1
    finalisation marks along the way — are carried in
    ``extra["planned_nodes"]``; the executor accounts for them without
    dispatching a worker, walking plan nodes and shard outcomes in
    label (= DFS) order so the ``deepest`` tracker and the fail-leaf
    priority replay the serial decider exactly.

    ``target_shards=None`` keeps the one-level plan (the root's interior
    children); with a target, the largest-estimated-cost frontier node
    is expanded via ``next`` until the target is met or only trivial
    projections remain.  ``cost_fn`` swaps the volume estimate for a
    pluggable per-shard cost predictor, exactly as in :func:`plan_bm`.
    """
    from repro.duality.result import not_dual_result

    method = "logspace"
    entry = prepare_instance(g, h)
    if not entry.ok:
        return ShardPlan(
            method=method,
            header=(),
            resolved=not_dual_result(
                method, entry.failure, witness=entry.witness, detail=entry.detail
            ),
        )
    g_v, h_v = entry.g, entry.h
    swapped = len(h_v) > len(g_v)
    if swapped:
        g_v, h_v = h_v, g_v

    index = VertexIndex(g_v.vertices | h_v.vertices)
    root = initial_attrs(g_v, h_v)

    planned_nodes: list[NodeAttributes] = [root]
    root_children: list[NodeAttributes] = []
    if root.mark is Mark.NIL:
        for child in _ls_children(g_v, h_v, root):
            if child.mark is Mark.NIL:
                root_children.append(child)
            else:
                planned_nodes.append(child)

    def expand_ls_node(attrs: NodeAttributes) -> list[NodeAttributes]:
        planned_nodes.append(attrs)
        nil_children: list[NodeAttributes] = []
        for child in _ls_children(g_v, h_v, attrs):
            if child.mark is Mark.NIL:
                nil_children.append(child)
            else:
                planned_nodes.append(child)
        return nil_children

    frontier = _grow_frontier(
        root_children, target_shards, g_v, h_v, expand_ls_node, cost_fn=cost_fn
    )

    g_vertices, g_masks = mask_payload(g_v)
    _h_vertices, h_masks = mask_payload(h_v)
    header = (g_vertices, g_masks, h_masks)
    shards = tuple(
        Shard(
            kind="ls",
            order=i,
            payload=(child.label, index.encode(child.scope)),
        )
        for i, child in enumerate(frontier)
    )

    plan = ShardPlan(
        method=method,
        header=header,
        shards=shards,
        g=g_v,
        h=h_v,
        index=index,
        swapped=swapped,
    )
    plan.extra["planned_nodes"] = planned_nodes
    return plan
