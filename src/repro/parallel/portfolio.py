"""Engine portfolio racing: several deciders, first finisher wins.

``Dual``'s engines have incomparable strengths — ``fk-b`` dominates on
random instances, ``bm``/``logspace`` on decomposition-friendly ones,
``tractable`` recognises the paper's Section 6 classes outright.  A
portfolio sidesteps per-instance engine selection: run a complement of
engines on the *same* instance concurrently and keep the first verdict.
Every engine is a correct decider, so the first finisher's verdict is
the instance's verdict, and its certificate is that engine's serial
certificate, unchanged.

Three modes:

* ``pool=`` with ``n_jobs > 1`` — the race runs on a provided warm
  :class:`repro.service.EnginePool`: one future per engine, first
  completion wins.  No per-race process forks (the fork overhead that
  otherwise pollutes the timing rows used for learned engine
  selection); losers cannot be terminated mid-solve, so they run to
  completion on the warm workers in the background (their timings are
  recorded as ``None`` — unknown at decision time).
* ``n_jobs > 1`` without a pool — one raw daemon process per engine
  (capped at ``n_jobs``); the first process to return wins and the
  rest are terminated.  Losers' timings are unknown (``None``).
* ``n_jobs = 1`` — the deterministic in-process fallback: every engine
  runs to completion, all timings are recorded, and the winner is the
  engine with the smallest wall time (ties broken by portfolio order).

Either way the returned :class:`DualityResult` is the winning engine's
own result object with ``stats.extra["portfolio"]`` describing the race
(winner, per-engine timings in seconds, mode, and any per-engine
errors — a crashing racer is reported and its slot handed to the next
queued engine, never silently dropped; only all engines failing raises).
"""

from __future__ import annotations

import time

from repro.duality.result import DualityResult
from repro.hypergraph import Hypergraph, from_mask_payload, mask_payload
from repro.obs.trace import span
from repro.parallel.executor import resolve_n_jobs

#: The default complement of racers: the FK workhorse, the two
#: decomposition-tree engines, and the Section 6 structural dispatch.
DEFAULT_PORTFOLIO = ("fk-b", "bm", "logspace", "tractable")


def _race_payloads(
    g: Hypergraph, h: Hypergraph, engines: tuple[str, ...]
) -> list[tuple]:
    g_vertices, g_masks = mask_payload(g)
    h_vertices, h_masks = mask_payload(h)
    return [
        (engine, (g_vertices, g_masks), (h_vertices, h_masks))
        for engine in engines
    ]


def run_portfolio_entry(payload: tuple) -> tuple:
    """Solve the instance with one engine (module-level for pickling).

    Returns ``(engine, elapsed_s, result, error)`` — errors are reported
    rather than raised so one crashing engine cannot kill the race.
    """
    engine, g_payload, h_payload = payload
    from repro.duality import decide_duality

    g = from_mask_payload(g_payload)
    h = from_mask_payload(h_payload)
    start = time.perf_counter()
    try:
        result = decide_duality(g, h, method=engine)
    except Exception as exc:
        return engine, time.perf_counter() - start, None, repr(exc)
    return engine, time.perf_counter() - start, result, None


def run_portfolio_entry_queue(payload: tuple, queue) -> None:
    """Race worker body: solve and report through the result queue."""
    queue.put(run_portfolio_entry(payload))


def race_portfolio(
    g: Hypergraph,
    h: Hypergraph,
    engines: tuple[str, ...] | list[str] = DEFAULT_PORTFOLIO,
    n_jobs: int | None = None,
    pool=None,
) -> DualityResult:
    """Race ``engines`` on ``(g, h)``; return the first finisher's result.

    ``n_jobs=None`` uses one worker per engine; ``n_jobs=1`` selects the
    sequential fallback (all engines run, fastest wins).  ``pool`` — a
    warm :class:`repro.service.EnginePool` (anything with the futures
    ``submit(fn, item, collect=False)`` surface) — runs the race on its
    persistent workers instead of forking one daemon process per racer;
    the caller owns the pool's lifecycle.  ``n_jobs=1`` still forces
    the deterministic sequential fallback even with a pool.  The
    winner's result is returned unchanged except for
    ``stats.extra["portfolio"]``.
    """
    engines = tuple(engines)
    if not engines:
        raise ValueError("portfolio needs at least one engine")
    from repro.duality.engine import available_methods

    meta_methods = ("portfolio", "auto")
    unknown = [
        e for e in engines if e not in available_methods() or e in meta_methods
    ]
    if unknown:
        raise ValueError(
            f"unknown portfolio engine(s) {unknown}; "
            f"valid engines: "
            f"{', '.join(m for m in available_methods() if m not in meta_methods)}"
        )
    jobs = len(engines) if n_jobs is None else resolve_n_jobs(n_jobs)

    timings: dict[str, float | None] = {}
    failures: dict[str, str] = {}
    if jobs == 1 or len(engines) == 1:
        from repro.duality import decide_duality

        results: dict[str, DualityResult] = {}
        caught: dict[str, Exception] = {}
        for engine in engines:
            # A no-op unless tracing is enabled for this process or
            # request (repro.obs.span returns its null singleton then).
            with span(f"engine:{engine}", mode="sequential") as engine_span:
                start = time.perf_counter()
                try:
                    results[engine] = decide_duality(g, h, method=engine)
                except Exception as exc:
                    # Same contract as the race: a crashing engine is
                    # reported and the survivors keep competing.
                    caught[engine] = exc
                    failures[engine] = repr(exc)
                timings[engine] = time.perf_counter() - start
                engine_span.set_tag("elapsed_ms", round(timings[engine] * 1000, 3))
        if not results:
            # No winner to return, so surface the real failure: the
            # first engine's exception (typically an input-validation
            # error every engine shares, e.g. NotSimpleError), with the
            # other engines' verdicts on it attached.
            first = next(iter(caught.values()))
            first.add_note(
                f"every portfolio engine failed on this instance: {failures}"
            )
            raise first
        winner = min(results, key=lambda e: (timings[e], engines.index(e)))
        result = results[winner]
        mode = "sequential"
    elif pool is not None:
        # The warm-pool race: one future per engine on the provided
        # persistent workers — no per-race forks.  Futures cannot be
        # terminated, so losers run to completion in the background
        # (collect=False keeps them out of any service drain); their
        # timings stay None, exactly like terminated raw-race losers.
        from queue import Queue

        completions: Queue = Queue()
        timings = {engine: None for engine in engines}
        for payload in _race_payloads(g, h, engines):
            future = pool.submit(run_portfolio_entry, payload, collect=False)
            future.add_done_callback(
                lambda f, e=payload[0]: completions.put((e, f))
            )
        winner = None
        result = None
        remaining = len(engines)
        while result is None and remaining:
            engine, future = completions.get()
            remaining -= 1
            error = future.exception()
            if error is not None:
                # The pool already retried worker deaths; a surfaced
                # error means the item itself is poison for that engine.
                failures[engine] = repr(error)
                continue
            _engine, elapsed, engine_result, entry_error = future.result()
            timings[engine] = elapsed
            if entry_error is not None:
                failures[engine] = entry_error
                continue
            winner, result = engine, engine_result
        if result is None:
            raise RuntimeError(
                f"every portfolio engine failed on this instance: "
                f"{engines} ({failures})"
            )
        mode = "pool-race"
    else:
        # One raw daemon Process per racer, reporting through a queue.
        # Deliberately NOT multiprocessing.Pool: terminating a Pool that
        # still has queued tasks can deadlock its _handle_tasks helper
        # thread against _terminate_pool (a long-standing CPython race);
        # Process.terminate() has no helper threads to wedge.
        import multiprocessing
        from queue import Empty

        ctx = multiprocessing.get_context()
        results_queue = ctx.Queue()
        pending = _race_payloads(g, h, engines)
        timings = {engine: None for engine in engines}
        winner = None
        result = None
        running: list = []

        def launch_next() -> None:
            proc = ctx.Process(
                target=run_portfolio_entry_queue,
                args=(pending.pop(0), results_queue),
                daemon=True,
            )
            proc.start()
            running.append(proc)

        for _ in range(min(jobs, len(pending))):
            launch_next()
        while result is None:
            try:
                engine, elapsed, engine_result, error = results_queue.get(
                    timeout=0.1
                )
            except Empty:
                if any(proc.is_alive() for proc in running):
                    continue
                if pending:
                    # Every in-flight racer died without reporting (hard
                    # kill, segfault); keep the race going with the next
                    # engine instead of polling forever.
                    launch_next()
                    continue
                # Every racer is gone; allow one grace read for a result
                # still in flight through the queue's feeder pipe.
                try:
                    engine, elapsed, engine_result, error = results_queue.get(
                        timeout=1.0
                    )
                except Empty:
                    break
            timings[engine] = elapsed
            if error is not None:
                # The racer crashed: remember why, and put the next
                # queued engine on its vacated slot so the race keeps
                # its width instead of silently narrowing.
                failures[engine] = error
                if pending:
                    launch_next()
                continue
            winner, result = engine, engine_result
        for proc in running:
            if proc.is_alive():
                proc.terminate()
        for proc in running:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.kill()
                proc.join(timeout=5)
        results_queue.cancel_join_thread()
        results_queue.close()
        if result is None:
            raise RuntimeError(
                f"every portfolio engine failed on this instance: "
                f"{engines} ({failures})"
            )
        mode = "race"

    result.stats.extra["portfolio"] = {
        "winner": winner,
        "mode": mode,
        "engines": list(engines),
        "errors": dict(failures),
        "timings_s": {
            engine: (round(t, 6) if t is not None else None)
            for engine, t in timings.items()
        },
    }
    return result
