"""Lossless JSON codec for vertex labels, witnesses and results.

The :class:`~repro.parallel.batch.ResultCache` persists verdicts and
certificates as JSON.  Plain ``json.dumps`` can only express a subset of
the vertex types the library actually produces — the generators label
vertices with tuples (``disjoint_union_pair`` tags sides as ``(0, v)``,
``perturb_enlarge_edge`` mints ``("fresh", n)``) and JSON would either
reject them or silently turn them into lists, which do not compare equal
to the original tuples on reload.  This module provides a tagged,
reversible encoding instead:

======== =====================  =========================
tag      Python type            encoding
======== =====================  =========================
``i``    ``int``                ``["i", n]``
``b``    ``bool``               ``["b", true/false]``
``s``    ``str``                ``["s", "text"]``
``n``    ``None``               ``["n"]``
``F``    ``float``              ``["F", x]``
``t``    ``tuple``              ``["t", [items…]]`` (recursive)
``f``    ``frozenset``          ``["f", [items…]]`` (sorted, recursive)
======== =====================  =========================

``bool`` is tagged before ``int`` (it is an ``int`` subclass), tuples
and frozensets recurse, and frozenset members are sorted by the
library's canonical :func:`repro._util.vertex_key` so the encoding is
deterministic.  Anything outside the table raises :class:`CodecError` —
callers that used to skip non-JSON entries can keep doing so, but for
every vertex type the library itself constructs the round trip is exact
(``decode_value(encode_value(v)) == v`` *and* types match).
"""

from __future__ import annotations

from repro._util import vertex_key


class CodecError(TypeError):
    """A value outside the codec's (deliberately small) type table."""


def encode_value(value) -> list:
    """Encode one vertex label (or nested component) as tagged JSON."""
    if isinstance(value, bool):  # must precede int: bool ⊂ int
        return ["b", value]
    if isinstance(value, int):
        return ["i", value]
    if isinstance(value, str):
        return ["s", value]
    if value is None:
        return ["n"]
    if isinstance(value, float):
        return ["F", value]
    if isinstance(value, tuple):
        return ["t", [encode_value(item) for item in value]]
    if isinstance(value, frozenset):
        ordered = sorted(value, key=vertex_key)
        return ["f", [encode_value(item) for item in ordered]]
    raise CodecError(
        f"cannot losslessly encode {type(value).__name__} value {value!r}"
    )


def decode_value(encoded):
    """Invert :func:`encode_value` (types included)."""
    if not isinstance(encoded, list) or not encoded:
        raise CodecError(f"malformed codec payload: {encoded!r}")
    tag = encoded[0]
    if tag == "n":
        return None
    if len(encoded) != 2:
        raise CodecError(f"malformed codec payload: {encoded!r}")
    body = encoded[1]
    if tag == "b":
        return bool(body)
    if tag == "i":
        return int(body)
    if tag == "s":
        return str(body)
    if tag == "F":
        return float(body)
    if tag == "t":
        return tuple(decode_value(item) for item in body)
    if tag == "f":
        return frozenset(decode_value(item) for item in body)
    raise CodecError(f"unknown codec tag {tag!r} in {encoded!r}")


def encode_vertex_set(vertices: frozenset | None) -> list | None:
    """A witness/edge as a deterministic list of encoded vertices."""
    if vertices is None:
        return None
    return [encode_value(v) for v in sorted(vertices, key=vertex_key)]


def decode_vertex_set(encoded: list | None) -> frozenset | None:
    """Invert :func:`encode_vertex_set`."""
    if encoded is None:
        return None
    return frozenset(decode_value(item) for item in encoded)
