"""Batch front end: stream many duality instances through the pool.

``solve_many`` is the library face of the ``repro batch`` CLI: it takes
a heterogeneous stream of instances — ``(G, H)`` pairs or paths to
``.hg`` instance files (two hypergraphs separated by a ``==`` line, the
:func:`repro.hypergraph.io.load_many` convention) — and solves them with
a serial engine per worker.  Parallelism here is *across* instances
(each worker runs the ordinary serial decider on a whole instance), so
every verdict and certificate is identical to a serial
:func:`repro.duality.decide_duality` call by construction; sharding
*within* one instance is :mod:`repro.parallel.executor`'s job.

Results are memoised in a :class:`ResultCache` keyed by
:func:`repro.hypergraph.canonical.instance_key` — the canonical-edge-
order hash of both sides plus the engine name.  The key binds vertex
labels (certificates are labelled sets) and the method (each engine has
its own deterministic certificate), so a hit can replay the cached
result verbatim.  ``method="portfolio"`` is the one exception — its
winner is timing-dependent, so caching it is refused.  The cache
persists to JSON when given a path, making repeated CLI sweeps over a
corpus incremental.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
import warnings
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

from repro.duality.result import (
    Certificate,
    DecisionStats,
    DualityResult,
    FailureKind,
    Verdict,
)
from repro.hypergraph import (
    Hypergraph,
    from_mask_payload,
    instance_key,
    mask_payload,
    pair_digest,
)
from repro.hypergraph import io as hgio
from repro.obs.timings import TimingLog, structural_features
from repro.obs.trace import span
from repro.parallel.codec import (
    CodecError,
    decode_vertex_set,
    encode_vertex_set,
)
from repro.parallel.executor import WorkerPool, resolve_n_jobs


def result_to_json(result: DualityResult) -> dict | None:
    """One verdict as a JSON-safe entry dict (``None`` for witnesses the
    codec cannot express — such results stay memory-only).

    The shared persistence format of the legacy JSON cache file and the
    durable :mod:`repro.store` journal/database: ``verdict`` /
    ``method`` / ``kind`` / ``witness`` (tagged codec) / ``detail`` /
    ``path``.
    """
    cert = result.certificate
    try:
        witness = encode_vertex_set(cert.witness)
    except CodecError:
        return None
    return {
        "verdict": result.verdict.value,
        "method": result.method,
        "kind": cert.kind.name if cert.kind is not None else None,
        "witness": witness,
        "detail": cert.detail,
        "path": list(cert.path) if cert.path is not None else None,
    }


def result_from_json(entry: dict) -> DualityResult:
    """Rebuild a :class:`DualityResult` from :func:`result_to_json` output.

    Replayed results carry fresh stats with ``extra["cached"] = True`` —
    work counters are not persisted, only the answer is.  Raises
    (``KeyError`` / ``ValueError`` / :class:`CodecError`) on entries
    from unknown or pre-codec formats; loaders treat that as a miss.
    """
    stats = DecisionStats()
    stats.extra["cached"] = True
    return DualityResult(
        verdict=Verdict(entry["verdict"]),
        certificate=Certificate(
            kind=FailureKind[entry["kind"]] if entry["kind"] else None,
            witness=decode_vertex_set(entry["witness"]),
            detail=entry.get("detail", ""),
            path=tuple(entry["path"]) if entry["path"] is not None else None,
        ),
        stats=stats,
        method=entry["method"],
    )


class ResultCache:
    """A verdict/certificate cache keyed by canonical instance hash.

    In memory the cache stores :class:`DualityResult` objects directly.
    ``save``/``load`` round-trip through JSON for persistence across
    processes and CLI runs.  Witness vertices travel through the tagged
    codec of :mod:`repro.parallel.codec`, so every vertex type the
    library constructs (ints, strings, nested tuples, frozensets)
    survives the round trip with its exact type; only truly exotic
    labels (user-defined objects) fall back to memory-only entries.
    Replayed results carry fresh stats with ``extra["cached"] = True`` —
    work counters are not replayed, only the answer is.

    ``max_entries`` bounds the cache with LRU eviction: both
    :meth:`get` (a hit) and :meth:`put` refresh an entry's recency, and
    once the cap is exceeded the least-recently-used entries are
    dropped (counted in ``evictions``).  The default ``None`` keeps the
    cache unbounded — the pre-PR-5 behaviour.  Persistence preserves
    the recency order (least-recent first on disk), so a bounded cache
    reloaded across sessions evicts the same entries it would have kept
    evicting.

    The cache is thread-safe: a long-lived service multiplexes many
    connection handlers onto one instance, so every read and write
    takes an internal lock, and :meth:`save` is atomic (a temp-file
    write followed by ``os.replace``) so a crash mid-save leaves the
    previous generation of the file intact, never a truncated one.

    ``backend`` plugs in a durable store behind the LRU — anything with
    the :class:`repro.store.VerdictStore` ``get(key)`` /
    ``put(key, result, digest=...)`` surface.  Reads fall through to
    the backend on a memory miss (a backend hit is promoted into the
    LRU and counted as a hit); writes go **through** immediately, so a
    backend-held verdict is durable the moment :meth:`put` returns and
    the whole-file :meth:`save` cycle has nothing left to do
    (``new_since_save`` stays 0).  The in-memory LRU semantics —
    recency, eviction, the cap — are unchanged in both modes.
    """

    def __init__(
        self, max_entries: int | None = None, backend=None
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(
                f"max_entries must be a positive cap or None, got {max_entries}"
            )
        self._entries: OrderedDict[str, DualityResult] = OrderedDict()
        self._lock = threading.RLock()
        # Serializes whole save() calls (snapshot through os.replace).
        # The entry lock alone is not enough: two concurrent autosaves
        # could snapshot in one order and os.replace in the other,
        # leaving an *older* snapshot as the file on disk — losing a
        # verdict some client already received.  Savers queue; readers
        # and writers of entries never wait on disk I/O.
        self._save_lock = threading.Lock()
        # Keys added since the last save *and still present*: eviction
        # and key-overwrites must not inflate the dirty count, or a
        # churning bounded cache keeps autosaving an unchanged file.
        self._unsaved: set[str] = set()
        self.backend = backend
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    @property
    def new_since_save(self) -> int:
        """Entries a :meth:`save` would write that no save has yet written.

        Lets a long-lived service persist only when there is something
        new — drain-time autosaves stay free on all-hit batches.
        Evicted entries leave the count (a save would not write them)
        and re-putting an existing key does not grow it (the file
        already holds that verdict), so a churning bounded cache never
        triggers autosaves that rewrite an unchanged file.  With a
        durable ``backend`` every put is already persisted, so this
        stays 0 and the whole-file save path never fires.
        """
        with self._lock:
            return len(self._unsaved)

    @property
    def backed(self) -> bool:
        """True when a durable backend receives every put."""
        return self.backend is not None

    def get(self, key: str) -> DualityResult | None:
        """The cached result for ``key``, counting the hit/miss.

        A hit refreshes the entry's recency (it becomes the last one an
        LRU eviction would drop).  On a memory miss a backend (when
        plugged in) is consulted; its hit is promoted into the LRU —
        without marking it dirty, the backend already holds it — and
        counted as a hit.
        """
        with self._lock:
            result = self._entries.get(key)
            if result is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return result
            if self.backend is None:
                self.misses += 1
                return None
        # Backend I/O happens outside the entry lock so other readers
        # never wait on the disk.
        result = self.backend.get(key)
        with self._lock:
            if result is None:
                self.misses += 1
                return None
            self._entries[key] = result
            self._entries.move_to_end(key)
            self.hits += 1
            self._evict_over_cap()
            return result

    def put(self, key: str, result: DualityResult, digest: str | None = None) -> None:
        """Insert one verdict (``digest`` — the optional
        :func:`~repro.hypergraph.pair_digest` — travels to a durable
        backend's structural index; the in-memory layer ignores it)."""
        if self.backend is not None:
            # Write-through *before* the entry becomes visible: any
            # reader that sees this key can already rely on it being
            # durable (the persist-before-resolve guarantee).
            self.backend.put(key, result, digest=digest)
        with self._lock:
            if self.backend is None and key not in self._entries:
                self._unsaved.add(key)
            self._entries[key] = result
            self._entries.move_to_end(key)
            self._evict_over_cap()

    def _evict_over_cap(self) -> None:
        # Caller holds self._lock.
        if self.max_entries is None:
            return
        while len(self._entries) > self.max_entries:
            evicted, _ = self._entries.popitem(last=False)
            self._unsaved.discard(evicted)
            self.evictions += 1

    def register_metrics(self, registry) -> None:
        """Expose the cache's live counters on an obs
        :class:`~repro.obs.metrics.MetricsRegistry` as callback gauges."""
        registry.gauge_fn(
            "cache_hits_total", "Result cache hits", lambda: self.hits
        )
        registry.gauge_fn(
            "cache_misses_total", "Result cache misses", lambda: self.misses
        )
        registry.gauge_fn(
            "cache_evictions_total", "LRU evictions", lambda: self.evictions
        )
        registry.gauge_fn(
            "cache_entries", "Entries currently cached", lambda: len(self)
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    # The entry codec lives at module level (:func:`result_to_json` /
    # :func:`result_from_json`) so the durable store shares it; the
    # historical staticmethod names remain as aliases.
    _entry_to_json = staticmethod(result_to_json)
    _entry_from_json = staticmethod(result_from_json)

    def save(self, path: str | Path) -> int:
        """Write the JSON-representable entries; returns how many.

        Entries land in recency order (least-recently-used first), so a
        bounded cache survives a save/load round trip with its eviction
        order intact.  The write is atomic: the JSON lands in a temp
        sibling first and is ``os.replace``d into place, so a crash
        (even ``kill -9``) mid-save leaves either the previous
        generation of the file or the new one — never a truncated,
        unparseable hybrid.
        """
        with self._save_lock:
            with self._lock:
                out = {}
                for key, result in self._entries.items():
                    entry = self._entry_to_json(result)
                    if entry is not None:
                        out[key] = entry
                snapshotted = set(self._unsaved)
            path = Path(path)
            data = json.dumps(out, indent=1) + "\n"
            fd, tmp_name = tempfile.mkstemp(
                dir=path.parent, prefix=path.name + ".", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    handle.write(data)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
            with self._lock:
                # Only a *successful* write retires the dirty keys — a
                # failed save must leave the entries marked unsaved so
                # the next flush (or the shutdown flush) retries them.
                # Keys added while the file was being written stay
                # marked.
                self._unsaved -= snapshotted
            return len(out)

    @classmethod
    def load(
        cls, path: str | Path, max_entries: int | None = None
    ) -> "ResultCache":
        """Read a cache written by :meth:`save` (missing file → empty).

        ``max_entries`` caps the loaded cache with LRU eviction; a file
        larger than the cap keeps only its most recent entries (files
        store least-recent first).  Entries from older cache formats
        (pre-codec plain witnesses) fail to decode and are dropped — a
        stale entry becomes a miss, never a wrong answer.  The same
        degrade-to-misses rule covers the whole file: an unreadable or
        corrupt cache yields an empty cache with a warning, so a
        damaged file can cost recomputation but can never block a
        service from starting.
        """
        cache = cls(max_entries=max_entries)
        path = Path(path)
        if not path.exists():
            return cache
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            warnings.warn(
                f"result cache {path} is unreadable ({exc}); "
                f"starting with an empty cache",
                RuntimeWarning,
                stacklevel=2,
            )
            return cache
        if not isinstance(raw, dict):
            warnings.warn(
                f"result cache {path} does not hold a JSON object; "
                f"starting with an empty cache",
                RuntimeWarning,
                stacklevel=2,
            )
            return cache
        with cache._lock:
            # File order is recency order (least-recent first): insert
            # in order and let the cap evict from the front, so only
            # the most recent entries survive an over-cap load.
            for key, entry in raw.items():
                try:
                    cache._entries[key] = cls._entry_from_json(entry)
                except (CodecError, KeyError, TypeError, ValueError):
                    continue
            cache._evict_over_cap()
        return cache


@dataclass
class BatchItem:
    """One solved (or replayed) instance of a batch.

    ``source`` is the file path for path inputs (``None`` for in-memory
    pairs); ``key`` the canonical cache key; ``elapsed_s`` the solve
    wall time (0.0 for cache hits).
    """

    source: str | None
    key: str
    result: DualityResult
    elapsed_s: float
    cached: bool = False

    @property
    def is_dual(self) -> bool:
        return self.result.is_dual


def load_instance(path: str | Path) -> tuple[Hypergraph, Hypergraph]:
    """Read one ``.hg`` instance file: ``G``, a ``==`` line, then ``H``."""
    hypergraphs = hgio.load_many(path)
    if len(hypergraphs) != 2:
        raise ValueError(
            f"{path}: an instance file must contain exactly two hypergraphs "
            f"separated by '==' (found {len(hypergraphs)})"
        )
    return hypergraphs[0], hypergraphs[1]


def solve_batch_entry(payload: tuple) -> tuple[DualityResult, float]:
    """Worker: solve one instance with the serial facade (module-level)."""
    g_payload, h_payload, method = payload
    from repro.duality import decide_duality

    g = from_mask_payload(g_payload)
    h = from_mask_payload(h_payload)
    start = time.perf_counter()
    result = decide_duality(g, h, method=method)
    return result, time.perf_counter() - start


def solve_batch_entry_obs(payload: tuple) -> tuple[DualityResult, float, dict]:
    """Worker: :func:`solve_batch_entry` under a traced request.

    ``payload`` carries a fourth element — the picklable
    ``(trace_id, parent_span_id)`` pair of the requesting trace.  The
    verdict path is *identical* to the plain entry (same facade call,
    same timer); the only additions are spans, and a sink cannot cross
    a process boundary, so the worker's spans come back **piggybacked**
    as plain dicts in the third return slot (``extras["spans"]``) for
    the service to re-record.  The solve itself is one ``worker-solve``
    span with a nested ``engine:<method>`` span; the deserialisation of
    the mask payloads is tagged on as ``decode_ms``.
    """
    g_payload, h_payload, method, wire_ctx = payload
    trace_id, parent_span_id = wire_ctx
    from repro.duality import decide_duality
    from repro.obs.trace import Span

    outer = Span(trace_id, "worker-solve", parent_id=parent_span_id)
    decode_start = time.perf_counter()
    g = from_mask_payload(g_payload)
    h = from_mask_payload(h_payload)
    outer.set_tag("decode_ms", round((time.perf_counter() - decode_start) * 1000, 3))
    inner = Span(trace_id, f"engine:{method}", parent_id=outer.span_id)
    start = time.perf_counter()
    result = decide_duality(g, h, method=method)
    elapsed = time.perf_counter() - start
    inner.finish()
    inner.set_tag("dual", result.is_dual)
    outer.finish()
    extras = {"spans": [outer.to_dict(), inner.to_dict()]}
    return result, elapsed, extras


def solve_many(
    instances,
    method: str = "fk-b",
    n_jobs: int | None = 1,
    cache: ResultCache | None = None,
    pool=None,
    timings: TimingLog | str | Path | None = None,
) -> list[BatchItem]:
    """Decide a batch of duality instances, optionally in parallel.

    Parameters
    ----------
    instances:
        An iterable of ``(G, H)`` :class:`Hypergraph` pairs and/or
        path-likes to ``.hg`` instance files (see :func:`load_instance`).
    method:
        Any :func:`repro.duality.available_methods` name (including
        ``"portfolio"``, which runs its sequential fallback inside each
        worker — pools do not nest).
    n_jobs:
        Worker processes for the cache-miss instances; ``1`` solves
        in-process, ``-1`` uses every core.  Ignored when ``pool`` is
        given.
    cache:
        A :class:`ResultCache` consulted before solving and updated
        after; hits replay the stored result with ``elapsed_s = 0``.
    pool:
        An already-warm pool — normally a
        :class:`repro.service.EnginePool` — to reuse across batches
        instead of paying the per-call worker spawn.  A pool exposing
        the futures API (``submit(fn, item, collect=False)``) gets each
        cache miss scheduled as its own future — the same per-item
        scheduler the engine service runs on, with per-item
        worker-death retry; a plain ``map(fn, items)`` pool falls back
        to the lock-step batch.  The caller owns the pool's lifecycle
        (this function never shuts it down).
    timings:
        A :class:`repro.obs.timings.TimingLog` (or a path to create
        one) recording one JSONL row per solved miss — engine, elapsed,
        structural features.  Verdicts are never affected.  When
        process-wide tracing is enabled (:func:`repro.obs.enable_tracing`)
        the batch additionally records ``batch-load`` / ``batch-solve``
        spans; with tracing disabled both hooks are no-ops.

    Results come back in input order, and each miss is solved by the
    ordinary serial engine inside its worker — so the batch's verdicts
    and certificates are exactly what one-at-a-time serial calls would
    produce.
    """
    if pool is None:
        resolve_n_jobs(n_jobs)  # validate early, before any loading
    if cache is not None and method in ("portfolio", "auto"):
        # A portfolio (or auto low-confidence race) winner is
        # timing-dependent, so its certificate is not a deterministic
        # function of the instance — exactly what a replay cache must
        # not store.
        raise ValueError(
            f"method={method!r} cannot be cached: the winning engine "
            "(and hence the certificate) depends on timing; pick a "
            "concrete engine or drop the cache"
        )
    # A path means this call owns the log (EngineService's ownership
    # rule): open it here, close it on every exit path below — a batch
    # sweep must not leak one file handle per call.
    owns_timings = isinstance(timings, (str, Path))
    if owns_timings:
        timings = TimingLog(timings)
    try:
        return _solve_many(
            instances,
            method=method,
            n_jobs=n_jobs,
            cache=cache,
            pool=pool,
            timings=timings,
        )
    finally:
        if owns_timings:
            timings.close()


def _solve_many(
    instances,
    method: str,
    n_jobs: int | None,
    cache: ResultCache | None,
    pool,
    timings: TimingLog | None,
) -> list[BatchItem]:
    sources: list[str | None] = []
    pairs: list[tuple[Hypergraph, Hypergraph]] = []
    with span("batch-load"):
        for item in instances:
            if isinstance(item, (str, Path)):
                sources.append(str(item))
                pairs.append(load_instance(item))
            else:
                g, h = item
                sources.append(None)
                pairs.append((g, h))

    keys = [instance_key(g, h, method) for g, h in pairs]
    items: list[BatchItem | None] = [None] * len(pairs)
    miss_positions: list[int] = []
    seen_misses: dict[str, int] = {}
    for pos, key in enumerate(keys):
        if key in seen_misses:
            # Duplicate within the batch: solve once, replay below
            # (without consulting the cache again — one instance, one
            # recorded miss).
            miss_positions.append(pos)
            continue
        cached = cache.get(key) if cache is not None else None
        if cached is not None:
            items[pos] = BatchItem(
                source=sources[pos],
                key=key,
                result=cached,
                elapsed_s=0.0,
                cached=True,
            )
        else:
            seen_misses[key] = pos
            miss_positions.append(pos)

    unique_positions = sorted(seen_misses.values())
    payloads = []
    for pos in unique_positions:
        g, h = pairs[pos]
        payloads.append((mask_payload(g), mask_payload(h), method))

    if pool is None:
        pool = WorkerPool(n_jobs)
    with span("batch-solve", misses=len(payloads), total=len(pairs)):
        if hasattr(pool, "submit"):
            # The futures scheduler (EnginePool): one future per miss,
            # kept out of the pool's drain batch so a service sharing
            # the pool never collects our items.  Awaiting in submission
            # order keeps error behaviour identical to the lock-step
            # path (first failure, in order), while the items still run
            # concurrently.
            futures = [
                pool.submit(solve_batch_entry, payload, collect=False)
                for payload in payloads
            ]
            outcomes = [future.result() for future in futures]
        else:
            outcomes = pool.map(solve_batch_entry, payloads)
    solved = {
        keys[pos]: outcome for pos, outcome in zip(unique_positions, outcomes)
    }
    if timings is not None:
        for pos, payload, outcome in zip(unique_positions, payloads, outcomes):
            result, elapsed = outcome
            try:
                features = structural_features(payload[0], payload[1])
                timings.record(
                    method,
                    elapsed,
                    features=features,
                    dual=result.is_dual,
                    source=sources[pos],
                )
                # A portfolio/auto solve additionally carries per-racer
                # timings; record each as its own row (role-tagged, like
                # the service does) — the sequential portfolio is how a
                # training corpus for `repro model fit` is grown.
                race = result.stats.extra.get("auto") or result.stats.extra.get(
                    "portfolio"
                )
                if race:
                    role = (
                        "auto"
                        if result.stats.extra.get("auto") is not None
                        else "portfolio"
                    )
                    for engine, racer_s in (race.get("timings_s") or {}).items():
                        if racer_s is None:
                            continue
                        timings.record(
                            engine,
                            racer_s,
                            features=features,
                            dual=result.is_dual,
                            source=sources[pos],
                            role=role,
                            winner=race.get("winner") or race.get("engine"),
                        )
            except Exception:  # noqa: BLE001 - observation never breaks solves
                pass

    for pos in miss_positions:
        key = keys[pos]
        result, elapsed = solved[key]
        duplicate = seen_misses[key] != pos
        items[pos] = BatchItem(
            source=sources[pos],
            key=key,
            result=result,
            elapsed_s=0.0 if duplicate else elapsed,
            cached=duplicate,
        )
        if cache is not None and not duplicate:
            # A durable backend indexes verdicts structurally too; the
            # digest is only worth hashing when such a backend exists.
            digest = pair_digest(*pairs[pos]) if cache.backed else None
            cache.put(key, result, digest=digest)
    return items
